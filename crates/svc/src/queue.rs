//! The persistent job queue: a CRC-framed journal of lifecycle events
//! and the fair-share scheduler that picks what runs next.
//!
//! ## Journal format
//!
//! The queue is an append-only [`fasda_ckpt::journal`] whose records are
//! compact JSON event documents:
//!
//! ```text
//! {"v":1,"ev":"submit","id":N,"spec":{...}}   job N entered the queue
//! {"v":1,"ev":"start","id":N,"worker":W}      worker W picked job N up
//! {"v":1,"ev":"requeue","id":N,"reason":R}    drained (migrate) or crashed
//! {"v":1,"ev":"done","id":N}                  ran to its step target
//! {"v":1,"ev":"cancel","id":N}                cancelled
//! {"v":1,"ev":"fail","id":N,"error":E}        unrecoverable failure
//! ```
//!
//! Replay folds the event stream into per-job final states. A job whose
//! last event is `start` or `requeue` was in flight when the server
//! died — it is returned as *queued* so the restarted server re-runs it
//! (from its newest on-disk checkpoint when one exists). A torn trailing
//! record — the server died mid-append — is discarded by the journal
//! layer; mid-file corruption stays fatal.
//!
//! ## Fair share
//!
//! [`pick`] chooses among runnable queued jobs by weighted fair share:
//! the tenant with the smallest `running / weight` ratio goes first
//! (ratios compared exactly by cross-multiplication), then higher
//! priority, then lower job id (FIFO). Tenants at their `max_running`
//! quota are skipped entirely.

use crate::job::JobSpec;
use fasda_ckpt::journal::JournalWriter;
use fasda_ckpt::CkptError;
use fasda_trace::Json;
use std::collections::HashMap;
use std::path::Path;

/// Journal event schema version.
pub const JOURNAL_VERSION: i64 = 1;

/// Per-tenant scheduling parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantQuota {
    /// Fair-share weight (a weight-2 tenant gets twice the slots of a
    /// weight-1 tenant under contention). Minimum 1.
    pub weight: u64,
    /// Hard cap on concurrently running jobs; `usize::MAX` = unlimited.
    pub max_running: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        TenantQuota { weight: 1, max_running: usize::MAX }
    }
}

/// Tenant → quota table; unknown tenants take the default quota.
#[derive(Clone, Debug, Default)]
pub struct TenantTable {
    quotas: HashMap<String, TenantQuota>,
}

impl TenantTable {
    /// Empty table: every tenant gets the default quota.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set one tenant's quota.
    pub fn set(&mut self, tenant: &str, quota: TenantQuota) {
        self.quotas.insert(tenant.to_string(), quota);
    }

    /// The quota for `tenant` (default for unknown tenants).
    pub fn get(&self, tenant: &str) -> TenantQuota {
        self.quotas.get(tenant).copied().unwrap_or_default()
    }

    /// Parse a repeatable `NAME:WEIGHT[:MAX]` CLI clause.
    pub fn parse_clause(&mut self, clause: &str) -> Result<(), String> {
        let parts: Vec<&str> = clause.split(':').collect();
        let (name, rest) = match parts.as_slice() {
            [n, w] => (*n, (*w, None)),
            [n, w, m] => (*n, (*w, Some(*m))),
            _ => return Err(format!("bad tenant clause '{clause}' (want NAME:WEIGHT[:MAX])")),
        };
        let weight: u64 = rest.0.parse().map_err(|_| format!("bad weight in '{clause}'"))?;
        if weight == 0 {
            return Err(format!("tenant weight must be >= 1 in '{clause}'"));
        }
        let max_running = match rest.1 {
            None => usize::MAX,
            Some(m) => m.parse().map_err(|_| format!("bad max in '{clause}'"))?,
        };
        self.set(name, TenantQuota { weight, max_running });
        Ok(())
    }
}

/// The scheduler's view of one queued job.
#[derive(Clone, Debug)]
pub struct SchedJob {
    /// Queue-assigned id (submission order).
    pub id: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Higher runs first within a tenant's share.
    pub priority: i64,
    /// Worker index this job must *not* run on (anti-affinity after a
    /// drain: a migrated job resumes elsewhere).
    pub avoid: Option<usize>,
}

/// Pick the next job for `worker` from `queued`, honouring quotas,
/// weighted fair share, priority, and FIFO order. `running_by_tenant`
/// counts jobs currently executing. Pure — the property tests drive it
/// directly.
pub fn pick(
    queued: &[SchedJob],
    running_by_tenant: &HashMap<String, usize>,
    table: &TenantTable,
    worker: usize,
) -> Option<u64> {
    let mut best: Option<(&SchedJob, u128, u64)> = None;
    for job in queued {
        if job.avoid == Some(worker) {
            continue;
        }
        let quota = table.get(&job.tenant);
        let running = *running_by_tenant.get(&job.tenant).unwrap_or(&0);
        if running >= quota.max_running {
            continue;
        }
        // share = running / weight, compared exactly via cross products.
        let share = (running as u128, quota.weight.max(1) as u128);
        let better = match &best {
            None => true,
            Some((cur, cur_run, cur_w)) => {
                let lhs = share.0 * *cur_w as u128;
                let rhs = *cur_run * share.1;
                lhs < rhs
                    || (lhs == rhs
                        && (job.priority > cur.priority
                            || (job.priority == cur.priority && job.id < cur.id)))
            }
        };
        if better {
            best = Some((job, share.0, share.1 as u64));
        }
    }
    best.map(|(j, _, _)| j.id)
}

/// A job's final state as reconstructed from the journal.
#[derive(Clone, Debug, PartialEq)]
pub enum ReplayedState {
    /// Submitted (or in flight at the crash) and still owed a run.
    Queued,
    /// Finished.
    Done,
    /// Cancelled.
    Cancelled,
    /// Failed with the recorded error.
    Failed(String),
}

/// One journal-recovered job.
#[derive(Clone, Debug)]
pub struct ReplayedJob {
    /// Queue id from the submit event.
    pub id: u64,
    /// The full spec, as submitted.
    pub spec: JobSpec,
    /// Folded final state.
    pub state: ReplayedState,
}

/// The queue rebuilt from its journal.
pub struct RecoveredQueue {
    /// Jobs in submission order.
    pub jobs: Vec<ReplayedJob>,
    /// Next id to assign (one past the largest seen).
    pub next_id: u64,
    /// Bytes of torn trailing record discarded by the journal layer
    /// (non-zero means the server died mid-append; harmless).
    pub torn_bytes: u64,
}

/// Errors from the queue layer.
#[derive(Debug)]
pub enum QueueError {
    /// The journal file is unreadable or corrupt mid-file.
    Journal(CkptError),
    /// A record parsed but is not a valid event document.
    BadRecord(String),
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::Journal(e) => write!(f, "queue journal: {e}"),
            QueueError::BadRecord(e) => write!(f, "queue journal record: {e}"),
        }
    }
}

impl std::error::Error for QueueError {}

impl From<CkptError> for QueueError {
    fn from(e: CkptError) -> Self {
        QueueError::Journal(e)
    }
}

/// The persistent event log. Every lifecycle transition appends one
/// fsynced record; replay after a crash reconstructs the queue.
pub struct QueueJournal {
    writer: JournalWriter,
}

fn event(ev: &str, id: u64) -> fasda_trace::json::ObjBuilder {
    Json::obj()
        .field("v", JOURNAL_VERSION)
        .field("ev", ev)
        .field("id", Json::uint(id))
}

impl QueueJournal {
    /// Open (creating if missing) the journal at `path` for appending.
    pub fn open(path: &Path) -> Result<Self, QueueError> {
        Ok(QueueJournal { writer: JournalWriter::open(path)? })
    }

    fn append(&mut self, doc: Json) -> Result<(), QueueError> {
        Ok(self.writer.append(doc.compact().as_bytes())?)
    }

    /// Record a submission.
    pub fn submit(&mut self, id: u64, spec: &JobSpec) -> Result<(), QueueError> {
        self.append(event("submit", id).field("spec", spec.to_json()).build())
    }

    /// Record a worker pickup.
    pub fn start(&mut self, id: u64, worker: usize) -> Result<(), QueueError> {
        self.append(event("start", id).field("worker", worker).build())
    }

    /// Record a drain (migration) or crash requeue.
    pub fn requeue(&mut self, id: u64, reason: &str) -> Result<(), QueueError> {
        self.append(event("requeue", id).field("reason", reason).build())
    }

    /// Record completion.
    pub fn done(&mut self, id: u64) -> Result<(), QueueError> {
        self.append(event("done", id).build())
    }

    /// Record cancellation.
    pub fn cancel(&mut self, id: u64) -> Result<(), QueueError> {
        self.append(event("cancel", id).build())
    }

    /// Record an unrecoverable failure.
    pub fn fail(&mut self, id: u64, error: &str) -> Result<(), QueueError> {
        self.append(event("fail", id).field("error", error).build())
    }

    /// Rewrite the journal to just the submit events of `live` jobs
    /// (atomic temp + rename) — startup compaction after a replay drops
    /// the terminal jobs' history.
    pub fn compact_to(&mut self, live: &[(u64, &JobSpec)]) -> Result<(), QueueError> {
        let records: Vec<Vec<u8>> = live
            .iter()
            .map(|(id, spec)| {
                event("submit", *id)
                    .field("spec", spec.to_json())
                    .build()
                    .compact()
                    .into_bytes()
            })
            .collect();
        let refs: Vec<&[u8]> = records.iter().map(|r| r.as_slice()).collect();
        Ok(self.writer.compact(&refs)?)
    }
}

/// Replay the journal at `path` into per-job final states. A missing
/// file is an empty queue; a torn trailing record is discarded and
/// reported; mid-file corruption is fatal.
pub fn replay(path: &Path) -> Result<RecoveredQueue, QueueError> {
    let raw = fasda_ckpt::journal::replay(path)?;
    let mut jobs: Vec<ReplayedJob> = Vec::new();
    let mut index: HashMap<u64, usize> = HashMap::new();
    let mut next_id = 0u64;
    for (n, rec) in raw.records.iter().enumerate() {
        let text = std::str::from_utf8(rec)
            .map_err(|e| QueueError::BadRecord(format!("record {n}: {e}")))?;
        let doc = Json::parse(text).map_err(|e| QueueError::BadRecord(format!("record {n}: {e}")))?;
        if doc.get("v").and_then(Json::as_i64) != Some(JOURNAL_VERSION) {
            return Err(QueueError::BadRecord(format!(
                "record {n}: unsupported journal version"
            )));
        }
        let ev = doc
            .get("ev")
            .and_then(Json::as_str)
            .ok_or_else(|| QueueError::BadRecord(format!("record {n}: no event kind")))?;
        let id = doc
            .get("id")
            .and_then(Json::as_i64)
            .ok_or_else(|| QueueError::BadRecord(format!("record {n}: no job id")))?
            as u64;
        next_id = next_id.max(id + 1);
        match ev {
            "submit" => {
                let spec = doc
                    .get("spec")
                    .ok_or_else(|| QueueError::BadRecord(format!("record {n}: submit without spec")))
                    .and_then(|s| {
                        JobSpec::from_json(s)
                            .map_err(|e| QueueError::BadRecord(format!("record {n}: {e}")))
                    })?;
                index.insert(id, jobs.len());
                jobs.push(ReplayedJob { id, spec, state: ReplayedState::Queued });
            }
            // `start` and `requeue` leave the job owed a run; the folded
            // state is already Queued unless a terminal event follows.
            "start" | "requeue" => {}
            "done" | "cancel" | "fail" => {
                let slot = index.get(&id).copied().ok_or_else(|| {
                    QueueError::BadRecord(format!("record {n}: {ev} for unknown job {id}"))
                })?;
                jobs[slot].state = match ev {
                    "done" => ReplayedState::Done,
                    "cancel" => ReplayedState::Cancelled,
                    _ => ReplayedState::Failed(
                        doc.get("error")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                            .to_string(),
                    ),
                };
            }
            other => {
                return Err(QueueError::BadRecord(format!(
                    "record {n}: unknown event '{other}'"
                )))
            }
        }
    }
    Ok(RecoveredQueue { jobs, next_id, torn_bytes: raw.torn_bytes })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, tenant: &str, priority: i64) -> SchedJob {
        SchedJob { id, tenant: tenant.to_string(), priority, avoid: None }
    }

    #[test]
    fn fifo_within_one_tenant() {
        let q = vec![job(2, "a", 0), job(0, "a", 0), job(1, "a", 0)];
        assert_eq!(pick(&q, &HashMap::new(), &TenantTable::new(), 0), Some(0));
    }

    #[test]
    fn priority_beats_fifo() {
        let q = vec![job(0, "a", 0), job(1, "a", 5)];
        assert_eq!(pick(&q, &HashMap::new(), &TenantTable::new(), 0), Some(1));
    }

    #[test]
    fn fair_share_prefers_idle_tenant() {
        let q = vec![job(0, "busy", 9), job(1, "idle", 0)];
        let mut running = HashMap::new();
        running.insert("busy".to_string(), 2);
        assert_eq!(pick(&q, &running, &TenantTable::new(), 0), Some(1));
    }

    #[test]
    fn weight_doubles_the_share() {
        // busy has 2 running at weight 4 (share 0.5); idle has 1 running
        // at weight 1 (share 1.0) — busy still goes first.
        let mut table = TenantTable::new();
        table.set("busy", TenantQuota { weight: 4, max_running: usize::MAX });
        let q = vec![job(0, "busy", 0), job(1, "idle", 0)];
        let mut running = HashMap::new();
        running.insert("busy".to_string(), 2);
        running.insert("idle".to_string(), 1);
        assert_eq!(pick(&q, &running, &table, 0), Some(0));
    }

    #[test]
    fn quota_blocks_a_tenant() {
        let mut table = TenantTable::new();
        table.set("capped", TenantQuota { weight: 1, max_running: 1 });
        let q = vec![job(0, "capped", 9), job(1, "other", 0)];
        let mut running = HashMap::new();
        running.insert("capped".to_string(), 1);
        assert_eq!(pick(&q, &running, &table, 0), Some(1));
        // Everyone blocked -> nothing runnable.
        let q2 = vec![job(0, "capped", 9)];
        assert_eq!(pick(&q2, &running, &table, 0), None);
    }

    #[test]
    fn anti_affinity_skips_the_drained_worker() {
        let mut j = job(0, "a", 0);
        j.avoid = Some(1);
        let q = vec![j];
        assert_eq!(pick(&q, &HashMap::new(), &TenantTable::new(), 1), None);
        assert_eq!(pick(&q, &HashMap::new(), &TenantTable::new(), 0), Some(0));
    }

    #[test]
    fn tenant_clause_parsing() {
        let mut t = TenantTable::new();
        t.parse_clause("alice:2").unwrap();
        t.parse_clause("bob:1:3").unwrap();
        assert_eq!(t.get("alice"), TenantQuota { weight: 2, max_running: usize::MAX });
        assert_eq!(t.get("bob"), TenantQuota { weight: 1, max_running: 3 });
        assert_eq!(t.get("nobody"), TenantQuota::default());
        assert!(t.parse_clause("x").is_err());
        assert!(t.parse_clause("x:0").is_err());
        assert!(t.parse_clause("x:y").is_err());
    }

    #[test]
    fn journal_round_trips_lifecycles() {
        let dir = std::env::temp_dir().join(format!("fasda-svc-q-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("queue.journal");
        let spec = JobSpec { steps: 3, ..JobSpec::default() };
        {
            let mut j = QueueJournal::open(&path).unwrap();
            j.submit(0, &spec).unwrap();
            j.submit(1, &spec).unwrap();
            j.submit(2, &spec).unwrap();
            j.submit(3, &spec).unwrap();
            j.start(0, 0).unwrap();
            j.done(0).unwrap();
            j.start(1, 1).unwrap();
            j.cancel(2).unwrap();
            j.start(3, 0).unwrap();
            j.requeue(3, "migrate").unwrap();
        }
        let q = replay(&path).unwrap();
        assert_eq!(q.next_id, 4);
        assert_eq!(q.torn_bytes, 0);
        let states: Vec<&ReplayedState> = q.jobs.iter().map(|j| &j.state).collect();
        assert_eq!(
            states,
            vec![
                &ReplayedState::Done,
                &ReplayedState::Queued, // in flight at the "crash"
                &ReplayedState::Cancelled,
                &ReplayedState::Queued, // drained, never resumed
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_keeps_only_live_jobs() {
        let dir = std::env::temp_dir().join(format!("fasda-svc-qc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("queue.journal");
        let spec = JobSpec { steps: 3, ..JobSpec::default() };
        let mut j = QueueJournal::open(&path).unwrap();
        j.submit(0, &spec).unwrap();
        j.done(0).unwrap();
        j.submit(1, &spec).unwrap();
        j.compact_to(&[(1, &spec)]).unwrap();
        // The journal stays appendable after compaction.
        j.submit(2, &spec).unwrap();
        let q = replay(&path).unwrap();
        assert_eq!(q.jobs.len(), 2);
        assert_eq!(q.jobs[0].id, 1);
        assert_eq!(q.jobs[1].id, 2);
        assert_eq!(q.next_id, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
