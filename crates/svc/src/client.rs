//! Blocking control-protocol client, used by the `fasda job` CLI verbs
//! and the service load generator.

use crate::job::JobSpec;
use crate::proto::{self, ProtoError};
use crate::server::Listen;
use fasda_net::transport::{FrameLink, SocketLink, TcpLink};
use fasda_trace::Json;
use std::os::unix::net::UnixStream;

/// One control connection to a running server. Requests are strictly
/// request/response, so a single client is usable from one thread;
/// open one client per thread for concurrent load.
pub struct Client {
    link: Box<dyn FrameLink>,
}

impl Client {
    /// Connect to a server's resolved listen address.
    pub fn connect(addr: &Listen) -> Result<Client, String> {
        match addr {
            Listen::Unix(path) => {
                let stream = UnixStream::connect(path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                let link = SocketLink::new(stream).map_err(|e| e.to_string())?;
                Ok(Client { link: Box::new(link) })
            }
            Listen::Tcp(spec) => {
                let link = TcpLink::connect(spec).map_err(|e| format!("{spec}: {e}"))?;
                Ok(Client { link: Box::new(link) })
            }
        }
    }

    fn call(&mut self, req: Json) -> Result<Json, ProtoError> {
        proto::write_msg(&mut *self.link, &req)?;
        proto::expect_ok(proto::read_msg(&mut *self.link)?)
    }

    /// Submit a job; returns its queue id.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ProtoError> {
        let resp = self.call(
            proto::msg()
                .field("op", "submit")
                .field("spec", spec.to_json())
                .build(),
        )?;
        resp.get("id")
            .and_then(Json::as_i64)
            .map(|v| v as u64)
            .ok_or_else(|| ProtoError::Malformed("submit response has no id".into()))
    }

    /// One job's status document.
    pub fn status(&mut self, id: u64) -> Result<Json, ProtoError> {
        let resp = self.call(
            proto::msg()
                .field("op", "status")
                .field("id", Json::uint(id))
                .build(),
        )?;
        resp.get("job")
            .cloned()
            .ok_or_else(|| ProtoError::Malformed("status response has no job".into()))
    }

    /// Every job's status document.
    pub fn status_all(&mut self) -> Result<Vec<Json>, ProtoError> {
        let resp = self.call(proto::msg().field("op", "status").build())?;
        Ok(resp
            .get("jobs")
            .map(|j| j.items().to_vec())
            .unwrap_or_default())
    }

    /// Cancel a queued or running job.
    pub fn cancel(&mut self, id: u64) -> Result<(), ProtoError> {
        self.call(
            proto::msg()
                .field("op", "cancel")
                .field("id", Json::uint(id))
                .build(),
        )
        .map(|_| ())
    }

    /// The job's lifecycle log lines.
    pub fn logs(&mut self, id: u64) -> Result<Vec<String>, ProtoError> {
        let resp = self.call(
            proto::msg()
                .field("op", "logs")
                .field("id", Json::uint(id))
                .build(),
        )?;
        Ok(resp
            .get("lines")
            .map(|l| {
                l.items()
                    .iter()
                    .filter_map(|s| s.as_str().map(String::from))
                    .collect()
            })
            .unwrap_or_default())
    }

    /// Ask for the job to be drained at its next segment boundary and
    /// resumed on a different worker.
    pub fn migrate(&mut self, id: u64) -> Result<(), ProtoError> {
        self.call(
            proto::msg()
                .field("op", "migrate")
                .field("id", Json::uint(id))
                .build(),
        )
        .map(|_| ())
    }

    /// The server's metrics snapshot (counters, hists, gauges).
    pub fn metrics(&mut self) -> Result<Json, ProtoError> {
        let resp = self.call(proto::msg().field("op", "metrics").build())?;
        resp.get("metrics")
            .cloned()
            .ok_or_else(|| ProtoError::Malformed("metrics response has no metrics".into()))
    }

    /// Ask the server to shut down (running jobs drain and journal as
    /// requeued).
    pub fn shutdown(&mut self) -> Result<(), ProtoError> {
        self.call(proto::msg().field("op", "shutdown").build()).map(|_| ())
    }

    /// Poll `status` until the job reaches a terminal state; returns the
    /// final status document. `timeout` bounds the wait.
    pub fn wait(&mut self, id: u64, timeout: std::time::Duration) -> Result<Json, ProtoError> {
        let start = std::time::Instant::now();
        loop {
            let doc = self.status(id)?;
            match doc.get("state").and_then(Json::as_str) {
                Some("completed") | Some("cancelled") | Some("failed") => return Ok(doc),
                _ => {}
            }
            if start.elapsed() > timeout {
                return Err(ProtoError::Rejected(format!(
                    "job {id} did not finish within {timeout:?} (last: {})",
                    doc.compact()
                )));
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }
}
