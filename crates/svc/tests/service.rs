//! End-to-end service tests: live migration bit-identity, worker-crash
//! requeue, and queue-journal replay after a server death.
//!
//! The bit-identity oracle is always a direct, uninterrupted
//! `run_with_checkpoints` over the same spec and segmentation — the
//! service must add scheduling, draining, and recovery *around* the
//! run without perturbing a single bit of simulated state.

use fasda_cluster::ckpt::{run_with_checkpoints, CheckpointConfig, RunAccumulator};
use fasda_cluster::{state_dump, Cluster, EngineConfig};
use fasda_svc::queue::QueueJournal;
use fasda_svc::server::Listen;
use fasda_svc::{Client, JobSpec, Server, ServerConfig};
use fasda_trace::Json;
use std::path::PathBuf;
use std::time::Duration;

const STEPS: u64 = 6;
const EVERY: u64 = 2;
const WAIT: Duration = Duration::from_secs(120);

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fasda-svc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}

/// A small but non-trivial job: one node, 27 cells, 16 particles/cell.
fn spec(name: &str, dump: &std::path::Path) -> JobSpec {
    JobSpec {
        name: name.to_string(),
        per_cell: 16,
        steps: STEPS,
        ckpt_every: EVERY,
        dump_state: Some(dump.to_string_lossy().into_owned()),
        ..JobSpec::default()
    }
}

/// The uninterrupted oracle: same spec, same segmentation, one process.
fn oracle_dump(spec: &JobSpec, dir: &std::path::Path) -> String {
    let (cfg, sys) = spec.build().expect("oracle build");
    let mut cluster = Cluster::new(cfg, &sys);
    let ck = CheckpointConfig::new(spec.ckpt_every, dir);
    run_with_checkpoints(
        &mut cluster,
        spec.steps,
        2_000_000_000,
        &EngineConfig::serial(),
        Some(&ck),
        RunAccumulator::new(),
    )
    .expect("oracle run");
    state_dump(&cluster, &sys)
}

fn field_u64(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(Json::as_i64).unwrap_or(-1) as u64
}

#[test]
fn migrated_job_is_bit_identical_to_direct_run() {
    let dir = tmpdir("migrate");
    let dump = dir.join("migrated.state");
    let job = spec("migrate-me", &dump);
    let want = oracle_dump(&job.clone_without_faults(), &dir.join("oracle"));

    let handle = Server::start(ServerConfig::at(&dir.join("srv"))).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let id = client.submit(&job).expect("submit");
    // Drain at the first segment boundary, resume on the other worker.
    client.migrate(id).expect("migrate accepted");
    let status = client.wait(id, WAIT).expect("job finishes");
    assert_eq!(status.get("state").and_then(Json::as_str), Some("completed"));
    assert_eq!(field_u64(&status, "migrations"), 1, "status: {}", status.compact());
    assert_eq!(field_u64(&status, "steps_done"), STEPS);

    // The job must have run on two distinct workers.
    let logs = client.logs(id).expect("logs");
    let workers: Vec<&str> = logs
        .iter()
        .filter(|l| l.starts_with("started on worker "))
        .map(|l| l.rsplit(' ').next().unwrap())
        .collect();
    assert_eq!(workers.len(), 2, "logs: {logs:#?}");
    assert_ne!(workers[0], workers[1], "anti-affinity violated: {logs:#?}");
    assert!(
        logs.iter().any(|l| l.contains("resumed") && l.contains("in-memory container")),
        "no container resume in logs: {logs:#?}"
    );

    let got = std::fs::read_to_string(&dump).expect("migrated dump written");
    assert_eq!(got, want, "migrated state diverged from the direct run");

    let mut metrics_client = Client::connect(handle.addr()).expect("connect metrics");
    let metrics = metrics_client.metrics().expect("metrics");
    let migrated = metrics
        .get("counters")
        .and_then(|c| c.get("jobs_migrated"))
        .and_then(Json::as_i64);
    assert_eq!(migrated, Some(1), "metrics: {}", metrics.compact());

    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crashed_worker_requeues_from_newest_checkpoint() {
    let dir = tmpdir("crash");
    let dump = dir.join("crashed.state");
    let mut job = spec("crash-me", &dump);
    // The service's worker-death model: an injected crash kills the run
    // mid-flight; the pool must requeue from the newest checkpoint with
    // the fired directive stripped and converge to the fault-free state.
    job.fault_plan = Some("crash=0@3".to_string());
    let want = oracle_dump(&job.clone_without_faults(), &dir.join("oracle"));

    let handle = Server::start(ServerConfig::at(&dir.join("srv"))).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let id = client.submit(&job).expect("submit");
    let status = client.wait(id, WAIT).expect("job finishes");
    assert_eq!(
        status.get("state").and_then(Json::as_str),
        Some("completed"),
        "status: {}",
        status.compact()
    );
    assert_eq!(field_u64(&status, "restarts"), 1, "status: {}", status.compact());

    let logs = client.logs(id).expect("logs");
    assert!(
        logs.iter().any(|l| l.contains("crashed") && l.contains("requeued from newest checkpoint")),
        "no crash requeue in logs: {logs:#?}"
    );
    assert!(
        logs.iter().any(|l| l.contains("resumed") && l.contains("ckpt-")),
        "no on-disk checkpoint resume in logs: {logs:#?}"
    );

    let got = std::fs::read_to_string(&dump).expect("dump written");
    assert_eq!(got, want, "crash-recovered state diverged from the fault-free run");

    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelled_job_stops_and_terminal_states_reject_verbs() {
    let dir = tmpdir("cancel");
    let job = JobSpec {
        name: "cancel-me".to_string(),
        per_cell: 16,
        steps: STEPS,
        ckpt_every: EVERY,
        ..JobSpec::default()
    };

    let handle = Server::start(ServerConfig::at(&dir.join("srv"))).expect("server starts");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let id = client.submit(&job).expect("submit");
    client.cancel(id).expect("cancel accepted");
    let status = client.wait(id, WAIT).expect("job settles");
    assert_eq!(status.get("state").and_then(Json::as_str), Some("cancelled"));
    // Terminal jobs reject further control verbs.
    assert!(client.cancel(id).is_err());
    assert!(client.migrate(id).is_err());

    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_replay_reruns_interrupted_jobs() {
    let dir = tmpdir("replay");
    let srv = dir.join("srv");
    std::fs::create_dir_all(&srv).expect("mkdir");
    let journal = srv.join("queue.journal");
    let dump_a = dir.join("a.state");
    let dump_b = dir.join("b.state");
    let job_a = spec("interrupted", &dump_a);
    let job_b = spec("never-started", &dump_b);
    let job_c = spec("already-done", &dir.join("c.state"));

    // Simulate a dead server: job 0 was mid-run, job 1 queued, job 2
    // finished. Then tear the tail the way a mid-append death would.
    {
        let mut j = QueueJournal::open(&journal).expect("journal");
        j.submit(0, &job_a).unwrap();
        j.submit(1, &job_b).unwrap();
        j.submit(2, &job_c).unwrap();
        j.done(2).unwrap();
        j.start(0, 1).unwrap();
    }
    {
        use std::io::Write as _;
        let mut payload = Vec::new();
        fasda_ckpt::frame::write_frame(&mut payload, br#"{"v":1,"ev":"start","id":1,"worker":0}"#);
        let torn = &payload[..payload.len() / 2];
        let mut f = std::fs::OpenOptions::new().append(true).open(&journal).unwrap();
        f.write_all(torn).unwrap();
    }

    let handle = Server::start(ServerConfig::at(&srv)).expect("server replays journal");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Only the two interrupted jobs come back; both run to completion.
    let all = client.status_all().expect("status");
    let ids: Vec<u64> = all.iter().map(|j| field_u64(j, "id")).collect();
    assert_eq!(ids, vec![0, 1], "replayed jobs: {all:#?}");
    for id in [0u64, 1] {
        let status = client.wait(id, WAIT).expect("replayed job finishes");
        assert_eq!(
            status.get("state").and_then(Json::as_str),
            Some("completed"),
            "job {id}: {}",
            status.compact()
        );
    }
    assert!(dump_a.exists() && dump_b.exists());

    // Replay preserved the id space: a new submission continues past
    // the dead server's last id.
    let new_id = client.submit(&job_b).expect("submit after replay");
    assert_eq!(new_id, 3);
    client.cancel(new_id).expect("cancel the extra job");

    // The torn trailing record was discarded, not fatal — and counted.
    let metrics = client.metrics().expect("metrics");
    let torn = metrics
        .get("counters")
        .and_then(|c| c.get("journal_torn_bytes"))
        .and_then(Json::as_i64)
        .unwrap_or(0);
    assert!(torn > 0, "torn bytes not surfaced: {}", metrics.compact());

    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tcp_control_socket_speaks_the_same_protocol() {
    let dir = tmpdir("tcp");
    let mut cfg = ServerConfig::at(&dir.join("srv"));
    cfg.listen = Listen::Tcp("127.0.0.1:0".to_string());
    let handle = Server::start(cfg).expect("server starts on tcp");
    match handle.addr() {
        Listen::Tcp(addr) => assert!(!addr.ends_with(":0"), "port not resolved: {addr}"),
        other => panic!("expected tcp addr, got {other:?}"),
    }
    let mut client = Client::connect(handle.addr()).expect("connect over tcp");
    let job = JobSpec { name: "tcp".into(), per_cell: 4, steps: 2, ..JobSpec::default() };
    let id = client.submit(&job).expect("submit");
    let status = client.wait(id, WAIT).expect("job finishes");
    assert_eq!(status.get("state").and_then(Json::as_str), Some("completed"));
    client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Strip the fault plan for oracle runs (the recovery contract promises
/// convergence to the fault-free state).
trait CloneWithoutFaults {
    fn clone_without_faults(&self) -> JobSpec;
}

impl CloneWithoutFaults for JobSpec {
    fn clone_without_faults(&self) -> JobSpec {
        JobSpec { fault_plan: None, ..self.clone() }
    }
}
