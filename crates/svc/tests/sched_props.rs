//! Property-based tests for the fair-share scheduler: `queue::pick` is
//! pure, so these drive it directly over randomized queues, quota
//! tables, and cluster occupancy.

use fasda_svc::queue::{pick, SchedJob, TenantQuota, TenantTable};
use proptest::prelude::*;
use std::collections::HashMap;

const TENANTS: [&str; 4] = ["alice", "bob", "carol", "dave"];

/// Decode a randomized job list from plain tuples (tenant index,
/// priority, avoid-worker switch).
fn decode(jobs: &[(u8, i64, u8)]) -> Vec<SchedJob> {
    jobs.iter()
        .enumerate()
        .map(|(id, (t, priority, avoid))| SchedJob {
            id: id as u64,
            tenant: TENANTS[*t as usize % TENANTS.len()].to_string(),
            priority: *priority,
            avoid: (*avoid < 2).then_some(*avoid as usize),
        })
        .collect()
}

fn decode_table(clauses: &[(u8, u64, u8)]) -> TenantTable {
    let mut table = TenantTable::new();
    for (t, weight, max) in clauses {
        table.set(
            TENANTS[*t as usize % TENANTS.len()],
            TenantQuota {
                weight: (*weight).max(1),
                max_running: if *max >= 4 { usize::MAX } else { *max as usize },
            },
        );
    }
    table
}

fn decode_running(loads: &[(u8, u8)]) -> HashMap<String, usize> {
    let mut running = HashMap::new();
    for (t, n) in loads {
        running.insert(TENANTS[*t as usize % TENANTS.len()].to_string(), *n as usize);
    }
    running
}

proptest! {
    /// The picked job always exists, is eligible for the worker, and its
    /// tenant is under quota — no pick ever violates a hard constraint.
    #[test]
    fn pick_respects_hard_constraints(
        raw in proptest::collection::vec((0u8..4, -5i64..5, 0u8..5), 0..30),
        clauses in proptest::collection::vec((0u8..4, 0u64..5, 0u8..6), 0..4),
        loads in proptest::collection::vec((0u8..4, 0u8..5), 0..4),
        worker in 0usize..3,
    ) {
        let queued = decode(&raw);
        let table = decode_table(&clauses);
        let running = decode_running(&loads);
        if let Some(id) = pick(&queued, &running, &table, worker) {
            let job = queued.iter().find(|j| j.id == id).expect("picked id exists");
            prop_assert!(job.avoid != Some(worker), "anti-affinity violated");
            let quota = table.get(&job.tenant);
            let tenant_running = *running.get(&job.tenant).unwrap_or(&0);
            prop_assert!(
                tenant_running < quota.max_running,
                "picked tenant {} already at quota {}",
                job.tenant,
                quota.max_running
            );
        } else {
            // None only when no job is runnable at all.
            for job in &queued {
                let quota = table.get(&job.tenant);
                let tenant_running = *running.get(&job.tenant).unwrap_or(&0);
                prop_assert!(
                    job.avoid == Some(worker) || tenant_running >= quota.max_running,
                    "job {} was runnable but pick returned None",
                    job.id
                );
            }
        }
    }

    /// The winner's running/weight share is minimal among runnable jobs
    /// (compared exactly by cross-multiplication), and within the winning
    /// share priority then FIFO break ties.
    #[test]
    fn pick_minimizes_share_then_priority_then_fifo(
        raw in proptest::collection::vec((0u8..4, -5i64..5, 4u8..5), 1..30),
        clauses in proptest::collection::vec((0u8..4, 0u64..5, 5u8..6), 0..4),
        loads in proptest::collection::vec((0u8..4, 0u8..5), 0..4),
    ) {
        // avoid and max_running are disabled above: every job is runnable.
        let queued = decode(&raw);
        let table = decode_table(&clauses);
        let running = decode_running(&loads);
        let id = pick(&queued, &running, &table, 0).expect("non-empty runnable queue");
        let win = queued.iter().find(|j| j.id == id).unwrap();
        let share = |j: &SchedJob| {
            let q = table.get(&j.tenant);
            (*running.get(&j.tenant).unwrap_or(&0) as u128, q.weight.max(1) as u128)
        };
        let (wr, ww) = share(win);
        for other in &queued {
            let (or, ow) = share(other);
            // winner share <= other share
            prop_assert!(
                wr * ow <= or * ww,
                "job {} (share {}/{}) beat winner {} (share {}/{})",
                other.id, or, ow, win.id, wr, ww
            );
            if wr * ow == or * ww && other.id != win.id {
                prop_assert!(
                    win.priority > other.priority
                        || (win.priority == other.priority && win.id < other.id),
                    "tie-break violated: winner {} (prio {}) vs {} (prio {})",
                    win.id, win.priority, other.id, other.priority
                );
            }
        }
    }

    /// Driving a full drain simulation never exceeds any tenant's
    /// `max_running`, and with enough workers every unblocked job
    /// eventually runs.
    #[test]
    fn drain_simulation_never_exceeds_quota(
        raw in proptest::collection::vec((0u8..4, -5i64..5, 4u8..5), 1..30),
        // max_running >= 1 so no tenant is blocked forever.
        clauses in proptest::collection::vec((0u8..4, 0u64..5, 1u8..6), 0..4),
    ) {
        let table = decode_table(&clauses);
        let mut queued = decode(&raw);
        let mut running: HashMap<String, usize> = HashMap::new();
        let mut executed = 0usize;
        // Each round: every worker picks, then everything running
        // finishes. Bounded by jobs * rounds so a scheduling livelock
        // fails loudly instead of hanging.
        for _round in 0..raw.len() * 2 + 4 {
            let mut picked_this_round: Vec<u64> = Vec::new();
            for worker in 0..3usize {
                if let Some(id) = pick(&queued, &running, &table, worker) {
                    let job = queued.iter().find(|j| j.id == id).unwrap().clone();
                    let quota = table.get(&job.tenant);
                    let n = running.entry(job.tenant.clone()).or_insert(0);
                    *n += 1;
                    prop_assert!(
                        *n <= quota.max_running,
                        "tenant {} exceeded quota {} (now {})",
                        job.tenant, quota.max_running, *n
                    );
                    queued.retain(|j| j.id != id);
                    picked_this_round.push(id);
                }
            }
            executed += picked_this_round.len();
            running.clear(); // round ends: all running jobs complete
            if queued.is_empty() {
                break;
            }
        }
        prop_assert_eq!(executed, raw.len(), "jobs starved: {:?}", queued);
    }
}
