//! Minimal JSON document model, writer, and parser.
//!
//! The workspace's `serde` is a no-op marker-trait shim, so every
//! emitter in the repo used to hand-format strings. This module gives
//! them one shared value model instead: build a [`Json`] tree, render
//! it with [`Json::pretty`] (or [`Json::compact`]), and round-trip it
//! back with [`Json::parse`] for validation.
//!
//! Numbers: integers are kept exact as `i64`; floats render via Rust's
//! `f64` Display (shortest round-trip form) with non-finite values
//! mapped to `null`, and [`Json::fixed`] pre-rounds to a decimal count
//! for schema-stable metric fields.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (rendered without a decimal point).
    Int(i64),
    /// A float.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::Int(v as i64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(v as i64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

impl Json {
    /// An integer from a `u64` (saturating at `i64::MAX`; simulator
    /// counters stay far below that).
    pub fn uint(v: u64) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }

    /// A float pre-rounded to `decimals` places, so emitters that used
    /// to format with `{:.3}` keep byte-stable output.
    pub fn fixed(v: f64, decimals: u32) -> Json {
        if !v.is_finite() {
            return Json::Null;
        }
        let scale = 10f64.powi(decimals as i32);
        Json::Num((v * scale).round() / scale)
    }

    /// Start building an object.
    pub fn obj() -> ObjBuilder {
        ObjBuilder { fields: Vec::new() }
    }

    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array elements ( `&[]` for non-arrays).
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    /// Integer view: `Int` exactly, or an integral `Num`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Num(v) if v.fract() == 0.0 && v.is_finite() => Some(*v as i64),
            _ => None,
        }
    }

    /// Float view of any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out.push('\n');
        out
    }

    /// Render on one line with no whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match indent {
                        Some(level) => {
                            break_line(out, level + 1);
                            item.write(out, Some(level + 1));
                        }
                        None => item.write(out, None),
                    }
                }
                if let Some(level) = indent {
                    break_line(out, level);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    match indent {
                        Some(level) => {
                            break_line(out, level + 1);
                            write_escaped(out, key);
                            out.push_str(": ");
                            value.write(out, Some(level + 1));
                        }
                        None => {
                            write_escaped(out, key);
                            out.push(':');
                            value.write(out, None);
                        }
                    }
                }
                if let Some(level) = indent {
                    break_line(out, level);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns the value and rejects trailing
    /// garbage; integral tokens without `.`/`e` become [`Json::Int`].
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

/// Incremental object builder preserving field order.
pub struct ObjBuilder {
    fields: Vec<(String, Json)>,
}

impl ObjBuilder {
    /// Append a field.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Finish the object.
    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

fn break_line(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    if v == v.trunc() && v.abs() < 1e15 {
        // keep integral floats unambiguous ("2.0", not "2")
        let _ = write!(out, "{v:.1}");
    } else {
        // Rust Display for f64 is shortest-round-trip and never uses
        // exponent notation for the magnitudes the simulator emits
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy the whole run up to the next quote or escape in
                // one slice (one UTF-8 validation per run, not per char
                // — per-char `from_utf8` of the remaining input made
                // large-document parsing quadratic). Multi-byte UTF-8
                // sequences never contain ASCII `"` or `\`, so the byte
                // scan cannot split a scalar.
                let start = *pos;
                while let Some(&b) = bytes.get(*pos) {
                    if b == b'"' || b == b'\\' {
                        break;
                    }
                    *pos += 1;
                }
                let s = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
                out.push_str(s);
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() || text == "-" {
        return Err(format!("expected number at byte {start}"));
    }
    if is_float {
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number `{text}`: {e}"))
    } else {
        text.parse::<i64>()
            .map(Json::Int)
            .map_err(|e| format!("bad integer `{text}`: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders() {
        let doc = Json::obj()
            .field("name", "dense")
            .field("steps", Json::uint(3))
            .field("speedup", Json::fixed(1.23456, 3))
            .field("flags", Json::Arr(vec![Json::Bool(true), Json::Null]))
            .build();
        assert_eq!(
            doc.compact(),
            r#"{"name":"dense","steps":3,"speedup":1.235,"flags":[true,null]}"#
        );
        let pretty = doc.pretty();
        assert!(pretty.contains("\"speedup\": 1.235"));
        assert!(pretty.ends_with('\n'));
    }

    #[test]
    fn integral_floats_keep_decimal_point() {
        assert_eq!(Json::Num(2.0).compact(), "2.0");
        assert_eq!(Json::fixed(1.9999, 2).compact(), "2.0");
        assert_eq!(Json::Num(f64::NAN).compact(), "null");
        assert_eq!(Json::Int(2).compact(), "2");
    }

    #[test]
    fn parse_round_trips() {
        let doc = Json::obj()
            .field("a", Json::Int(-7))
            .field("b", 0.125)
            .field("s", "quote\" \\ tab\t")
            .field("arr", Json::Arr(vec![Json::Int(1), Json::Str("x".into())]))
            .field("nested", Json::obj().field("empty", Json::Arr(vec![])).build())
            .build();
        let parsed = Json::parse(&doc.pretty()).unwrap();
        assert_eq!(parsed, doc);
        let reparsed = Json::parse(&parsed.compact()).unwrap();
        assert_eq!(reparsed, doc);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"n": 3, "f": 2.5, "s": "hi", "a": [1]}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_i64), Some(3));
        assert_eq!(doc.get("f").and_then(Json::as_f64), Some(2.5));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("hi"));
        assert_eq!(doc.get("a").map(|a| a.items().len()), Some(1));
        assert_eq!(doc.get("missing"), None);
    }
}
