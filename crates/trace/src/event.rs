//! Structured trace events.
//!
//! Every event is stamped with the **global cluster cycle** at which it
//! occurred, so streams from different engine configurations line up
//! exactly. All payloads are `Copy`: recording an event is a ring-buffer
//! store, never an allocation.

/// Phases a node moves through, as seen by the cluster driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PhaseId {
    /// Force evaluation.
    Force,
    /// Motion update.
    MotionUpdate,
    /// Waiting at the bulk barrier between force and MU.
    BarrierMu,
    /// Waiting at the bulk barrier before the next step's force phase.
    BarrierForce,
}

impl PhaseId {
    /// Stable label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            PhaseId::Force => "force",
            PhaseId::MotionUpdate => "motion-update",
            PhaseId::BarrierMu => "barrier-mu",
            PhaseId::BarrierForce => "barrier-force",
        }
    }
}

/// Traffic class of a packet or sync marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ChannelId {
    /// Position broadcast traffic.
    Pos,
    /// Returned neighbour forces.
    Frc,
    /// Motion-update migration traffic.
    Mig,
}

impl ChannelId {
    /// Stable label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            ChannelId::Pos => "pos",
            ChannelId::Frc => "frc",
            ChannelId::Mig => "mig",
        }
    }
}

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A node entered a phase.
    PhaseBegin {
        /// Which phase.
        phase: PhaseId,
        /// Timestep index.
        step: u64,
    },
    /// A node left a phase after `cycles` global cycles.
    PhaseEnd {
        /// Which phase.
        phase: PhaseId,
        /// Timestep index.
        step: u64,
        /// Phase duration in global cycles.
        cycles: u64,
    },
    /// A straggler stall was injected at force-phase start.
    StallInjected {
        /// Stall length in cycles.
        cycles: u64,
    },
    /// The *last-position* marker departed toward a peer (§4.4).
    LastPosSent {
        /// Destination node.
        peer: u32,
    },
    /// The *last-force* marker departed toward a peer.
    LastFrcSent {
        /// Destination node.
        peer: u32,
    },
    /// The *last-migration* marker departed toward a peer.
    LastMigSent {
        /// Destination node.
        peer: u32,
    },
    /// A `last` marker arrived and was credited to the sync state
    /// machine.
    MarkerRecv {
        /// Traffic class of the marker.
        channel: ChannelId,
        /// Originating node.
        from: u32,
        /// Step the marker is for (may be a future step — the chained
        /// sync buffers early markers).
        step: u64,
    },
    /// A packet left this node's packetizer onto the fabric.
    PacketSent {
        /// Traffic class.
        channel: ChannelId,
        /// Destination node.
        to: u32,
        /// Payload flits carried.
        payloads: u32,
        /// Whether the packet carries a `last` marker.
        last: bool,
    },
    /// A packet was delivered into this node's chip.
    PacketDelivered {
        /// Traffic class.
        channel: ChannelId,
        /// Originating node.
        from: u32,
        /// Payload flits carried.
        payloads: u32,
        /// Whether the packet carries a `last` marker.
        last: bool,
    },
    /// The node arrived at a bulk barrier.
    BarrierArrive {
        /// Timestep index.
        step: u64,
    },
    /// Chip-internal PE activity for one force cycle (`Full` level
    /// only): filter-station dispatches and station ejections summed
    /// over the chip. Emitted only on cycles where either count is
    /// non-zero.
    PeActivity {
        /// Neighbour entries dispatched to filter stations this cycle.
        dispatched: u32,
        /// Station ejections (ring, local, or discard) this cycle.
        ejected: u32,
    },
    /// A node completed a timestep.
    StepDone {
        /// Timestep index.
        step: u64,
    },
    /// The fault plan dropped an outbound packet on the fabric
    /// (attributed to the sending node).
    FaultDrop {
        /// Traffic class.
        channel: ChannelId,
        /// Destination node.
        to: u32,
        /// Per-link sequence number of the lost packet (0 when the
        /// reliability layer is off).
        seq: u32,
        /// Whether a targeted "kill marker" directive caused the drop
        /// (as opposed to the probabilistic schedule).
        kill: bool,
    },
    /// The fault plan corrupted an outbound packet in flight; the
    /// receiver will discard it on checksum failure.
    FaultCorrupt {
        /// Traffic class.
        channel: ChannelId,
        /// Destination node.
        to: u32,
        /// Per-link sequence number of the corrupted packet.
        seq: u32,
    },
    /// The fault plan duplicated an outbound packet (the receiver's
    /// dedup window discards the extra copy).
    FaultDuplicate {
        /// Traffic class.
        channel: ChannelId,
        /// Destination node.
        to: u32,
        /// Per-link sequence number of the duplicated packet.
        seq: u32,
    },
    /// The fault plan delayed an outbound packet beyond its modelled
    /// fabric latency (reordering it behind later traffic).
    FaultDelay {
        /// Traffic class.
        channel: ChannelId,
        /// Destination node.
        to: u32,
        /// Per-link sequence number of the delayed packet.
        seq: u32,
        /// Extra delay in cycles.
        extra: u64,
    },
    /// The reliable-delivery layer retransmitted an unacked packet
    /// after its timeout expired.
    Retransmit {
        /// Traffic class.
        channel: ChannelId,
        /// Destination node.
        to: u32,
        /// Per-link sequence number being retransmitted.
        seq: u32,
        /// Retransmission attempt (1 = first retransmit).
        attempt: u32,
    },
    /// A cumulative acknowledgement departed toward a peer (`Full`
    /// level only — ack traffic is as chatty as data traffic).
    AckSent {
        /// Traffic class being acknowledged.
        channel: ChannelId,
        /// Destination node (the original data sender).
        to: u32,
        /// Highest in-order sequence received on the link.
        seq: u32,
    },
    /// Engine stream: a force-phase burst window opened.
    BurstOpen {
        /// Window width in cycles.
        window: u64,
        /// Chips that computed through the window.
        busy: u32,
    },
    /// Engine stream: a burst attempt was refused (window too small).
    BurstRefused {
        /// The window the scan proved (below the worthwhile minimum).
        window: u64,
    },
    /// Engine stream: the idle fast-forward jumped the global clock.
    FastForward {
        /// Jump target cycle.
        to_cycle: u64,
        /// Cycles skipped.
        skipped: u64,
    },
}

/// One recorded event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global cluster cycle of the event.
    pub cycle: u64,
    /// Payload.
    pub kind: EventKind,
}
