//! Stall attribution: why a node's force phase was not computing.
//!
//! The cluster driver classifies **every** force-phase cycle of every
//! node (after the node's phase-arming cycle) as either *productive* —
//! the chip ticked with at least one busy PE — or one stall cause.
//! The accounting invariant, asserted by the determinism tests and the
//! `tracecheck` validator:
//!
//! ```text
//! productive + Σ stalled[cause] == force_cycles   per (node, step)
//! ```

use std::collections::BTreeMap;

/// Why a force-phase cycle was idle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum StallCause {
    /// Chip fully drained locally, chained-sync handshake incomplete:
    /// waiting on a neighbour's positions, forces, or markers.
    WaitNeighborSync = 0,
    /// PEs idle but flits congest the output side: `frc_out`/broadcast
    /// queues, force rings, or EX egress still moving.
    RingBackpressure = 1,
    /// Chip drained but packets sit in a packetizer waiting out the
    /// departure cooldown (§5.4) or the per-cycle departure slot.
    TxCooldown = 2,
    /// PEs idle while input work is still in flight to them (position
    /// ring transit, EX ingress) — the filter banks are starved.
    FilterStarved = 3,
    /// Everything done and the sync handshake complete; the phase
    /// transition fires on the next exchange.
    Drained = 4,
    /// An injected straggler stall (the §4.4 ablation).
    Injected = 5,
    /// Chip drained, sync incomplete, and at least one outbound link is
    /// actively retransmitting a lost packet (reliable delivery layer).
    Retransmit = 6,
    /// Chip drained, sync incomplete, all data transmitted but unacked
    /// packets are still in flight on their first attempt (reliable
    /// delivery layer).
    WaitAck = 7,
}

impl StallCause {
    /// Number of causes.
    pub const COUNT: usize = 8;

    /// Every cause, in index order.
    pub const ALL: [StallCause; Self::COUNT] = [
        StallCause::WaitNeighborSync,
        StallCause::RingBackpressure,
        StallCause::TxCooldown,
        StallCause::FilterStarved,
        StallCause::Drained,
        StallCause::Injected,
        StallCause::Retransmit,
        StallCause::WaitAck,
    ];

    /// Stable kebab-case label used by the exporters.
    pub fn label(self) -> &'static str {
        match self {
            StallCause::WaitNeighborSync => "wait-neighbor-sync",
            StallCause::RingBackpressure => "ring-backpressure",
            StallCause::TxCooldown => "tx-cooldown",
            StallCause::FilterStarved => "filter-starved",
            StallCause::Drained => "drained",
            StallCause::Injected => "injected",
            StallCause::Retransmit => "retransmit",
            StallCause::WaitAck => "wait-ack",
        }
    }
}

/// Attribution totals for one (node, step).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepStalls {
    /// Idle cycles per [`StallCause`] (indexed by cause discriminant).
    pub stalled: [u64; StallCause::COUNT],
    /// Cycles the chip ticked with at least one busy PE.
    pub productive: u64,
}

impl StepStalls {
    /// Total idle cycles across all causes.
    pub fn idle(&self) -> u64 {
        self.stalled.iter().sum()
    }

    /// Total attributed cycles (`productive + idle`); equals the node's
    /// `force_cycles` for the step.
    pub fn total(&self) -> u64 {
        self.productive + self.idle()
    }

    /// Idle cycles of one cause.
    pub fn of(&self, cause: StallCause) -> u64 {
        self.stalled[cause as usize]
    }

    /// Fold another record into this one.
    pub fn merge(&mut self, other: &StepStalls) {
        for (a, b) in self.stalled.iter_mut().zip(other.stalled.iter()) {
            *a += b;
        }
        self.productive += other.productive;
    }
}

/// Per-node, per-step stall attribution for a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StallLedger {
    pub(crate) nodes: Vec<BTreeMap<u64, StepStalls>>,
}

impl StallLedger {
    /// Empty ledger for a node count.
    pub fn new(nodes: usize) -> Self {
        StallLedger {
            nodes: vec![BTreeMap::new(); nodes],
        }
    }

    /// Nodes tracked.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been attributed.
    pub fn is_empty(&self) -> bool {
        self.nodes.iter().all(BTreeMap::is_empty)
    }

    /// Attribute idle cycles to a cause.
    #[inline]
    pub fn stall(&mut self, node: usize, step: u64, cause: StallCause, cycles: u64) {
        self.nodes[node].entry(step).or_default().stalled[cause as usize] += cycles;
    }

    /// Attribute productive cycles.
    #[inline]
    pub fn productive(&mut self, node: usize, step: u64, cycles: u64) {
        self.nodes[node].entry(step).or_default().productive += cycles;
    }

    /// One (node, step) record, if anything was attributed.
    pub fn step(&self, node: usize, step: u64) -> Option<StepStalls> {
        self.nodes.get(node).and_then(|m| m.get(&step)).copied()
    }

    /// Iterate one node's records in step order.
    pub fn steps(&self, node: usize) -> impl Iterator<Item = (u64, &StepStalls)> {
        self.nodes[node].iter().map(|(s, r)| (*s, r))
    }

    /// Fold another ledger into this one (shard fold: each worker
    /// attributes only the nodes it owns, so entries never collide — but
    /// overlapping (node, step) records merge additively, matching what
    /// a single in-process run would have attributed).
    pub fn absorb(&mut self, other: &StallLedger) {
        assert_eq!(
            self.nodes.len(),
            other.nodes.len(),
            "ledger node counts differ"
        );
        for (mine, theirs) in self.nodes.iter_mut().zip(other.nodes.iter()) {
            for (&step, rec) in theirs {
                mine.entry(step).or_default().merge(rec);
            }
        }
    }

    /// Whole-run totals for one node.
    pub fn node_total(&self, node: usize) -> StepStalls {
        let mut t = StepStalls::default();
        for r in self.nodes[node].values() {
            t.merge(r);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates_per_node_step() {
        let mut l = StallLedger::new(2);
        l.productive(0, 0, 10);
        l.stall(0, 0, StallCause::WaitNeighborSync, 4);
        l.stall(0, 0, StallCause::WaitNeighborSync, 1);
        l.stall(1, 0, StallCause::Injected, 7);
        l.productive(0, 1, 3);

        let s = l.step(0, 0).unwrap();
        assert_eq!(s.productive, 10);
        assert_eq!(s.of(StallCause::WaitNeighborSync), 5);
        assert_eq!(s.idle(), 5);
        assert_eq!(s.total(), 15);
        assert_eq!(l.step(1, 0).unwrap().of(StallCause::Injected), 7);
        assert_eq!(l.step(1, 1), None);

        let t = l.node_total(0);
        assert_eq!(t.productive, 13);
        assert_eq!(t.idle(), 5);
        assert_eq!(l.steps(0).count(), 2);
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: Vec<_> = StallCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), StallCause::COUNT);
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(StallCause::WaitNeighborSync.label(), "wait-neighbor-sync");
    }
}
