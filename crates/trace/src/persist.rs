//! Wire persistence for trace data.
//!
//! The sharded cluster engine ships each worker's captured trace slice
//! to the coordinator over the exchange links, using the same
//! [`fasda_ckpt::Persist`] codec the checkpoint container uses. Every
//! encoding here is canonical — a fixed variant tag plus fields in
//! declaration order — so a stream that round-trips through a worker
//! boundary compares byte-identical to one captured in process.

use crate::event::{ChannelId, EventKind, PhaseId, TraceEvent};
use crate::stall::{StallCause, StallLedger, StepStalls};
use crate::{NodeStream, TraceLevel};
use fasda_ckpt::{CkptError, Persist, Reader, Writer};

impl Persist for PhaseId {
    fn save(&self, w: &mut Writer) {
        w.put_u8(match self {
            PhaseId::Force => 0,
            PhaseId::MotionUpdate => 1,
            PhaseId::BarrierMu => 2,
            PhaseId::BarrierForce => 3,
        });
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(match r.get_u8()? {
            0 => PhaseId::Force,
            1 => PhaseId::MotionUpdate,
            2 => PhaseId::BarrierMu,
            3 => PhaseId::BarrierForce,
            t => return Err(r.malformed(format!("unknown PhaseId tag {t}"))),
        })
    }
}

impl Persist for ChannelId {
    fn save(&self, w: &mut Writer) {
        w.put_u8(match self {
            ChannelId::Pos => 0,
            ChannelId::Frc => 1,
            ChannelId::Mig => 2,
        });
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(match r.get_u8()? {
            0 => ChannelId::Pos,
            1 => ChannelId::Frc,
            2 => ChannelId::Mig,
            t => return Err(r.malformed(format!("unknown ChannelId tag {t}"))),
        })
    }
}

impl Persist for TraceLevel {
    fn save(&self, w: &mut Writer) {
        w.put_u8(match self {
            TraceLevel::Off => 0,
            TraceLevel::Sync => 1,
            TraceLevel::Full => 2,
        });
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(match r.get_u8()? {
            0 => TraceLevel::Off,
            1 => TraceLevel::Sync,
            2 => TraceLevel::Full,
            t => return Err(r.malformed(format!("unknown TraceLevel tag {t}"))),
        })
    }
}

impl Persist for EventKind {
    fn save(&self, w: &mut Writer) {
        match *self {
            EventKind::PhaseBegin { phase, step } => {
                w.put_u8(0);
                phase.save(w);
                w.put_u64(step);
            }
            EventKind::PhaseEnd {
                phase,
                step,
                cycles,
            } => {
                w.put_u8(1);
                phase.save(w);
                w.put_u64(step);
                w.put_u64(cycles);
            }
            EventKind::StallInjected { cycles } => {
                w.put_u8(2);
                w.put_u64(cycles);
            }
            EventKind::LastPosSent { peer } => {
                w.put_u8(3);
                w.put_u32(peer);
            }
            EventKind::LastFrcSent { peer } => {
                w.put_u8(4);
                w.put_u32(peer);
            }
            EventKind::LastMigSent { peer } => {
                w.put_u8(5);
                w.put_u32(peer);
            }
            EventKind::MarkerRecv {
                channel,
                from,
                step,
            } => {
                w.put_u8(6);
                channel.save(w);
                w.put_u32(from);
                w.put_u64(step);
            }
            EventKind::PacketSent {
                channel,
                to,
                payloads,
                last,
            } => {
                w.put_u8(7);
                channel.save(w);
                w.put_u32(to);
                w.put_u32(payloads);
                w.put_bool(last);
            }
            EventKind::PacketDelivered {
                channel,
                from,
                payloads,
                last,
            } => {
                w.put_u8(8);
                channel.save(w);
                w.put_u32(from);
                w.put_u32(payloads);
                w.put_bool(last);
            }
            EventKind::BarrierArrive { step } => {
                w.put_u8(9);
                w.put_u64(step);
            }
            EventKind::PeActivity {
                dispatched,
                ejected,
            } => {
                w.put_u8(10);
                w.put_u32(dispatched);
                w.put_u32(ejected);
            }
            EventKind::StepDone { step } => {
                w.put_u8(11);
                w.put_u64(step);
            }
            EventKind::FaultDrop {
                channel,
                to,
                seq,
                kill,
            } => {
                w.put_u8(12);
                channel.save(w);
                w.put_u32(to);
                w.put_u32(seq);
                w.put_bool(kill);
            }
            EventKind::FaultCorrupt { channel, to, seq } => {
                w.put_u8(13);
                channel.save(w);
                w.put_u32(to);
                w.put_u32(seq);
            }
            EventKind::FaultDuplicate { channel, to, seq } => {
                w.put_u8(14);
                channel.save(w);
                w.put_u32(to);
                w.put_u32(seq);
            }
            EventKind::FaultDelay {
                channel,
                to,
                seq,
                extra,
            } => {
                w.put_u8(15);
                channel.save(w);
                w.put_u32(to);
                w.put_u32(seq);
                w.put_u64(extra);
            }
            EventKind::Retransmit {
                channel,
                to,
                seq,
                attempt,
            } => {
                w.put_u8(16);
                channel.save(w);
                w.put_u32(to);
                w.put_u32(seq);
                w.put_u32(attempt);
            }
            EventKind::AckSent { channel, to, seq } => {
                w.put_u8(17);
                channel.save(w);
                w.put_u32(to);
                w.put_u32(seq);
            }
            EventKind::BurstOpen { window, busy } => {
                w.put_u8(18);
                w.put_u64(window);
                w.put_u32(busy);
            }
            EventKind::BurstRefused { window } => {
                w.put_u8(19);
                w.put_u64(window);
            }
            EventKind::FastForward { to_cycle, skipped } => {
                w.put_u8(20);
                w.put_u64(to_cycle);
                w.put_u64(skipped);
            }
        }
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(match r.get_u8()? {
            0 => EventKind::PhaseBegin {
                phase: PhaseId::load(r)?,
                step: r.get_u64()?,
            },
            1 => EventKind::PhaseEnd {
                phase: PhaseId::load(r)?,
                step: r.get_u64()?,
                cycles: r.get_u64()?,
            },
            2 => EventKind::StallInjected {
                cycles: r.get_u64()?,
            },
            3 => EventKind::LastPosSent { peer: r.get_u32()? },
            4 => EventKind::LastFrcSent { peer: r.get_u32()? },
            5 => EventKind::LastMigSent { peer: r.get_u32()? },
            6 => EventKind::MarkerRecv {
                channel: ChannelId::load(r)?,
                from: r.get_u32()?,
                step: r.get_u64()?,
            },
            7 => EventKind::PacketSent {
                channel: ChannelId::load(r)?,
                to: r.get_u32()?,
                payloads: r.get_u32()?,
                last: r.get_bool()?,
            },
            8 => EventKind::PacketDelivered {
                channel: ChannelId::load(r)?,
                from: r.get_u32()?,
                payloads: r.get_u32()?,
                last: r.get_bool()?,
            },
            9 => EventKind::BarrierArrive { step: r.get_u64()? },
            10 => EventKind::PeActivity {
                dispatched: r.get_u32()?,
                ejected: r.get_u32()?,
            },
            11 => EventKind::StepDone { step: r.get_u64()? },
            12 => EventKind::FaultDrop {
                channel: ChannelId::load(r)?,
                to: r.get_u32()?,
                seq: r.get_u32()?,
                kill: r.get_bool()?,
            },
            13 => EventKind::FaultCorrupt {
                channel: ChannelId::load(r)?,
                to: r.get_u32()?,
                seq: r.get_u32()?,
            },
            14 => EventKind::FaultDuplicate {
                channel: ChannelId::load(r)?,
                to: r.get_u32()?,
                seq: r.get_u32()?,
            },
            15 => EventKind::FaultDelay {
                channel: ChannelId::load(r)?,
                to: r.get_u32()?,
                seq: r.get_u32()?,
                extra: r.get_u64()?,
            },
            16 => EventKind::Retransmit {
                channel: ChannelId::load(r)?,
                to: r.get_u32()?,
                seq: r.get_u32()?,
                attempt: r.get_u32()?,
            },
            17 => EventKind::AckSent {
                channel: ChannelId::load(r)?,
                to: r.get_u32()?,
                seq: r.get_u32()?,
            },
            18 => EventKind::BurstOpen {
                window: r.get_u64()?,
                busy: r.get_u32()?,
            },
            19 => EventKind::BurstRefused {
                window: r.get_u64()?,
            },
            20 => EventKind::FastForward {
                to_cycle: r.get_u64()?,
                skipped: r.get_u64()?,
            },
            t => return Err(r.malformed(format!("unknown EventKind tag {t}"))),
        })
    }
}

impl Persist for TraceEvent {
    fn save(&self, w: &mut Writer) {
        w.put_u64(self.cycle);
        self.kind.save(w);
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(TraceEvent {
            cycle: r.get_u64()?,
            kind: EventKind::load(r)?,
        })
    }
}

impl Persist for NodeStream {
    fn save(&self, w: &mut Writer) {
        self.events.save(w);
        w.put_u64(self.dropped);
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(NodeStream {
            events: Persist::load(r)?,
            dropped: r.get_u64()?,
        })
    }
}

impl Persist for StepStalls {
    fn save(&self, w: &mut Writer) {
        self.stalled.save(w);
        w.put_u64(self.productive);
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(StepStalls {
            stalled: <[u64; StallCause::COUNT]>::load(r)?,
            productive: r.get_u64()?,
        })
    }
}

impl Persist for StallLedger {
    fn save(&self, w: &mut Writer) {
        self.nodes.save(w);
    }

    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok(StallLedger {
            nodes: Persist::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = Writer::new();
        v.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        let back = T::load(&mut r).expect("load");
        assert_eq!(&back, v);
        assert_eq!(r.remaining(), 0, "trailing bytes after {v:?}");
    }

    #[test]
    fn every_event_kind_roundtrips() {
        use EventKind::*;
        let kinds = [
            PhaseBegin {
                phase: PhaseId::Force,
                step: 3,
            },
            PhaseEnd {
                phase: PhaseId::MotionUpdate,
                step: 3,
                cycles: 99,
            },
            StallInjected { cycles: 1000 },
            LastPosSent { peer: 7 },
            LastFrcSent { peer: 0 },
            LastMigSent { peer: 2 },
            MarkerRecv {
                channel: ChannelId::Mig,
                from: 5,
                step: 4,
            },
            PacketSent {
                channel: ChannelId::Pos,
                to: 1,
                payloads: 4,
                last: true,
            },
            PacketDelivered {
                channel: ChannelId::Frc,
                from: 2,
                payloads: 3,
                last: false,
            },
            BarrierArrive { step: 8 },
            PeActivity {
                dispatched: 12,
                ejected: 9,
            },
            StepDone { step: 2 },
            FaultDrop {
                channel: ChannelId::Pos,
                to: 3,
                seq: 17,
                kill: true,
            },
            FaultCorrupt {
                channel: ChannelId::Frc,
                to: 0,
                seq: 1,
            },
            FaultDuplicate {
                channel: ChannelId::Mig,
                to: 6,
                seq: 2,
            },
            FaultDelay {
                channel: ChannelId::Pos,
                to: 1,
                seq: 3,
                extra: 64,
            },
            Retransmit {
                channel: ChannelId::Frc,
                to: 4,
                seq: 5,
                attempt: 2,
            },
            AckSent {
                channel: ChannelId::Pos,
                to: 5,
                seq: 30,
            },
            BurstOpen {
                window: 128,
                busy: 4,
            },
            BurstRefused { window: 3 },
            FastForward {
                to_cycle: 5000,
                skipped: 4000,
            },
        ];
        for kind in kinds {
            roundtrip(&TraceEvent { cycle: 42, kind });
        }
    }

    #[test]
    fn stream_and_ledger_roundtrip() {
        let stream = NodeStream {
            events: vec![
                TraceEvent {
                    cycle: 1,
                    kind: EventKind::StepDone { step: 0 },
                },
                TraceEvent {
                    cycle: 9,
                    kind: EventKind::LastPosSent { peer: 1 },
                },
            ],
            dropped: 5,
        };
        roundtrip(&stream);

        let mut ledger = StallLedger::new(3);
        ledger.productive(0, 0, 10);
        ledger.stall(2, 1, StallCause::Injected, 77);
        roundtrip(&ledger);
        roundtrip(&StallLedger::new(0));
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut w = Writer::new();
        w.put_u8(21);
        let bytes = w.into_bytes();
        assert!(EventKind::load(&mut Reader::new(&bytes, "test")).is_err());
        assert!(PhaseId::load(&mut Reader::new(&[9], "test")).is_err());
        assert!(ChannelId::load(&mut Reader::new(&[9], "test")).is_err());
        assert!(TraceLevel::load(&mut Reader::new(&[9], "test")).is_err());
    }

    #[test]
    fn absorb_merges_disjoint_shards() {
        let mut a = StallLedger::new(4);
        a.productive(0, 0, 5);
        a.stall(1, 0, StallCause::Drained, 2);
        let mut b = StallLedger::new(4);
        b.productive(2, 0, 7);
        b.stall(1, 0, StallCause::Drained, 3);

        let mut merged = StallLedger::new(4);
        merged.absorb(&a);
        merged.absorb(&b);
        assert_eq!(merged.step(0, 0).unwrap().productive, 5);
        assert_eq!(merged.step(2, 0).unwrap().productive, 7);
        assert_eq!(merged.step(1, 0).unwrap().of(StallCause::Drained), 5);
    }
}
