//! # fasda-trace
//!
//! Cycle-level flight recorder for the FASDA simulator.
//!
//! Three layers, dependency-free by design (the workspace has no real
//! serde — `shims/serde` is a marker-trait stand-in):
//!
//! * **Events** ([`TraceEvent`]/[`EventKind`]): structured per-node
//!   records — phase begin/end, chained-sync marker handshakes, packet
//!   send/deliver, PE dispatch/eject activity, injected straggler stalls
//!   — stamped in **global cluster cycles**, so every engine
//!   configuration (serial oracle, rayon two-phase tick, burst stepping)
//!   emits byte-identical per-node streams. Engine-level events
//!   (burst windows opened/refused, fast-forward jumps) live in a
//!   separate stream because they describe how the *simulator* ran, not
//!   what the *simulated machine* did.
//! * **Stall attribution** ([`StallLedger`]/[`StallCause`]): every idle
//!   force-phase cycle of every node classified into
//!   `wait-neighbor-sync | ring-backpressure | tx-cooldown |
//!   filter-starved | drained | injected | retransmit | wait-ack`,
//!   rolled up per (node, step).
//!   The invariant `productive + stalled == force_cycles` holds exactly
//!   per step.
//! * **Exporters**: [`chrome::chrome_trace`] renders a Perfetto-loadable
//!   Chrome trace-event JSON (one process per node, one track per event
//!   class); [`json::Json`] is the shared machine-readable JSON
//!   writer/parser the bench and report emitters build on.
//!
//! Recording is zero-cost when disabled: [`NodeRecorder::enabled`] and
//! [`NodeRecorder::wants`] are inlined flag tests, so hot paths guard
//! event construction behind them and a disabled recorder never
//! allocates.

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod persist;
pub mod stall;

pub use chrome::chrome_trace;
pub use event::{ChannelId, EventKind, PhaseId, TraceEvent};
pub use json::Json;
pub use metrics::{provenance_json, stall_json, trace_summary_json, trace_summary_json_with};
pub use stall::{StallCause, StallLedger, StepStalls};

use std::collections::VecDeque;

/// How much the recorder captures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TraceLevel {
    /// Record nothing; every recorder operation is a no-op.
    Off,
    /// Driver-level events: phases, sync handshakes, packets, stalls.
    Sync,
    /// `Sync` plus chip-internal PE dispatch/eject activity per cycle.
    Full,
}

impl TraceLevel {
    /// Ordering test without deriving `Ord` on a semantic enum.
    #[inline]
    pub fn at_least(self, other: TraceLevel) -> bool {
        (self as u8) >= (other as u8)
    }
}

/// Recorder configuration, resolved at `Cluster` construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Capture level.
    pub level: TraceLevel,
    /// Ring-buffer capacity per node stream; the oldest events are
    /// dropped (and counted) once a stream overflows.
    pub capacity: usize,
}

impl TraceConfig {
    /// Default per-node ring capacity.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Tracing disabled.
    pub const OFF: TraceConfig = TraceConfig {
        level: TraceLevel::Off,
        capacity: 0,
    };

    /// Driver-level tracing with the default ring capacity.
    pub fn sync() -> Self {
        TraceConfig {
            level: TraceLevel::Sync,
            capacity: Self::DEFAULT_CAPACITY,
        }
    }

    /// Full tracing (including PE activity) with the default capacity.
    pub fn full() -> Self {
        TraceConfig {
            level: TraceLevel::Full,
            capacity: Self::DEFAULT_CAPACITY,
        }
    }

    /// Override the per-node ring capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self::OFF
    }
}

/// One finished event stream: what a [`NodeRecorder`] captured.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeStream {
    /// Events in emission order (oldest may have been dropped).
    pub events: Vec<TraceEvent>,
    /// Events dropped to ring-buffer overflow.
    pub dropped: u64,
}

/// Bounded per-node event recorder.
///
/// The `Off` recorder is a zero-capacity no-op; hot paths check
/// [`NodeRecorder::enabled`]/[`NodeRecorder::wants`] (inlined flag
/// tests) before building event payloads, so disabled tracing costs one
/// predictable branch.
#[derive(Clone, Debug)]
pub struct NodeRecorder {
    level: TraceLevel,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl NodeRecorder {
    /// A disabled recorder (no allocation).
    pub const fn off() -> Self {
        NodeRecorder {
            level: TraceLevel::Off,
            capacity: 0,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// A recorder for a configuration (disabled when `cfg.level` is
    /// `Off`).
    pub fn new(cfg: TraceConfig) -> Self {
        if cfg.level == TraceLevel::Off {
            return Self::off();
        }
        NodeRecorder {
            level: cfg.level,
            capacity: cfg.capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Whether any recording is active.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.level != TraceLevel::Off
    }

    /// Whether events of the given level are recorded.
    #[inline]
    pub fn wants(&self, level: TraceLevel) -> bool {
        self.level != TraceLevel::Off && self.level.at_least(level)
    }

    /// Capture level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Record one event at a global cycle. No-op when disabled; drops
    /// the oldest event (counting it) when the ring is full.
    #[inline]
    pub fn push(&mut self, cycle: u64, kind: EventKind) {
        if self.level == TraceLevel::Off {
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { cycle, kind });
    }

    /// Events dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded (or recording is off).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drain the captured stream, resetting the recorder for the next
    /// window (level and capacity are kept).
    pub fn take(&mut self) -> NodeStream {
        NodeStream {
            events: std::mem::take(&mut self.events).into(),
            dropped: std::mem::take(&mut self.dropped),
        }
    }
}

impl Default for NodeRecorder {
    fn default() -> Self {
        Self::off()
    }
}

/// A complete captured run: per-node streams, the engine stream, and
/// the stall ledger.
///
/// Per-node streams and the ledger are engine-invariant (byte-identical
/// across the serial oracle and every optimized engine); the `engine`
/// stream records how the simulator itself executed (burst windows,
/// fast-forward jumps) and legitimately differs between engines.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Capture level the run used.
    pub level: Option<TraceLevel>,
    /// One stream per node, in node order.
    pub nodes: Vec<NodeStream>,
    /// Simulator-level events (burst/fast-forward), not part of the
    /// deterministic per-node record.
    pub engine: NodeStream,
    /// Per-(node, step) stall attribution.
    pub stalls: StallLedger,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_is_inert() {
        let mut r = NodeRecorder::off();
        assert!(!r.enabled());
        assert!(!r.wants(TraceLevel::Sync));
        r.push(3, EventKind::StepDone { step: 0 });
        assert!(r.is_empty());
        assert_eq!(r.take(), NodeStream::default());
    }

    #[test]
    fn levels_nest() {
        let sync = NodeRecorder::new(TraceConfig::sync());
        assert!(sync.wants(TraceLevel::Sync));
        assert!(!sync.wants(TraceLevel::Full));
        let full = NodeRecorder::new(TraceConfig::full());
        assert!(full.wants(TraceLevel::Sync));
        assert!(full.wants(TraceLevel::Full));
    }

    #[test]
    fn ring_drops_oldest() {
        let mut r = NodeRecorder::new(TraceConfig::sync().with_capacity(2));
        for step in 0..5 {
            r.push(step, EventKind::StepDone { step });
        }
        let s = r.take();
        assert_eq!(s.dropped, 3);
        assert_eq!(s.events.len(), 2);
        assert_eq!(s.events[0].cycle, 3);
        assert_eq!(s.events[1].cycle, 4);
        // the recorder is reusable after take()
        r.push(9, EventKind::StepDone { step: 9 });
        let s2 = r.take();
        assert_eq!(s2.dropped, 0);
        assert_eq!(s2.events.len(), 1);
    }
}
