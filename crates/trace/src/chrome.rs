//! Chrome trace-event exporter (Perfetto-loadable).
//!
//! Layout: one *process* per node (pid = node index) with three
//! threads — `phase` (tid 0, `B`/`E` spans), `sync` (tid 1, instants
//! for markers/barriers/stalls), `net` (tid 2, packet instants) — plus
//! counter tracks for PE activity (`Full` level) and per-step stall
//! attribution. Engine-level events (burst windows, fast-forward) get
//! their own process after the last node. Timestamps are global cycles
//! reported in the format's microsecond field, so 1 µs on screen is
//! 1 simulated cycle.

use crate::event::{EventKind, PhaseId};
use crate::json::Json;
use crate::stall::StallCause;
use crate::{NodeStream, Trace};

const TID_PHASE: i64 = 0;
const TID_SYNC: i64 = 1;
const TID_NET: i64 = 2;

/// Render a captured [`Trace`] as a Chrome trace-event JSON document.
pub fn chrome_trace(trace: &Trace) -> String {
    let mut events = Vec::new();
    let engine_pid = trace.nodes.len();

    for (node, stream) in trace.nodes.iter().enumerate() {
        events.push(process_name(node, &format!("node {node}")));
        events.push(thread_name(node, TID_PHASE, "phase"));
        events.push(thread_name(node, TID_SYNC, "sync"));
        events.push(thread_name(node, TID_NET, "net"));
        node_events(node, stream, trace, &mut events);
    }

    if !trace.engine.events.is_empty() {
        events.push(process_name(engine_pid, "engine"));
        events.push(thread_name(engine_pid, TID_PHASE, "scheduler"));
        for ev in &trace.engine.events {
            let (name, args) = match ev.kind {
                EventKind::BurstOpen { window, busy } => (
                    "burst-open",
                    Json::obj()
                        .field("window", Json::uint(window))
                        .field("busy", busy)
                        .build(),
                ),
                EventKind::BurstRefused { window } => (
                    "burst-refused",
                    Json::obj().field("window", Json::uint(window)).build(),
                ),
                EventKind::FastForward { to_cycle, skipped } => (
                    "fast-forward",
                    Json::obj()
                        .field("to_cycle", Json::uint(to_cycle))
                        .field("skipped", Json::uint(skipped))
                        .build(),
                ),
                _ => continue,
            };
            events.push(instant(engine_pid, TID_PHASE, ev.cycle, name, args));
        }
    }

    Json::obj()
        .field("traceEvents", Json::Arr(events))
        .field("displayTimeUnit", "ms")
        .field(
            "otherData",
            Json::obj()
                .field("clock", "global-cycles")
                .field("nodes", trace.nodes.len())
                .build(),
        )
        .build()
        .pretty()
}

fn node_events(node: usize, stream: &NodeStream, trace: &Trace, out: &mut Vec<Json>) {
    for ev in &stream.events {
        let cycle = ev.cycle;
        match ev.kind {
            EventKind::PhaseBegin { phase, step } => {
                out.push(
                    event(node, TID_PHASE, cycle, phase.label(), "B")
                        .field("args", Json::obj().field("step", Json::uint(step)).build())
                        .build(),
                );
            }
            EventKind::PhaseEnd { phase, step, cycles } => {
                out.push(
                    event(node, TID_PHASE, cycle, phase.label(), "E")
                        .field(
                            "args",
                            Json::obj()
                                .field("step", Json::uint(step))
                                .field("cycles", Json::uint(cycles))
                                .build(),
                        )
                        .build(),
                );
                if phase == PhaseId::Force {
                    stall_counter(node, step, cycle, trace, out);
                }
            }
            EventKind::StallInjected { cycles } => out.push(instant(
                node,
                TID_SYNC,
                cycle,
                "stall-injected",
                Json::obj().field("cycles", Json::uint(cycles)).build(),
            )),
            EventKind::LastPosSent { peer } => out.push(instant(
                node,
                TID_SYNC,
                cycle,
                "last-pos-sent",
                Json::obj().field("peer", peer).build(),
            )),
            EventKind::LastFrcSent { peer } => out.push(instant(
                node,
                TID_SYNC,
                cycle,
                "last-frc-sent",
                Json::obj().field("peer", peer).build(),
            )),
            EventKind::LastMigSent { peer } => out.push(instant(
                node,
                TID_SYNC,
                cycle,
                "last-mig-sent",
                Json::obj().field("peer", peer).build(),
            )),
            EventKind::MarkerRecv { channel, from, step } => out.push(instant(
                node,
                TID_SYNC,
                cycle,
                &format!("last-{}-recv", channel.label()),
                Json::obj()
                    .field("from", from)
                    .field("step", Json::uint(step))
                    .build(),
            )),
            EventKind::PacketSent {
                channel,
                to,
                payloads,
                last,
            } => out.push(instant(
                node,
                TID_NET,
                cycle,
                &format!("{}-send", channel.label()),
                Json::obj()
                    .field("to", to)
                    .field("payloads", payloads)
                    .field("last", last)
                    .build(),
            )),
            EventKind::PacketDelivered {
                channel,
                from,
                payloads,
                last,
            } => out.push(instant(
                node,
                TID_NET,
                cycle,
                &format!("{}-recv", channel.label()),
                Json::obj()
                    .field("from", from)
                    .field("payloads", payloads)
                    .field("last", last)
                    .build(),
            )),
            EventKind::BarrierArrive { step } => out.push(instant(
                node,
                TID_SYNC,
                cycle,
                "barrier-arrive",
                Json::obj().field("step", Json::uint(step)).build(),
            )),
            EventKind::PeActivity { dispatched, ejected } => out.push(
                event(node, TID_PHASE, cycle, "pe-activity", "C")
                    .field(
                        "args",
                        Json::obj()
                            .field("dispatched", dispatched)
                            .field("ejected", ejected)
                            .build(),
                    )
                    .build(),
            ),
            EventKind::StepDone { step } => out.push(instant(
                node,
                TID_SYNC,
                cycle,
                "step-done",
                Json::obj().field("step", Json::uint(step)).build(),
            )),
            EventKind::FaultDrop { channel, to, seq, kill } => out.push(instant(
                node,
                TID_NET,
                cycle,
                &format!("{}-fault-drop", channel.label()),
                Json::obj()
                    .field("to", to)
                    .field("seq", seq)
                    .field("kill", kill)
                    .build(),
            )),
            EventKind::FaultCorrupt { channel, to, seq } => out.push(instant(
                node,
                TID_NET,
                cycle,
                &format!("{}-fault-corrupt", channel.label()),
                Json::obj().field("to", to).field("seq", seq).build(),
            )),
            EventKind::FaultDuplicate { channel, to, seq } => out.push(instant(
                node,
                TID_NET,
                cycle,
                &format!("{}-fault-dup", channel.label()),
                Json::obj().field("to", to).field("seq", seq).build(),
            )),
            EventKind::FaultDelay { channel, to, seq, extra } => out.push(instant(
                node,
                TID_NET,
                cycle,
                &format!("{}-fault-delay", channel.label()),
                Json::obj()
                    .field("to", to)
                    .field("seq", seq)
                    .field("extra", Json::uint(extra))
                    .build(),
            )),
            EventKind::Retransmit { channel, to, seq, attempt } => out.push(instant(
                node,
                TID_NET,
                cycle,
                &format!("{}-retransmit", channel.label()),
                Json::obj()
                    .field("to", to)
                    .field("seq", seq)
                    .field("attempt", attempt)
                    .build(),
            )),
            EventKind::AckSent { channel, to, seq } => out.push(instant(
                node,
                TID_NET,
                cycle,
                &format!("{}-ack", channel.label()),
                Json::obj().field("to", to).field("seq", seq).build(),
            )),
            // engine-stream kinds never appear in node streams
            EventKind::BurstOpen { .. }
            | EventKind::BurstRefused { .. }
            | EventKind::FastForward { .. } => {}
        }
    }
}

fn stall_counter(node: usize, step: u64, cycle: u64, trace: &Trace, out: &mut Vec<Json>) {
    let Some(stalls) = trace.stalls.step(node, step) else {
        return;
    };
    let mut args = Json::obj().field("productive", Json::uint(stalls.productive));
    for cause in StallCause::ALL {
        args = args.field(cause.label(), Json::uint(stalls.of(cause)));
    }
    out.push(
        event(node, TID_PHASE, cycle, "force-stalls", "C")
            .field("args", args.build())
            .build(),
    );
}

fn event(pid: usize, tid: i64, cycle: u64, name: &str, ph: &str) -> crate::json::ObjBuilder {
    Json::obj()
        .field("name", name)
        .field("ph", ph)
        .field("ts", Json::uint(cycle))
        .field("pid", pid)
        .field("tid", Json::Int(tid))
}

fn instant(pid: usize, tid: i64, cycle: u64, name: &str, args: Json) -> Json {
    event(pid, tid, cycle, name, "i")
        .field("s", "t")
        .field("args", args)
        .build()
}

fn process_name(pid: usize, name: &str) -> Json {
    Json::obj()
        .field("name", "process_name")
        .field("ph", "M")
        .field("pid", pid)
        .field("tid", Json::Int(0))
        .field("args", Json::obj().field("name", name).build())
        .build()
}

fn thread_name(pid: usize, tid: i64, name: &str) -> Json {
    Json::obj()
        .field("name", "thread_name")
        .field("ph", "M")
        .field("pid", pid)
        .field("tid", Json::Int(tid))
        .field("args", Json::obj().field("name", name).build())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ChannelId, TraceEvent};
    use crate::stall::StallLedger;
    use crate::TraceLevel;

    fn sample_trace() -> Trace {
        let mut stalls = StallLedger::new(1);
        stalls.productive(0, 0, 8);
        stalls.stall(0, 0, StallCause::WaitNeighborSync, 4);
        Trace {
            level: Some(TraceLevel::Full),
            nodes: vec![NodeStream {
                events: vec![
                    TraceEvent {
                        cycle: 0,
                        kind: EventKind::PhaseBegin {
                            phase: PhaseId::Force,
                            step: 0,
                        },
                    },
                    TraceEvent {
                        cycle: 3,
                        kind: EventKind::PacketSent {
                            channel: ChannelId::Pos,
                            to: 1,
                            payloads: 5,
                            last: true,
                        },
                    },
                    TraceEvent {
                        cycle: 5,
                        kind: EventKind::PeActivity {
                            dispatched: 2,
                            ejected: 1,
                        },
                    },
                    TraceEvent {
                        cycle: 12,
                        kind: EventKind::PhaseEnd {
                            phase: PhaseId::Force,
                            step: 0,
                            cycles: 12,
                        },
                    },
                ],
                dropped: 0,
            }],
            engine: NodeStream {
                events: vec![TraceEvent {
                    cycle: 4,
                    kind: EventKind::BurstOpen { window: 8, busy: 1 },
                }],
                dropped: 0,
            },
            stalls,
        }
    }

    #[test]
    fn export_parses_and_has_tracks() {
        let text = chrome_trace(&sample_trace());
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().items();
        assert!(!events.is_empty());
        // every event has the mandatory fields
        for ev in events {
            assert!(ev.get("ph").and_then(Json::as_str).is_some());
            assert!(ev.get("pid").and_then(Json::as_i64).is_some());
            assert!(ev.get("ts").and_then(Json::as_i64).is_some() || ev.get("ph").unwrap().as_str() == Some("M"));
        }
        // B/E pair for the force phase
        let phs: Vec<_> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("force"))
            .map(|e| e.get("ph").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(phs, vec!["B", "E"]);
        // stall counter rides on the force PhaseEnd cycle
        let counter = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("force-stalls"))
            .unwrap();
        assert_eq!(counter.get("ts").unwrap().as_i64(), Some(12));
        let args = counter.get("args").unwrap();
        assert_eq!(args.get("productive").unwrap().as_i64(), Some(8));
        assert_eq!(args.get("wait-neighbor-sync").unwrap().as_i64(), Some(4));
        // engine process present
        let engine = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("burst-open"))
            .unwrap();
        assert_eq!(engine.get("pid").unwrap().as_i64(), Some(1));
    }
}
