//! Machine-readable metrics JSON built on [`crate::json::Json`].
//!
//! These helpers turn captured traces and ledgers into stable JSON
//! sections that the CLI, the report module, and the bench emitters
//! compose into their documents.

use crate::json::Json;
use crate::stall::{StallCause, StallLedger, StepStalls};
use crate::{Trace, TraceLevel};

fn step_stalls_json(s: &StepStalls) -> Json {
    let mut obj = Json::obj()
        .field("productive", Json::uint(s.productive))
        .field("idle", Json::uint(s.idle()))
        .field("total", Json::uint(s.total()));
    for cause in StallCause::ALL {
        obj = obj.field(cause.label(), Json::uint(s.of(cause)));
    }
    obj.build()
}

/// Stall-attribution rollup: per-node totals plus per-step breakdowns.
pub fn stall_json(ledger: &StallLedger) -> Json {
    let mut nodes = Vec::new();
    for node in 0..ledger.num_nodes() {
        let steps: Vec<Json> = ledger
            .steps(node)
            .map(|(step, s)| {
                let mut obj = Json::obj().field("step", Json::uint(step));
                if let Json::Obj(fields) = step_stalls_json(s) {
                    for (k, v) in fields {
                        obj = obj.field(&k, v);
                    }
                }
                obj.build()
            })
            .collect();
        nodes.push(
            Json::obj()
                .field("node", node)
                .field("total", step_stalls_json(&ledger.node_total(node)))
                .field("steps", Json::Arr(steps))
                .build(),
        );
    }
    Json::obj().field("nodes", Json::Arr(nodes)).build()
}

/// Summary of a captured trace: level, per-node event/drop counts.
pub fn trace_summary_json(trace: &Trace) -> Json {
    let level = match trace.level {
        None | Some(TraceLevel::Off) => "off",
        Some(TraceLevel::Sync) => "sync",
        Some(TraceLevel::Full) => "full",
    };
    let nodes: Vec<Json> = trace
        .nodes
        .iter()
        .enumerate()
        .map(|(node, s)| {
            Json::obj()
                .field("node", node)
                .field("events", s.events.len())
                .field("dropped", Json::uint(s.dropped))
                .build()
        })
        .collect();
    Json::obj()
        .field("level", level)
        .field("nodes", Json::Arr(nodes))
        .field("engine_events", trace.engine.events.len())
        .field("engine_dropped", Json::uint(trace.engine.dropped))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_json_rolls_up() {
        let mut ledger = StallLedger::new(2);
        ledger.productive(0, 0, 6);
        ledger.stall(0, 0, StallCause::Drained, 2);
        ledger.productive(0, 1, 4);
        ledger.stall(1, 0, StallCause::TxCooldown, 9);

        let doc = stall_json(&ledger);
        let nodes = doc.get("nodes").unwrap().items();
        assert_eq!(nodes.len(), 2);
        let n0 = &nodes[0];
        assert_eq!(n0.get("node").unwrap().as_i64(), Some(0));
        let total = n0.get("total").unwrap();
        assert_eq!(total.get("productive").unwrap().as_i64(), Some(10));
        assert_eq!(total.get("drained").unwrap().as_i64(), Some(2));
        assert_eq!(total.get("total").unwrap().as_i64(), Some(12));
        assert_eq!(n0.get("steps").unwrap().items().len(), 2);
        let n1_total = nodes[1].get("total").unwrap();
        assert_eq!(n1_total.get("tx-cooldown").unwrap().as_i64(), Some(9));
        // round-trips through the parser
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn trace_summary_counts_streams() {
        use crate::event::{EventKind, TraceEvent};
        use crate::NodeStream;
        let trace = Trace {
            level: Some(TraceLevel::Sync),
            nodes: vec![
                NodeStream {
                    events: vec![TraceEvent {
                        cycle: 1,
                        kind: EventKind::StepDone { step: 0 },
                    }],
                    dropped: 2,
                },
                NodeStream::default(),
            ],
            engine: NodeStream::default(),
            stalls: StallLedger::new(2),
        };
        let doc = trace_summary_json(&trace);
        assert_eq!(doc.get("level").unwrap().as_str(), Some("sync"));
        let nodes = doc.get("nodes").unwrap().items();
        assert_eq!(nodes[0].get("events").unwrap().as_i64(), Some(1));
        assert_eq!(nodes[0].get("dropped").unwrap().as_i64(), Some(2));
        assert_eq!(doc.get("engine_events").unwrap().as_i64(), Some(0));
    }
}
