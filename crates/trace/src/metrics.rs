//! Machine-readable metrics JSON built on [`crate::json::Json`].
//!
//! These helpers turn captured traces and ledgers into stable JSON
//! sections that the CLI, the report module, and the bench emitters
//! compose into their documents.

use crate::json::Json;
use crate::stall::{StallCause, StallLedger, StepStalls};
use crate::{Trace, TraceLevel};

fn step_stalls_json(s: &StepStalls) -> Json {
    let mut obj = Json::obj()
        .field("productive", Json::uint(s.productive))
        .field("idle", Json::uint(s.idle()))
        .field("total", Json::uint(s.total()));
    for cause in StallCause::ALL {
        obj = obj.field(cause.label(), Json::uint(s.of(cause)));
    }
    obj.build()
}

/// Stall-attribution rollup: per-node totals plus per-step breakdowns.
pub fn stall_json(ledger: &StallLedger) -> Json {
    let mut nodes = Vec::new();
    for node in 0..ledger.num_nodes() {
        let steps: Vec<Json> = ledger
            .steps(node)
            .map(|(step, s)| {
                let mut obj = Json::obj().field("step", Json::uint(step));
                if let Json::Obj(fields) = step_stalls_json(s) {
                    for (k, v) in fields {
                        obj = obj.field(&k, v);
                    }
                }
                obj.build()
            })
            .collect();
        nodes.push(
            Json::obj()
                .field("node", node)
                .field("total", step_stalls_json(&ledger.node_total(node)))
                .field("steps", Json::Arr(steps))
                .build(),
        );
    }
    Json::obj().field("nodes", Json::Arr(nodes)).build()
}

/// Shard provenance: which execution context owned which node range.
/// `shards` is `(shard index, first owned node, one-past-last)` in
/// shard order; a non-sharded run is the single span `(0, 0, nodes)`.
pub fn provenance_json(shards: &[(u32, u64, u64)]) -> Json {
    let entries: Vec<Json> = shards
        .iter()
        .map(|(shard, start, end)| {
            Json::obj()
                .field("shard", Json::uint(*shard as u64))
                .field("nodes", format!("{start}..{end}"))
                .field("owned", Json::uint(end.saturating_sub(*start)))
                .build()
        })
        .collect();
    Json::obj()
        .field("shards", Json::uint(shards.len() as u64))
        .field("ranges", Json::Arr(entries))
        .build()
}

/// [`trace_summary_json`] plus shard/worker provenance — which shard
/// attributed each node's events. The plain summary stays unchanged so
/// existing byte-diff gates (which never pass shard flags) are
/// unaffected; callers with topology knowledge use this variant.
pub fn trace_summary_json_with(trace: &Trace, shards: &[(u32, u64, u64)]) -> Json {
    let mut obj = Json::obj();
    if let Json::Obj(fields) = trace_summary_json(trace) {
        for (k, v) in fields {
            obj = obj.field(&k, v);
        }
    }
    obj.field("provenance", provenance_json(shards)).build()
}

/// Summary of a captured trace: level, per-node event/drop counts.
pub fn trace_summary_json(trace: &Trace) -> Json {
    let level = match trace.level {
        None | Some(TraceLevel::Off) => "off",
        Some(TraceLevel::Sync) => "sync",
        Some(TraceLevel::Full) => "full",
    };
    let nodes: Vec<Json> = trace
        .nodes
        .iter()
        .enumerate()
        .map(|(node, s)| {
            Json::obj()
                .field("node", node)
                .field("events", s.events.len())
                .field("dropped", Json::uint(s.dropped))
                .build()
        })
        .collect();
    Json::obj()
        .field("level", level)
        .field("nodes", Json::Arr(nodes))
        .field("engine_events", trace.engine.events.len())
        .field("engine_dropped", Json::uint(trace.engine.dropped))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_json_rolls_up() {
        let mut ledger = StallLedger::new(2);
        ledger.productive(0, 0, 6);
        ledger.stall(0, 0, StallCause::Drained, 2);
        ledger.productive(0, 1, 4);
        ledger.stall(1, 0, StallCause::TxCooldown, 9);

        let doc = stall_json(&ledger);
        let nodes = doc.get("nodes").unwrap().items();
        assert_eq!(nodes.len(), 2);
        let n0 = &nodes[0];
        assert_eq!(n0.get("node").unwrap().as_i64(), Some(0));
        let total = n0.get("total").unwrap();
        assert_eq!(total.get("productive").unwrap().as_i64(), Some(10));
        assert_eq!(total.get("drained").unwrap().as_i64(), Some(2));
        assert_eq!(total.get("total").unwrap().as_i64(), Some(12));
        assert_eq!(n0.get("steps").unwrap().items().len(), 2);
        let n1_total = nodes[1].get("total").unwrap();
        assert_eq!(n1_total.get("tx-cooldown").unwrap().as_i64(), Some(9));
        // round-trips through the parser
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn provenance_lists_every_shard_span() {
        let doc = provenance_json(&[(0, 0, 4), (1, 4, 8)]);
        assert_eq!(doc.get("shards").unwrap().as_i64(), Some(2));
        let ranges = doc.get("ranges").unwrap().items();
        assert_eq!(ranges[0].get("nodes").unwrap().as_str(), Some("0..4"));
        assert_eq!(ranges[1].get("shard").unwrap().as_i64(), Some(1));
        assert_eq!(ranges[1].get("owned").unwrap().as_i64(), Some(4));
        assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn summary_with_provenance_extends_plain_summary() {
        let trace = Trace {
            level: Some(TraceLevel::Full),
            nodes: vec![crate::NodeStream::default(); 2],
            engine: crate::NodeStream::default(),
            stalls: StallLedger::new(2),
        };
        let with = trace_summary_json_with(&trace, &[(0, 0, 2)]);
        // Every plain-summary field survives unchanged...
        if let Json::Obj(fields) = trace_summary_json(&trace) {
            for (k, v) in &fields {
                assert_eq!(with.get(k), Some(v), "field {k} changed");
            }
        }
        // ...and the provenance section is appended.
        let prov = with.get("provenance").unwrap();
        assert_eq!(prov.get("shards").unwrap().as_i64(), Some(1));
        assert_eq!(Json::parse(&with.compact()).unwrap(), with);
    }

    #[test]
    fn trace_summary_counts_streams() {
        use crate::event::{EventKind, TraceEvent};
        use crate::NodeStream;
        let trace = Trace {
            level: Some(TraceLevel::Sync),
            nodes: vec![
                NodeStream {
                    events: vec![TraceEvent {
                        cycle: 1,
                        kind: EventKind::StepDone { step: 0 },
                    }],
                    dropped: 2,
                },
                NodeStream::default(),
            ],
            engine: NodeStream::default(),
            stalls: StallLedger::new(2),
        };
        let doc = trace_summary_json(&trace);
        assert_eq!(doc.get("level").unwrap().as_str(), Some("sync"));
        let nodes = doc.get("nodes").unwrap().items();
        assert_eq!(nodes[0].get("events").unwrap().as_i64(), Some(1));
        assert_eq!(nodes[0].get("dropped").unwrap().as_i64(), Some(2));
        assert_eq!(doc.get("engine_events").unwrap().as_i64(), Some(0));
    }
}
