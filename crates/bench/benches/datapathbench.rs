//! Datapath kernel micro-benchmarks: the scalar per-comparison
//! `filter()`/`force()` walk vs the SoA batch kernels
//! (`ForceDatapath::filter_scan_into` + `force_batch`) that the timed
//! model's stations dispatch through.
//!
//! Same hand-rolled harness as `microbench` (no external bench
//! framework). Run with `cargo bench --bench datapathbench`.

use fasda_arith::fixed::FixVec3;
use fasda_arith::interp::TableConfig;
use fasda_core::datapath::{FilteredPair, ForceDatapath, HomeSoa};
use fasda_md::element::{Element, PairTable};
use fasda_md::units::UnitSystem;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Time `f` and print ns/iter, criterion-style.
fn bench<R>(group: &str, name: &str, min: Duration, mut f: impl FnMut() -> R) {
    let t = Instant::now();
    let mut iters = 0u64;
    while t.elapsed() < min / 4 {
        black_box(f());
        iters += 1;
    }
    let target = iters.max(1) * 4;
    let t = Instant::now();
    for _ in 0..target {
        black_box(f());
    }
    let per = t.elapsed().as_nanos() as f64 / target as f64;
    println!("{group}/{name:<28} {per:>14.1} ns/iter ({target} iters)");
}

/// Deterministic jittered home cell of `n` particles (fig16 density is
/// 64/cell) concatenated at the home RCID.
fn home(n: usize) -> (Vec<Element>, Vec<FixVec3>) {
    let mut state = 0x5DA_F00Du64;
    let mut rnd = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let elems = (0..n)
        .map(|i| Element::ALL[i % Element::ALL.len()])
        .collect();
    let concat = (0..n)
        .map(|_| ForceDatapath::concat((2, 2, 2), FixVec3::from_f64(rnd(), rnd(), rnd())))
        .collect();
    (elems, concat)
}

const MIN: Duration = Duration::from_millis(300);

fn main() {
    println!("fasda datapathbench (hand-rolled harness, ns/iter)");
    let dp = ForceDatapath::new(&PairTable::new(UnitSystem::PAPER), TableConfig::PAPER);
    let (elems, concat) = home(64);
    let mut soa = HomeSoa::new();
    soa.rebuild(&elems, &concat);
    // An adjacent-cell neighbour: a realistic mix of hits and misses.
    let nbr = ForceDatapath::concat((3, 2, 2), FixVec3::from_f64(0.12, 0.43, 0.77));
    let nbr_elem = Element::Na;

    // Scalar reference: one virtual filter() per slot, force() per hit —
    // the work one station performs over a 64-particle scan.
    bench("datapath", "scan64_scalar", MIN, || {
        let mut acc = [0.0f32; 3];
        for i in 0..concat.len() {
            if let Some(pair) = dp.filter(concat[i], nbr) {
                let f = dp.force(elems[i], nbr_elem, pair);
                for k in 0..3 {
                    acc[k] += f[k];
                }
            }
        }
        acc
    });

    // SoA batch kernels: the same scan through filter_scan_into +
    // force_batch (what Pe::dispatch_planned runs at dispatch time).
    let mut hits: Vec<(u16, FilteredPair)> = Vec::with_capacity(64);
    let mut forces: Vec<[f32; 3]> = Vec::with_capacity(64);
    bench("datapath", "scan64_soa_batch", MIN, || {
        hits.clear();
        forces.clear();
        dp.filter_scan_into(&soa, nbr, 0, &mut hits);
        dp.force_batch(&soa.elem, nbr_elem, &hits, &mut forces);
        let mut acc = [0.0f32; 3];
        for f in &forces {
            for k in 0..3 {
                acc[k] += f[k];
            }
        }
        acc
    });

    // Filter-only variants isolate the scan loop from the force table.
    bench("datapath", "filter64_scalar", MIN, || {
        let mut n = 0u32;
        for &c in &concat {
            n += u32::from(dp.filter(c, nbr).is_some());
        }
        n
    });
    bench("datapath", "filter64_soa", MIN, || {
        hits.clear();
        dp.filter_scan_into(&soa, nbr, 0, &mut hits);
        hits.len()
    });

    // Phase-start transposition cost (amortized over the whole phase).
    let mut rebuilt = HomeSoa::new();
    bench("datapath", "soa_rebuild64", MIN, || {
        rebuilt.rebuild(&elems, &concat);
        rebuilt.len()
    });
}
