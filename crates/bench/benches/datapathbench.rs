//! Datapath kernel micro-benchmarks: the scalar per-comparison
//! `filter()`/`force()` walk vs the SoA batch kernels
//! (`ForceDatapath::filter_scan_into` + `force_batch`) and the fused
//! filter→force kernel (`ForceDatapath::fused_scan_into`) that the
//! timed model's stations dispatch through by default.
//!
//! Same hand-rolled harness as `microbench` (no external bench
//! framework). Run with `cargo bench --bench datapathbench`.
//!
//! Modes (flags pass through the `harness = false` entry point):
//!
//! * default — ns/iter for every kernel plus a per-kernel throughput
//!   report (pairs/sec filtered, forces/sec evaluated).
//! * `--smoke` — the CI perf-regression gate: a short measurement whose
//!   fused/scalar throughput *ratio* is compared against the committed
//!   `BENCH_datapath.json` baseline; exits non-zero if the fused kernel
//!   regressed more than 15%. The ratio (not absolute pairs/sec) is
//!   gated because both kernels run in the same process on the same
//!   host, which cancels machine speed.
//! * `--write-baseline` — regenerate `BENCH_datapath.json` from a full
//!   measurement (run on a quiet host, then commit the file).

use fasda_bench::kernels::{measure_kernels, reference_home, reference_neighbour, KernelThroughput};
use fasda_bench::Args;
use fasda_core::datapath::{FilteredPair, ForceDatapath, HomeSoa, ScanHit};
use fasda_arith::interp::TableConfig;
use fasda_md::element::{Element, PairTable};
use fasda_md::units::UnitSystem;
use fasda_trace::Json;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// The committed throughput baseline the `--smoke` gate compares
/// against, at the workspace root next to `BENCH_engine.json`.
const BASELINE: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_datapath.json");

/// Largest tolerated drop of the fused/scalar throughput ratio before
/// the gate fails the job.
const GATE_TOLERANCE: f64 = 0.15;

/// Time `f` and print ns/iter, criterion-style.
fn bench<R>(group: &str, name: &str, min: Duration, mut f: impl FnMut() -> R) {
    let t = Instant::now();
    let mut iters = 0u64;
    while t.elapsed() < min / 4 {
        black_box(f());
        iters += 1;
    }
    let target = iters.max(1) * 4;
    let t = Instant::now();
    for _ in 0..target {
        black_box(f());
    }
    let per = t.elapsed().as_nanos() as f64 / target as f64;
    println!("{group}/{name:<28} {per:>14.1} ns/iter ({target} iters)");
}

fn throughput_report(k: &KernelThroughput) {
    println!(
        "\nthroughput over the {}-particle home cell ({} hits/scan):",
        k.home_len, k.hits_per_scan
    );
    println!(
        "  scalar  {:>12.1} Mpairs/s filtered {:>12.1} Mforces/s evaluated",
        k.scalar_pairs_per_sec / 1e6,
        k.scalar_forces_per_sec / 1e6
    );
    println!(
        "  fused   {:>12.1} Mpairs/s filtered {:>12.1} Mforces/s evaluated",
        k.fused_pairs_per_sec / 1e6,
        k.fused_forces_per_sec / 1e6
    );
    println!("  fused/scalar ratio: {:.3}x", k.fused_vs_scalar());
}

fn baseline_json(k: &KernelThroughput) -> String {
    Json::obj()
        .field("home_len", k.home_len as i64)
        .field("hits_per_scan", k.hits_per_scan as i64)
        .field("scalar_pairs_per_sec", Json::fixed(k.scalar_pairs_per_sec, 0))
        .field("fused_pairs_per_sec", Json::fixed(k.fused_pairs_per_sec, 0))
        .field("scalar_forces_per_sec", Json::fixed(k.scalar_forces_per_sec, 0))
        .field("fused_forces_per_sec", Json::fixed(k.fused_forces_per_sec, 0))
        .field("fused_vs_scalar", Json::fixed(k.fused_vs_scalar(), 3))
        .field(
            "gate",
            "datapathbench --smoke fails if the fused/scalar ratio drops >15% below this",
        )
        .build()
        .pretty()
}

/// The `--smoke` perf-regression gate. Exits the process non-zero on a
/// regression so CI fails the job.
fn smoke_gate() {
    let k = measure_kernels(Duration::from_millis(60));
    throughput_report(&k);
    let text = std::fs::read_to_string(BASELINE)
        .unwrap_or_else(|e| panic!("missing baseline {BASELINE}: {e} (run --write-baseline)"));
    let doc = Json::parse(&text).expect("baseline parses");
    let want = doc
        .get("fused_vs_scalar")
        .and_then(Json::as_f64)
        .expect("baseline has fused_vs_scalar");
    let got = k.fused_vs_scalar();
    let floor = want * (1.0 - GATE_TOLERANCE);
    println!("gate: fused/scalar {got:.3}x vs baseline {want:.3}x (floor {floor:.3}x)");
    if got < floor {
        eprintln!(
            "FAIL: fused kernel throughput regressed more than {:.0}% vs the committed baseline",
            GATE_TOLERANCE * 100.0
        );
        std::process::exit(1);
    }
    println!("gate: ok");
}

const MIN: Duration = Duration::from_millis(300);

fn main() {
    let args = Args::parse();
    if args.flag("smoke") {
        smoke_gate();
        return;
    }
    if args.flag("write-baseline") {
        let k = measure_kernels(MIN);
        throughput_report(&k);
        std::fs::write(BASELINE, baseline_json(&k)).expect("write baseline");
        println!("wrote {BASELINE}");
        return;
    }

    println!("fasda datapathbench (hand-rolled harness, ns/iter)");
    let dp = ForceDatapath::new(&PairTable::new(UnitSystem::PAPER), TableConfig::PAPER);
    let (elems, concat) = reference_home(64);
    let mut soa = HomeSoa::new();
    soa.rebuild(&elems, &concat);
    // An adjacent-cell neighbour: a realistic mix of hits and misses.
    let nbr = reference_neighbour();
    let nbr_elem = Element::Na;

    // Scalar reference: one virtual filter() per slot, force() per hit —
    // the work one station performs over a 64-particle scan.
    bench("datapath", "scan64_scalar", MIN, || {
        let mut acc = [0.0f32; 3];
        for i in 0..concat.len() {
            if let Some(pair) = dp.filter(concat[i], nbr) {
                let f = dp.force(elems[i], nbr_elem, pair);
                for k in 0..3 {
                    acc[k] += f[k];
                }
            }
        }
        acc
    });

    // Two-pass SoA batch kernels: filter_scan_into + force_batch (the
    // previous batch-path generation, kept as a comparison point).
    let mut hits: Vec<(u16, FilteredPair)> = Vec::with_capacity(64);
    let mut forces: Vec<[f32; 3]> = Vec::with_capacity(64);
    bench("datapath", "scan64_soa_batch", MIN, || {
        hits.clear();
        forces.clear();
        dp.filter_scan_into(&soa, nbr, 0, &mut hits);
        dp.force_batch(&soa.elem, nbr_elem, &hits, &mut forces);
        let mut acc = [0.0f32; 3];
        for f in &forces {
            for k in 0..3 {
                acc[k] += f[k];
            }
        }
        acc
    });

    // Fused filter→force kernel: what Pe::dispatch_planned runs at
    // dispatch time by default — survivors go straight from the pass
    // mask into interpolation, no FilteredPair vector in between.
    let mut planned: Vec<ScanHit> = Vec::with_capacity(64);
    bench("datapath", "scan64_fused", MIN, || {
        planned.clear();
        dp.fused_scan_into(&soa, nbr, nbr_elem, 0, &mut planned);
        let mut acc = [0.0f32; 3];
        for h in &planned {
            for (a, f) in acc.iter_mut().zip(h.force) {
                *a += f;
            }
        }
        acc
    });

    // Filter-only variants isolate the scan loop from the force table.
    bench("datapath", "filter64_scalar", MIN, || {
        let mut n = 0u32;
        for &c in &concat {
            n += u32::from(dp.filter(c, nbr).is_some());
        }
        n
    });
    bench("datapath", "filter64_soa", MIN, || {
        hits.clear();
        dp.filter_scan_into(&soa, nbr, 0, &mut hits);
        hits.len()
    });

    // Phase-start transposition cost (amortized over the whole phase).
    let mut rebuilt = HomeSoa::new();
    bench("datapath", "soa_rebuild64", MIN, || {
        rebuilt.rebuild(&elems, &concat);
        rebuilt.len()
    });

    throughput_report(&measure_kernels(MIN));
}
