//! Micro-benchmarks for the hot components: datapath arithmetic,
//! reference engines, packet framing, and whole-chip / cluster
//! timesteps.
//!
//! Self-contained harness (no external bench framework): each case is
//! warmed up, then timed over enough iterations to exceed a minimum
//! measurement window, reporting ns/iter. Run with `cargo bench`.

use fasda_arith::fixed::FixVec3;
use fasda_arith::interp::{InterpTable, TableConfig};
use fasda_baseline::ThreadedCpuEngine;
use fasda_cluster::{Cluster, ClusterConfig};
use fasda_core::config::ChipConfig;
use fasda_core::datapath::ForceDatapath;
use fasda_core::functional::FunctionalChip;
use fasda_core::geometry::ChipGeometry;
use fasda_core::timed::TimedChip;
use fasda_md::element::{Element, PairTable};
use fasda_md::engine::{CellListEngine, DirectEngine, ForceEngine};
use fasda_md::integrator::Integrator;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::units::UnitSystem;
use fasda_md::workload::{Placement, WorkloadSpec};
use fasda_net::encap::Packetizer;
use fasda_net::packet::PacketKind;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Time `f` (which runs one iteration on a fresh input from `setup`)
/// and print ns/iter, criterion-style.
fn bench_with_setup<I, R>(group: &str, name: &str, min: Duration, mut setup: impl FnMut() -> I, mut f: impl FnMut(I) -> R) {
    // warmup + calibration
    let t = Instant::now();
    let mut iters = 0u64;
    while t.elapsed() < min / 4 {
        black_box(f(setup()));
        iters += 1;
    }
    let target = iters.max(1) * 4;
    let inputs: Vec<I> = (0..target).map(|_| setup()).collect();
    let t = Instant::now();
    for input in inputs {
        black_box(f(input));
    }
    let per = t.elapsed().as_nanos() as f64 / target as f64;
    println!("{group}/{name:<28} {per:>14.1} ns/iter ({target} iters)");
}

fn bench(group: &str, name: &str, min: Duration, mut f: impl FnMut()) {
    bench_with_setup(group, name, min, || (), |()| f());
}

fn workload(d: u32, per_cell: u32) -> ParticleSystem {
    WorkloadSpec {
        space: SimulationSpace::cubic(d),
        per_cell,
        placement: Placement::JitteredLattice { jitter: 0.05 },
        temperature_k: 150.0,
        seed: 0xFA5DA,
        element: Element::Na,
    }
    .generate()
}

const FAST: Duration = Duration::from_millis(200);
const SLOW: Duration = Duration::from_millis(400);

fn bench_datapath() {
    let dp = ForceDatapath::new(&PairTable::new(UnitSystem::PAPER), TableConfig::PAPER);
    let home = ForceDatapath::concat((2, 2, 2), FixVec3::from_f64(0.21, 0.47, 0.63));
    let nbr = ForceDatapath::concat((1, 2, 3), FixVec3::from_f64(0.85, 0.52, 0.11));
    let pair = dp.filter(home, nbr).expect("in range");

    bench("datapath", "filter", FAST, || {
        black_box(dp.filter(black_box(home), black_box(nbr)));
    });
    bench("datapath", "force", FAST, || {
        black_box(dp.force(Element::Na, Element::Na, black_box(pair)));
    });
    let table = InterpTable::build_r_pow(TableConfig::PAPER, 14);
    bench("datapath", "interp_lookup", FAST, || {
        let _ = black_box(table.eval(black_box(0.517f32)));
    });
}

fn bench_engines() {
    let sys = workload(3, 16);
    let table = PairTable::new(UnitSystem::PAPER);
    let mut direct = DirectEngine::new(table.clone());
    bench_with_setup("reference-engines", "direct_o_n2", SLOW, || sys.clone(), |mut s| {
        direct.compute_forces(&mut s)
    });
    let mut cell = CellListEngine::new(table.clone());
    bench_with_setup("reference-engines", "celllist_halfshell", SLOW, || sys.clone(), |mut s| {
        cell.compute_forces(&mut s)
    });
    let cpu = ThreadedCpuEngine::new(table, 1);
    bench_with_setup("reference-engines", "threaded_cpu_1t", SLOW, || sys.clone(), |mut s| {
        cpu.compute_forces(&mut s)
    });
}

fn bench_packets() {
    bench_with_setup(
        "network",
        "packetizer_offer_tick",
        FAST,
        || Packetizer::<u8, u64>::new(PacketKind::Position, vec![0, 1, 2], 2),
        |mut pz| {
            for i in 0..64u64 {
                pz.offer(&((i % 3) as u8), i, 0);
            }
            let mut out = 0;
            for cyc in 0..128 {
                if pz.tick(cyc).is_some() {
                    out += 1;
                }
            }
            out
        },
    );
}

fn bench_chip() {
    let sys = workload(3, 16);
    bench_with_setup(
        "chip",
        "functional_step_3cube_16",
        SLOW,
        || FunctionalChip::load(&sys, TableConfig::PAPER, 2.0),
        |mut chip| {
            chip.step();
            chip.num_particles()
        },
    );
    bench_with_setup(
        "chip",
        "timed_step_3cube_16",
        SLOW,
        || {
            let mut chip = TimedChip::new(
                ChipConfig::baseline(),
                ChipGeometry::single_chip(sys.space),
                UnitSystem::PAPER,
                2.0,
            );
            chip.load(&sys);
            chip
        },
        |mut chip| chip.run_timestep().total_cycles(),
    );
}

fn bench_cluster() {
    let sys = workload(6, 4);
    bench_with_setup(
        "cluster",
        "8_chips_one_step",
        SLOW,
        || Cluster::new(ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3)), &sys),
        |mut cl| cl.run(1).total_cycles,
    );
}

fn bench_longrange() {
    use fasda_md::ewald::EwaldParams;
    use fasda_md::ewald_recip::{EwaldRecip, RecipParams};
    use fasda_md::fft::{fft_1d, Complex, Grid3};
    use fasda_md::pme::Pme;

    let sig: Vec<Complex> = (0..1024)
        .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
        .collect();
    bench_with_setup("long-range", "fft_1d_1024", SLOW, || sig.clone(), |mut d| {
        fft_1d(&mut d, false);
        d[0]
    });
    bench_with_setup(
        "long-range",
        "fft_3d_32cube",
        SLOW,
        || {
            let mut grid = Grid3::new(32, 32, 32);
            for (i, v) in grid.data.iter_mut().enumerate() {
                v.re = (i as f64).sin();
            }
            grid
        },
        |mut grid| {
            grid.fft(false);
            grid.at(0, 0, 0)
        },
    );

    // charged salt for the solvers
    let mut salt = workload(3, 8);
    for i in 0..salt.len() {
        salt.element[i] = if i % 2 == 0 {
            Element::NaPlus
        } else {
            Element::ClMinus
        };
    }
    let real = EwaldParams::standard(UnitSystem::PAPER);
    let recip = EwaldRecip::new(RecipParams::matching(real, 3.0), &salt);
    bench("long-range", "ewald_recip_exact", SLOW, || {
        black_box(recip.energy(&salt));
    });
    let mut pme = Pme::new(real, &salt, (16, 16, 16));
    bench("long-range", "pme_energy_16cube", SLOW, || {
        black_box(pme.energy(&salt));
    });
}

fn bench_integrator() {
    let sys = workload(3, 64);
    bench_with_setup("integrator", "leapfrog_step", FAST, || sys.clone(), |mut s| {
        Integrator::PAPER.leapfrog_step(&mut s);
        s.pos[0]
    });
}

fn main() {
    println!("fasda microbench (hand-rolled harness, ns/iter)");
    bench_datapath();
    bench_engines();
    bench_packets();
    bench_chip();
    bench_cluster();
    bench_longrange();
    bench_integrator();
}
