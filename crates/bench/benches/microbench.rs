//! Criterion micro-benchmarks for the hot components: datapath
//! arithmetic, reference engines, packet framing, and whole-chip /
//! cluster timesteps.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use fasda_arith::fixed::FixVec3;
use fasda_arith::interp::{InterpTable, TableConfig};
use fasda_baseline::ThreadedCpuEngine;
use fasda_cluster::{Cluster, ClusterConfig};
use fasda_core::config::ChipConfig;
use fasda_core::datapath::ForceDatapath;
use fasda_core::functional::FunctionalChip;
use fasda_core::geometry::ChipGeometry;
use fasda_core::timed::TimedChip;
use fasda_md::element::{Element, PairTable};
use fasda_md::engine::{CellListEngine, DirectEngine, ForceEngine};
use fasda_md::integrator::Integrator;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::units::UnitSystem;
use fasda_md::workload::{Placement, WorkloadSpec};
use fasda_net::encap::Packetizer;
use fasda_net::packet::PacketKind;

fn workload(d: u32, per_cell: u32) -> ParticleSystem {
    WorkloadSpec {
        space: SimulationSpace::cubic(d),
        per_cell,
        placement: Placement::JitteredLattice { jitter: 0.05 },
        temperature_k: 150.0,
        seed: 0xFA5DA,
        element: Element::Na,
    }
    .generate()
}

fn bench_datapath(c: &mut Criterion) {
    let dp = ForceDatapath::new(&PairTable::new(UnitSystem::PAPER), TableConfig::PAPER);
    let home = ForceDatapath::concat((2, 2, 2), FixVec3::from_f64(0.21, 0.47, 0.63));
    let nbr = ForceDatapath::concat((1, 2, 3), FixVec3::from_f64(0.85, 0.52, 0.11));
    let pair = dp.filter(home, nbr).expect("in range");

    let mut g = c.benchmark_group("datapath");
    g.throughput(Throughput::Elements(1));
    g.bench_function("filter", |b| {
        b.iter(|| std::hint::black_box(dp.filter(home, nbr)))
    });
    g.bench_function("force", |b| {
        b.iter(|| std::hint::black_box(dp.force(Element::Na, Element::Na, pair)))
    });
    let table = InterpTable::build_r_pow(TableConfig::PAPER, 14);
    g.bench_function("interp_lookup", |b| {
        b.iter(|| std::hint::black_box(table.eval(0.517f32)))
    });
    g.finish();
}

fn bench_engines(c: &mut Criterion) {
    let sys = workload(3, 16);
    let table = PairTable::new(UnitSystem::PAPER);
    let mut g = c.benchmark_group("reference-engines");
    g.sample_size(10);
    g.throughput(Throughput::Elements(sys.len() as u64));
    g.bench_function("direct_o_n2", |b| {
        let mut eng = DirectEngine::new(table.clone());
        b.iter_batched(
            || sys.clone(),
            |mut s| eng.compute_forces(&mut s),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("celllist_halfshell", |b| {
        let mut eng = CellListEngine::new(table.clone());
        b.iter_batched(
            || sys.clone(),
            |mut s| eng.compute_forces(&mut s),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("threaded_cpu_1t", |b| {
        let eng = ThreadedCpuEngine::new(table.clone(), 1);
        b.iter_batched(
            || sys.clone(),
            |mut s| eng.compute_forces(&mut s),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_packets(c: &mut Criterion) {
    let mut g = c.benchmark_group("network");
    g.bench_function("packetizer_offer_tick", |b| {
        b.iter_batched(
            || Packetizer::<u8, u64>::new(PacketKind::Position, vec![0, 1, 2], 2),
            |mut pz| {
                for i in 0..64u64 {
                    pz.offer(&((i % 3) as u8), i, 0);
                }
                let mut out = 0;
                for cyc in 0..128 {
                    if pz.tick(cyc).is_some() {
                        out += 1;
                    }
                }
                out
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_chip(c: &mut Criterion) {
    let mut g = c.benchmark_group("chip");
    g.sample_size(10);

    let sys = workload(3, 16);
    g.bench_function("functional_step_3cube_16", |b| {
        b.iter_batched(
            || FunctionalChip::load(&sys, TableConfig::PAPER, 2.0),
            |mut chip| {
                chip.step();
                chip.num_particles()
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("timed_step_3cube_16", |b| {
        b.iter_batched(
            || {
                let mut chip = TimedChip::new(
                    ChipConfig::baseline(),
                    ChipGeometry::single_chip(sys.space),
                    UnitSystem::PAPER,
                    2.0,
                );
                chip.load(&sys);
                chip
            },
            |mut chip| chip.run_timestep().total_cycles(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster");
    g.sample_size(10);
    let sys = workload(6, 4);
    g.bench_function("8_chips_one_step", |b| {
        b.iter_batched(
            || Cluster::new(ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3)), &sys),
            |mut cl| cl.run(1).total_cycles,
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_longrange(c: &mut Criterion) {
    use fasda_md::ewald::EwaldParams;
    use fasda_md::ewald_recip::{EwaldRecip, RecipParams};
    use fasda_md::fft::{fft_1d, Complex, Grid3};
    use fasda_md::pme::Pme;

    let mut g = c.benchmark_group("long-range");
    g.sample_size(10);

    g.bench_function("fft_1d_1024", |b| {
        let sig: Vec<Complex> = (0..1024)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        b.iter_batched(
            || sig.clone(),
            |mut d| {
                fft_1d(&mut d, false);
                d[0]
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("fft_3d_32cube", |b| {
        b.iter_batched(
            || {
                let mut grid = Grid3::new(32, 32, 32);
                for (i, v) in grid.data.iter_mut().enumerate() {
                    v.re = (i as f64).sin();
                }
                grid
            },
            |mut grid| {
                grid.fft(false);
                grid.at(0, 0, 0)
            },
            BatchSize::SmallInput,
        )
    });

    // charged salt for the solvers
    let mut salt = workload(3, 8);
    for i in 0..salt.len() {
        salt.element[i] = if i % 2 == 0 {
            Element::NaPlus
        } else {
            Element::ClMinus
        };
    }
    let real = EwaldParams::standard(UnitSystem::PAPER);
    g.bench_function("ewald_recip_exact", |b| {
        let recip = EwaldRecip::new(RecipParams::matching(real, 3.0), &salt);
        b.iter(|| recip.energy(&salt))
    });
    g.bench_function("pme_energy_16cube", |b| {
        let mut pme = Pme::new(real, &salt, (16, 16, 16));
        b.iter(|| pme.energy(&salt))
    });
    g.finish();
}

fn bench_integrator(c: &mut Criterion) {
    let mut g = c.benchmark_group("integrator");
    let sys = workload(3, 64);
    g.throughput(Throughput::Elements(sys.len() as u64));
    g.bench_function("leapfrog_step", |b| {
        b.iter_batched(
            || sys.clone(),
            |mut s| {
                Integrator::PAPER.leapfrog_step(&mut s);
                s.pos[0]
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_datapath,
    bench_engines,
    bench_packets,
    bench_chip,
    bench_cluster,
    bench_longrange,
    bench_integrator
);
criterion_main!(benches);
