//! Engine benchmark — cost of simulating fig16-style 8-FPGA workloads
//! under the cycle engines:
//!
//! * `serial` — the reference loop, every optimization off (the oracle).
//! * `engine` — the parallel + idle fast-forward + gated fast-path
//!   engine, burst stepping and SoA kernels **off** (the previous
//!   engine generation's feature set).
//! * `engine+burst` — burst stepping on, the fused SoA scan forced
//!   **off** (`with_soa(false)`): the default engine's scalar fallback,
//!   kept measured so `soa_vs_default` stays an apples-to-apples ratio.
//! * `engine+burst+soa` — the default `EngineConfig::parallel()`:
//!   burst stepping plus the fused SoA filter→force scan, both on by
//!   default.
//!
//! Two scenarios, both on the fig16 particle workload (6x6x6 cells,
//! 64 Na/cell, 8 nodes of 3x3x3 cells):
//!
//! * `dense` — every node computes flat out. Almost no cycle is globally
//!   quiescent, so neither fast-forward nor burst windows fire; this
//!   scenario measures the raw per-cycle datapath cost.
//! * `straggler` — node 0 stalls for `--stall` cycles at the start of
//!   each force phase (OS jitter / checkpoint pause on one host). Once
//!   the other seven nodes drain, the whole cluster is quiescent and the
//!   engine fast-forwards straight to the stall expiry. This scenario
//!   exercises the idle-dominated path where burst windows can open.
//!
//! Every run is asserted bit-identical to the serial oracle
//! (`ClusterRunReport ==`); the engines only change how fast host
//! time passes. Both wall-clock and user-CPU seconds are recorded: the
//! reference host is a 1-core VM whose wall clock absorbs hypervisor
//! steal, so CPU seconds are the stabler basis for ratios. Results are
//! written to `BENCH_engine.json` in the current directory.
//!
//! Usage: `enginebench [--steps N] [--reps N] [--threads N] [--stall N]
//!                     [--shards N] [--out FILE] [--smoke]`
//!
//! `--smoke` runs a single rep of one step on a tiny workload — a CI
//! gate for the bit-identity asserts, not a measurement. Full runs also
//! sweep `--threads` over {1, 2, 4, 8} on the dense scenario and record
//! the per-kernel datapath throughput (`datapath_kernels`).
//!
//! Every run also sweeps the sharded engine over {1, 2, 4} worker
//! shards (or just `--shards N` when given) on the dense scenario:
//! per-shard compute with real socket frame exchange, asserted
//! bit-identical to the serial oracle. Wall clock is the speedup signal
//! on multi-core hosts; CPU seconds are recorded alongside so a 1-core
//! host can still gate on identity and protocol overhead (sharding
//! cannot beat one process on one core). A final `auto_engine` section
//! documents the CLI's `EngineConfig::auto` default against the old
//! unconditional `parallel()` it replaced.

use fasda_bench::{rule, Args};
use fasda_cluster::{
    measured_from, model_input, run_sharded, Cluster, ClusterConfig, ClusterRunReport,
    EngineConfig, ObsLive, ObsSinkConfig, ShardOpts, TraceConfig, TraceLevel,
};
use fasda_obs::model::{modelcheck_json, predict, Divergence, Gate};
use fasda_trace::Json;
use fasda_core::config::ChipConfig;
use fasda_md::element::Element;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::workload::{Placement, WorkloadSpec};
use std::time::Instant;

struct Scenario {
    name: &'static str,
    cfg: ClusterConfig,
}

/// User CPU seconds consumed by this process so far (`/proc/self/stat`
/// field 14). Unlike wall clock, this is not inflated when the
/// hypervisor steals the core mid-run. Falls back to NaN off-Linux.
fn cpu_seconds() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return f64::NAN;
    };
    // utime is the 14th field overall; skip past the parenthesised comm,
    // which may itself contain spaces.
    stat.split(')')
        .nth(1)
        .and_then(|rest| rest.split_whitespace().nth(11))
        .and_then(|f| f.parse::<f64>().ok())
        .map_or(f64::NAN, |ticks| ticks / 100.0)
}

/// Wall + CPU seconds of one engine's best rep.
#[derive(Clone, Copy)]
struct Timing {
    wall: f64,
    cpu: f64,
}

impl Timing {
    const WORST: Timing = Timing {
        wall: f64::INFINITY,
        cpu: f64::INFINITY,
    };

    fn fold_best(&mut self, other: Timing) {
        self.wall = self.wall.min(other.wall);
        self.cpu = self.cpu.min(other.cpu);
    }

    /// CPU-seconds ratio when both sides have one, wall otherwise.
    fn ratio_over(&self, num: Timing) -> f64 {
        if self.cpu.is_finite() && num.cpu.is_finite() {
            num.cpu / self.cpu
        } else {
            num.wall / self.wall
        }
    }
}

struct Outcome {
    name: &'static str,
    serial: Timing,
    engine: Timing,
    nosoa: Timing,
    full: Timing,
    cycles: u64,
    skipped: u64,
    burst_cycles: u64,
    burst_count: u64,
    burst_refused: u64,
    burst_refused_interface: u64,
    burst_refused_idle: u64,
    burst_refused_small: u64,
}

impl Outcome {
    /// Default engine (burst + fused SoA scan) vs serial oracle.
    fn speedup(&self) -> f64 {
        self.full.ratio_over(self.serial)
    }

    /// Previous-generation engine mode (no burst, no SoA) vs serial.
    fn speedup_engine(&self) -> f64 {
        self.engine.ratio_over(self.serial)
    }

    /// What burst stepping adds on top of the previous engine mode
    /// (SoA off on both sides).
    fn burst_gain(&self) -> f64 {
        self.nosoa.ratio_over(self.engine)
    }

    /// The default fused SoA hot path relative to its scalar fallback
    /// (< 1 would mean dispatch-time planning costs more than it saves
    /// on this host).
    fn soa_gain(&self) -> f64 {
        self.full.ratio_over(self.nosoa)
    }
}

/// The three optimized engine configurations a scenario is measured
/// under (the serial oracle is implicit).
struct Engines {
    /// Previous generation's feature set: no burst, no SoA.
    engine: EngineConfig,
    /// Burst on, fused SoA scan forced off — the default's scalar
    /// fallback.
    nosoa: EngineConfig,
    /// The `EngineConfig::parallel()` default: burst + fused SoA scan.
    full: EngineConfig,
}

struct RunStats {
    skipped: u64,
    burst_cycles: u64,
    burst_count: u64,
    burst_refused: u64,
    burst_refused_interface: u64,
    burst_refused_idle: u64,
    burst_refused_small: u64,
}

/// One fresh run under `engine`: timing, engine statistics, report.
fn run_once(
    sys: &ParticleSystem,
    cfg: ClusterConfig,
    steps: u64,
    engine: &EngineConfig,
) -> (Timing, RunStats, ClusterRunReport) {
    let mut cluster = Cluster::new(cfg, sys);
    let t0 = Instant::now();
    let c0 = cpu_seconds();
    let r = cluster.run_with(steps, engine);
    let timing = Timing {
        wall: t0.elapsed().as_secs_f64(),
        cpu: cpu_seconds() - c0,
    };
    let stats = RunStats {
        skipped: cluster.skipped_cycles,
        burst_cycles: cluster.burst_cycles,
        burst_count: cluster.burst_count,
        burst_refused: cluster.burst_refused,
        burst_refused_interface: cluster.burst_refused_interface,
        burst_refused_idle: cluster.burst_refused_idle,
        burst_refused_small: cluster.burst_refused_small,
    };
    (timing, stats, r)
}

/// Best-of-`reps` for all four engines, reps interleaved (serial,
/// engine, nosoa, full, serial, ...) so slow host-load windows hit
/// every side alike. Asserts each optimized report equal to the serial
/// oracle's, and returns that oracle report so the threads sweep can
/// reuse it.
fn measure(
    sys: &ParticleSystem,
    cfg: ClusterConfig,
    steps: u64,
    reps: u32,
    name: &'static str,
    engines: &Engines,
) -> (Outcome, ClusterRunReport) {
    let mut o = Outcome {
        name,
        serial: Timing::WORST,
        engine: Timing::WORST,
        nosoa: Timing::WORST,
        full: Timing::WORST,
        cycles: 0,
        skipped: 0,
        burst_cycles: 0,
        burst_count: 0,
        burst_refused: 0,
        burst_refused_interface: 0,
        burst_refused_idle: 0,
        burst_refused_small: 0,
    };
    let mut oracle = None;
    for _ in 0..reps {
        let (ts, _, rs) = run_once(sys, cfg.clone(), steps, &EngineConfig::serial());
        let (te, _, re) = run_once(sys, cfg.clone(), steps, &engines.engine);
        let (tn, _, rn) = run_once(sys, cfg.clone(), steps, &engines.nosoa);
        let (tf, sf, rf) = run_once(sys, cfg.clone(), steps, &engines.full);
        assert_eq!(re, rs, "{name}: engine must stay bit-identical");
        assert_eq!(rn, rs, "{name}: burst engine must stay bit-identical");
        assert_eq!(rf, rs, "{name}: default engine must stay bit-identical");
        o.serial.fold_best(ts);
        o.engine.fold_best(te);
        o.nosoa.fold_best(tn);
        o.full.fold_best(tf);
        o.cycles = rs.total_cycles;
        o.skipped = sf.skipped;
        o.burst_cycles = sf.burst_cycles;
        o.burst_count = sf.burst_count;
        o.burst_refused = sf.burst_refused;
        o.burst_refused_interface = sf.burst_refused_interface;
        o.burst_refused_idle = sf.burst_refused_idle;
        o.burst_refused_small = sf.burst_refused_small;
        oracle = Some(rs);
    }
    (o, oracle.expect("reps >= 1"))
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let steps: u64 = args.get("steps", if smoke { 1 } else { 3 });
    let reps: u32 = args.get("reps", if smoke { 1 } else { 2 });
    let stall: u64 = args.get("stall", if smoke { 5_000 } else { 200_000 });
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads: usize = args.get("threads", host_cores);
    let out: String = args.get("out", "BENCH_engine.json".to_string());

    println!("FASDA — cycle-engine benchmark (fig16 8-FPGA workload)");
    let per_cell = if smoke { 4 } else { 64 };
    println!(
        "6x6x6 cells, {per_cell} Na/cell, 8 nodes (3x3x3 cells each), {steps} steps, \
         best of {reps}, {host_cores}-core host{}",
        if smoke { " [smoke]" } else { "" }
    );

    let sys = if smoke {
        WorkloadSpec {
            space: SimulationSpace::cubic(6),
            per_cell,
            placement: Placement::JitteredLattice { jitter: 0.05 },
            temperature_k: 150.0,
            seed: 0xFA5DA,
            element: Element::Na,
        }
        .generate()
    } else {
        WorkloadSpec::paper(SimulationSpace::cubic(6), 0xFA5DA).generate()
    };
    let dense = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    let mut straggler = dense.clone();
    straggler.straggler = Some((0, stall));
    let scenarios = [
        Scenario { name: "dense", cfg: dense },
        Scenario { name: "straggler", cfg: straggler },
    ];

    // Previous engine generation's feature set: threads + fast-forward +
    // fast path, burst stepping and SoA scan kernels disabled; the
    // default minus the fused SoA scan (its scalar fallback); and the
    // default engine itself (burst + fused SoA scan on).
    let full = EngineConfig::parallel().with_threads(threads);
    let engines = Engines {
        engine: full.with_soa(false).with_burst(false),
        nosoa: full.with_soa(false),
        full,
    };

    let mut outcomes = Vec::new();
    let mut dense_oracle = None;
    for sc in &scenarios {
        rule(sc.name);
        let (o, oracle) = measure(&sys, sc.cfg.clone(), steps, reps, sc.name, &engines);
        if sc.name == "dense" {
            dense_oracle = Some(oracle);
        }
        println!(
            "{:<22}{:>10.3} s wall {:>8.2} s cpu",
            "serial reference", o.serial.wall, o.serial.cpu
        );
        println!(
            "{:<22}{:>10.3} s wall {:>8.2} s cpu   ({} threads, fast path + fast-forward)",
            "engine", o.engine.wall, o.engine.cpu, engines.engine.threads
        );
        println!(
            "{:<22}{:>10.3} s wall {:>8.2} s cpu   (+ burst stepping: {} bursts / {} cycles, \
             {} refused: {} interface / {} idle / {} small)",
            "engine+burst",
            o.nosoa.wall,
            o.nosoa.cpu,
            o.burst_count,
            o.burst_cycles,
            o.burst_refused,
            o.burst_refused_interface,
            o.burst_refused_idle,
            o.burst_refused_small
        );
        println!(
            "{:<22}{:>10.3} s wall {:>8.2} s cpu   (+ fused SoA scan — the default engine)",
            "engine+burst+soa", o.full.wall, o.full.cpu
        );
        println!(
            "{:<22}{:>9.2}x   vs serial ({:.2}x vs engine; {} cycles, {} fast-forwarded)",
            "speedup",
            o.speedup(),
            o.burst_gain(),
            o.cycles,
            o.skipped
        );
        outcomes.push(o);
    }

    // Headline: the default engine vs the serial oracle on the dense run
    // (no idle cycles to fast-forward — the per-cycle datapath cost
    // itself). The straggler run documents the fast-forward/burst lever.
    let dense_o = &outcomes[0];
    let headline = dense_o.speedup();
    println!("\nheadline: dense default-engine speedup vs serial: {headline:.2}x");
    println!(
        "          dense burst gain over previous engine mode: {:.2}x, fused soa vs scalar fallback: {:.2}x",
        dense_o.burst_gain(),
        dense_o.soa_gain()
    );
    println!(
        "          straggler default-engine speedup vs serial: {:.2}x",
        outcomes[1].speedup()
    );

    // Threads sweep over the dense scenario: the default engine at 1,
    // 2, 4 and 8 rayon threads, each asserted bit-identical to the
    // serial oracle. One rep per point — the curve's shape (does the
    // compute phase scale past the host's cores?) is the signal, not
    // the absolute numbers.
    let mut sweep = Vec::new();
    if !smoke {
        rule("threads sweep (dense)");
        let oracle = dense_oracle.as_ref().expect("dense scenario measured");
        let dense_serial = outcomes[0].serial;
        for t in [1usize, 2, 4, 8] {
            let engine = EngineConfig::parallel().with_threads(t);
            let (timing, _, report) =
                run_once(&sys, scenarios[0].cfg.clone(), steps, &engine);
            assert_eq!(
                &report, oracle,
                "threads={t}: default engine must stay bit-identical"
            );
            let speedup = timing.ratio_over(dense_serial);
            println!(
                "threads={t:<3}{:>10.3} s wall {:>8.2} s cpu {:>8.2}x vs serial",
                timing.wall, timing.cpu, speedup
            );
            sweep.push((t, timing, speedup));
        }
    }

    // Shards sweep over the dense scenario: the full sharded protocol —
    // per-shard local engines plus CRC-framed socket exchange every
    // global cycle — at 1, 2 and 4 worker shards, each folded run
    // asserted bit-identical to the serial oracle. The 1-shard point
    // isolates pure protocol overhead (one worker, no mesh peers).
    let mut shards_sweep = Vec::new();
    {
        rule("shards sweep (dense)");
        let only: usize = args.get("shards", 0);
        let shard_counts: Vec<usize> = if only == 0 { vec![1, 2, 4] } else { vec![only] };
        let oracle = dense_oracle.as_ref().expect("dense scenario measured");
        let one_process = outcomes[0].full;
        let engine = EngineConfig::parallel().with_threads(threads);
        for s in shard_counts {
            let t0 = Instant::now();
            let c0 = cpu_seconds();
            let run = run_sharded(&scenarios[0].cfg, &sys, steps, &engine, s, ShardOpts::default())
                .expect("sharded run completes");
            let timing = Timing {
                wall: t0.elapsed().as_secs_f64(),
                cpu: cpu_seconds() - c0,
            };
            assert_eq!(
                &run.report, oracle,
                "shards={s}: sharded run must stay bit-identical"
            );
            let wall_speedup = one_process.wall / timing.wall;
            let cpu_overhead = timing.cpu / one_process.cpu;
            println!(
                "shards={s:<3}{:>10.3} s wall {:>8.2} s cpu {:>8.2}x wall vs 1-process \
                 (cpu overhead {:.2}x)",
                timing.wall, timing.cpu, wall_speedup, cpu_overhead
            );
            shards_sweep.push((s, timing, wall_speedup, cpu_overhead));
        }
    }

    // EngineConfig::auto — the CLI's new default engine choice. Before:
    // the old unconditional `parallel()` default, whose rayon pool costs
    // coordination on a single-core host. After: `auto()`, which probes
    // the host and keeps single-core machines on the serial loop with
    // idle fast-forward.
    rule("auto engine (dense)");
    let auto_gain;
    let (auto_before, auto_after) = {
        let oracle = dense_oracle.as_ref().expect("dense scenario measured");
        let (tb, _, rb) = run_once(&sys, scenarios[0].cfg.clone(), steps, &EngineConfig::parallel());
        let (ta, _, ra) = run_once(&sys, scenarios[0].cfg.clone(), steps, &EngineConfig::auto());
        assert_eq!(&rb, oracle, "parallel default must stay bit-identical");
        assert_eq!(&ra, oracle, "auto engine must stay bit-identical");
        auto_gain = ta.ratio_over(tb);
        println!(
            "before (parallel)  {:>10.3} s wall {:>8.2} s cpu\n\
             after  (auto)      {:>10.3} s wall {:>8.2} s cpu   ({:.2}x, chose {})",
            tb.wall,
            tb.cpu,
            ta.wall,
            ta.cpu,
            auto_gain,
            if host_cores > 1 { "parallel" } else { "serial+fast-forward" }
        );
        (tb, ta)
    };

    // Live-telemetry overhead (fasda-obs): the default engine with an
    // armed in-run sampler but no sinks — the per-cycle cost is one
    // inlined `Option<Box<ObsLive>>` check plus a per-beat registry
    // refresh, and the report must stay bit-identical. Full runs gate
    // the CPU overhead at <1% of the dense run; smoke runs record it
    // (sub-tick timings) and gate identity only.
    rule("obs overhead (dense)");
    let (obs_timing, obs_overhead) = {
        let oracle = dense_oracle.as_ref().expect("dense scenario measured");
        let mut with_obs = Timing::WORST;
        for _ in 0..reps {
            let mut cluster = Cluster::new(scenarios[0].cfg.clone(), &sys);
            let live = ObsLive::new(1, &ObsSinkConfig::default()).expect("sinkless sampler");
            cluster.attach_obs(Box::new(live));
            let t0 = Instant::now();
            let c0 = cpu_seconds();
            let r = cluster.run_with(steps, &engines.full);
            with_obs.fold_best(Timing {
                wall: t0.elapsed().as_secs_f64(),
                cpu: cpu_seconds() - c0,
            });
            assert_eq!(&r, oracle, "obs sampler must not perturb the run");
        }
        let ratio = outcomes[0].full.ratio_over(with_obs);
        // Smoke runs finish inside one 10 ms CPU tick; fall back to wall.
        let overhead = if ratio.is_finite() {
            ratio - 1.0
        } else {
            with_obs.wall / outcomes[0].full.wall - 1.0
        };
        println!(
            "default engine       {:>10.3} s wall {:>8.2} s cpu\n\
             + armed obs, no sink {:>10.3} s wall {:>8.2} s cpu   ({:+.2}% overhead)",
            outcomes[0].full.wall,
            outcomes[0].full.cpu,
            with_obs.wall,
            with_obs.cpu,
            overhead * 100.0
        );
        if !smoke {
            assert!(
                overhead < 0.01,
                "obs overhead {overhead:.4} exceeds 1% of the dense run"
            );
        }
        (with_obs, overhead)
    };

    // §5 performance-model check (fasda-obs::model): predict cycles,
    // occupancy, packet counts, and the stall mix from the configuration
    // alone, measure the same quantities from one traced run, and gate
    // the divergence at the documented thresholds (`Gate::default`).
    // The traced run is separate from the timed ones so ledger cost
    // never skews the timings above.
    rule("modelcheck (dense, §5 model)");
    let modelcheck = {
        let engine = EngineConfig::serial().with_trace(TraceConfig {
            level: TraceLevel::Sync,
            ..TraceConfig::full()
        });
        let mut cluster = Cluster::new(scenarios[0].cfg.clone(), &sys);
        let report = cluster.run_with(steps, &engine);
        let trace = cluster.take_trace().expect("tracing on");
        let mean_per_cell = sys.len() as f64 / 216.0;
        let input = model_input(&scenarios[0].cfg, (6, 6, 6), mean_per_cell);
        let pred = predict(&input);
        let meas = measured_from(&report, Some(&trace.stalls));
        let gate = Gate::default();
        let div = Divergence::compare(&pred, &meas);
        let violations = div.violations(&gate, &meas);
        println!(
            "cycles/step {:>8.0} predicted {:>8.0} measured ({:+.1}%)\n\
             occupancy   {:>8.3} predicted {:>8.3} measured ({:+.3} abs)\n\
             pos pkts/st {:>8.0} predicted {:>8.0} measured ({:+.1}%)\n\
             frc pkts/st {:>8.0} predicted {:>8.0} measured ({:+.1}%)\n\
             sync tail   {:>8.0} predicted {:>8.0} measured\n\
             force cyc   {:>8.0} predicted {:>8.0} measured\n\
             worst stall-share abs error {:.3}",
            pred.cycles_per_step,
            meas.cycles_per_step,
            div.cycles_rel * 100.0,
            pred.occupancy,
            meas.occupancy,
            div.occupancy_abs,
            pred.pos_packets_per_step,
            meas.pos_packets_per_step,
            div.pos_packets_rel * 100.0,
            pred.frc_packets_per_step,
            meas.frc_packets_per_step,
            div.frc_packets_rel * 100.0,
            pred.sync_tail,
            meas.sync_tail,
            pred.force_cycles,
            meas.force_cycles,
            div.max_stall_share_abs()
        );
        let doc = modelcheck_json(&pred, &meas, &gate);
        if std::env::var_os("FASDA_MODELCHECK_DEBUG").is_some() {
            eprintln!("{input:#?}");
            eprintln!("{}", doc.pretty());
        }
        assert!(
            violations.is_empty(),
            "§5 model diverged beyond gate: {violations:?}"
        );
        println!("gate: pass");
        doc
    };

    // Per-kernel datapath throughput (shared with datapathbench): the
    // raw cost of the scalar walk vs the fused filter→force kernel the
    // default engine dispatches through.
    let kmin = std::time::Duration::from_millis(if smoke { 60 } else { 300 });
    let kernels = fasda_bench::kernels::measure_kernels(kmin);
    rule("datapath kernels");
    println!(
        "scalar {:>10.1} Mpairs/s   fused {:>10.1} Mpairs/s   ratio {:.2}x \
         ({} hits per {}-particle scan)",
        kernels.scalar_pairs_per_sec / 1e6,
        kernels.fused_pairs_per_sec / 1e6,
        kernels.fused_vs_scalar(),
        kernels.hits_per_scan,
        kernels.home_len
    );

    // JSON via the shared fasda-trace writer — the workspace
    // deliberately has no serde_json. Same keys as the hand-rolled
    // emitter this replaced.
    let mut doc = Json::obj().field("workload", "fig16-6x6x6-8fpga");
    if smoke {
        doc = doc.field("smoke", true);
    }
    let mut scenarios = Json::obj();
    for o in &outcomes {
        scenarios = scenarios.field(
            o.name,
            Json::obj()
                .field("serial_seconds", Json::fixed(o.serial.wall, 6))
                .field("engine_seconds", Json::fixed(o.full.wall, 6))
                .field("speedup", Json::fixed(o.speedup(), 3))
                .field("simulated_cycles", Json::uint(o.cycles))
                .field("skipped_cycles", Json::uint(o.skipped))
                .build(),
        );
    }
    let mut datapath = Json::obj();
    for o in &outcomes {
        datapath = datapath.field(
            o.name,
            Json::obj()
                .field("serial_cpu_seconds", Json::fixed(o.serial.cpu, 6))
                .field("engine_cpu_seconds", Json::fixed(o.engine.cpu, 6))
                .field("engine_burst_cpu_seconds", Json::fixed(o.nosoa.cpu, 6))
                .field("engine_burst_soa_cpu_seconds", Json::fixed(o.full.cpu, 6))
                .field("speedup_engine", Json::fixed(o.speedup_engine(), 3))
                .field("speedup_burst", Json::fixed(o.speedup(), 3))
                .field("burst_vs_engine", Json::fixed(o.burst_gain(), 3))
                .field("soa_vs_default", Json::fixed(o.soa_gain(), 3))
                .field("burst_cycles", Json::uint(o.burst_cycles))
                .field("burst_count", Json::uint(o.burst_count))
                .field("burst_refused", Json::uint(o.burst_refused))
                .field("burst_refused_interface", Json::uint(o.burst_refused_interface))
                .field("burst_refused_idle", Json::uint(o.burst_refused_idle))
                .field("burst_refused_small", Json::uint(o.burst_refused_small))
                .build(),
        );
    }
    let doc = doc
        .field("per_cell", per_cell as i64)
        .field("steps", Json::uint(steps))
        .field("reps", reps as i64)
        .field("host_cores", host_cores)
        .field("threads", engines.engine.threads)
        .field("straggler_stall", Json::uint(stall))
        .field("speedup", Json::fixed(headline, 3))
        .field(
            "metric",
            "user-cpu seconds (wall clock absorbs hypervisor steal on the 1-core reference host)",
        )
        .field("bit_identical", true)
        .field("scenarios", scenarios.build())
        .field("datapath", datapath.build());
    let mut doc = doc;
    if !sweep.is_empty() {
        let mut sw = Json::obj();
        for (t, timing, speedup) in &sweep {
            sw = sw.field(
                &t.to_string(),
                Json::obj()
                    .field("wall_seconds", Json::fixed(timing.wall, 6))
                    .field("cpu_seconds", Json::fixed(timing.cpu, 6))
                    .field("speedup", Json::fixed(*speedup, 3))
                    .build(),
            );
        }
        doc = doc.field("threads_sweep", sw.build());
    }
    if !shards_sweep.is_empty() {
        let mut sw = Json::obj();
        for (s, timing, wall_speedup, cpu_overhead) in &shards_sweep {
            sw = sw.field(
                &s.to_string(),
                Json::obj()
                    .field("wall_seconds", Json::fixed(timing.wall, 6))
                    .field("cpu_seconds", Json::fixed(timing.cpu, 6))
                    .field("wall_speedup_vs_one_process", Json::fixed(*wall_speedup, 3))
                    .field("cpu_overhead_vs_one_process", Json::fixed(*cpu_overhead, 3))
                    .build(),
            );
        }
        doc = doc.field("shards_sweep", sw.build());
    }
    doc = doc.field(
        "auto_engine",
        Json::obj()
            .field("before_wall_seconds", Json::fixed(auto_before.wall, 6))
            .field("before_cpu_seconds", Json::fixed(auto_before.cpu, 6))
            .field("after_wall_seconds", Json::fixed(auto_after.wall, 6))
            .field("after_cpu_seconds", Json::fixed(auto_after.cpu, 6))
            .field("auto_vs_parallel", Json::fixed(auto_gain, 3))
            .field(
                "chose",
                if host_cores > 1 { "parallel" } else { "serial+fast-forward" },
            )
            .build(),
    );
    doc = doc.field(
        "obs_overhead",
        Json::obj()
            .field("wall_seconds", Json::fixed(obs_timing.wall, 6))
            .field("cpu_seconds", Json::fixed(obs_timing.cpu, 6))
            .field("overhead_vs_default", Json::fixed(obs_overhead, 6))
            .field("gated", !smoke)
            .field("limit", 0.01)
            .build(),
    );
    doc = doc.field("modelcheck", modelcheck);
    let doc = doc
        .field(
            "datapath_kernels",
            Json::obj()
                .field("home_len", kernels.home_len as i64)
                .field("hits_per_scan", kernels.hits_per_scan as i64)
                .field("scalar_pairs_per_sec", Json::fixed(kernels.scalar_pairs_per_sec, 0))
                .field("fused_pairs_per_sec", Json::fixed(kernels.fused_pairs_per_sec, 0))
                .field("scalar_forces_per_sec", Json::fixed(kernels.scalar_forces_per_sec, 0))
                .field("fused_forces_per_sec", Json::fixed(kernels.fused_forces_per_sec, 0))
                .field("fused_vs_scalar", Json::fixed(kernels.fused_vs_scalar(), 3))
                .build(),
        )
        .build();
    std::fs::write(&out, doc.pretty()).expect("write benchmark result");
    println!("wrote {out}");
}
