//! Engine benchmark — cost of simulating fig16-style 8-FPGA workloads
//! under the cycle engines:
//!
//! * `serial` — the reference loop, every optimization off (the oracle).
//! * `engine` — the parallel + idle fast-forward + gated fast-path
//!   engine, burst stepping and SoA kernels **off** (the previous
//!   engine generation's feature set).
//! * `engine+burst` — the default `EngineConfig::parallel()`: force-phase
//!   burst stepping on top of the above.
//! * `engine+burst+soa` — the opt-in SoA batch-kernel scan as well
//!   (`with_soa(true)`), reported so the cost/benefit of dispatch-time
//!   planning stays visible in the record.
//!
//! Two scenarios, both on the fig16 particle workload (6x6x6 cells,
//! 64 Na/cell, 8 nodes of 3x3x3 cells):
//!
//! * `dense` — every node computes flat out. Almost no cycle is globally
//!   quiescent, so neither fast-forward nor burst windows fire; this
//!   scenario measures the raw per-cycle datapath cost.
//! * `straggler` — node 0 stalls for `--stall` cycles at the start of
//!   each force phase (OS jitter / checkpoint pause on one host). Once
//!   the other seven nodes drain, the whole cluster is quiescent and the
//!   engine fast-forwards straight to the stall expiry. This scenario
//!   exercises the idle-dominated path where burst windows can open.
//!
//! Every run is asserted bit-identical to the serial oracle
//! (`ClusterRunReport ==`); the engines only change how fast host
//! time passes. Both wall-clock and user-CPU seconds are recorded: the
//! reference host is a 1-core VM whose wall clock absorbs hypervisor
//! steal, so CPU seconds are the stabler basis for ratios. Results are
//! written to `BENCH_engine.json` in the current directory.
//!
//! Usage: `enginebench [--steps N] [--reps N] [--threads N] [--stall N]
//!                     [--out FILE] [--smoke]`
//!
//! `--smoke` runs a single rep of one step on a tiny workload — a CI
//! gate for the bit-identity asserts, not a measurement.

use fasda_bench::{rule, Args};
use fasda_cluster::{Cluster, ClusterConfig, ClusterRunReport, EngineConfig};
use fasda_trace::Json;
use fasda_core::config::ChipConfig;
use fasda_md::element::Element;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::workload::{Placement, WorkloadSpec};
use std::time::Instant;

struct Scenario {
    name: &'static str,
    cfg: ClusterConfig,
}

/// User CPU seconds consumed by this process so far (`/proc/self/stat`
/// field 14). Unlike wall clock, this is not inflated when the
/// hypervisor steals the core mid-run. Falls back to NaN off-Linux.
fn cpu_seconds() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return f64::NAN;
    };
    // utime is the 14th field overall; skip past the parenthesised comm,
    // which may itself contain spaces.
    stat.split(')')
        .nth(1)
        .and_then(|rest| rest.split_whitespace().nth(11))
        .and_then(|f| f.parse::<f64>().ok())
        .map_or(f64::NAN, |ticks| ticks / 100.0)
}

/// Wall + CPU seconds of one engine's best rep.
#[derive(Clone, Copy)]
struct Timing {
    wall: f64,
    cpu: f64,
}

impl Timing {
    const WORST: Timing = Timing {
        wall: f64::INFINITY,
        cpu: f64::INFINITY,
    };

    fn fold_best(&mut self, other: Timing) {
        self.wall = self.wall.min(other.wall);
        self.cpu = self.cpu.min(other.cpu);
    }

    /// CPU-seconds ratio when both sides have one, wall otherwise.
    fn ratio_over(&self, num: Timing) -> f64 {
        if self.cpu.is_finite() && num.cpu.is_finite() {
            num.cpu / self.cpu
        } else {
            num.wall / self.wall
        }
    }
}

struct Outcome {
    name: &'static str,
    serial: Timing,
    engine: Timing,
    full: Timing,
    soa: Timing,
    cycles: u64,
    skipped: u64,
    burst_cycles: u64,
    burst_count: u64,
    burst_refused: u64,
}

impl Outcome {
    /// Default engine vs serial oracle.
    fn speedup(&self) -> f64 {
        self.full.ratio_over(self.serial)
    }

    /// Previous-generation engine mode (no burst) vs serial oracle.
    fn speedup_engine(&self) -> f64 {
        self.engine.ratio_over(self.serial)
    }

    /// What burst stepping adds on top of the previous engine mode.
    fn burst_gain(&self) -> f64 {
        self.full.ratio_over(self.engine)
    }

    /// The opt-in SoA scan relative to the default engine (< 1 means the
    /// batch path costs more than it saves on this host).
    fn soa_gain(&self) -> f64 {
        self.soa.ratio_over(self.full)
    }
}

/// The three optimized engine configurations a scenario is measured
/// under (the serial oracle is implicit).
struct Engines {
    /// Previous generation's feature set: no burst, no SoA.
    engine: EngineConfig,
    /// The `EngineConfig::parallel()` default (burst on).
    full: EngineConfig,
    /// Default plus the opt-in SoA batch-kernel scan.
    soa: EngineConfig,
}

struct RunStats {
    skipped: u64,
    burst_cycles: u64,
    burst_count: u64,
    burst_refused: u64,
}

/// One fresh run under `engine`: timing, engine statistics, report.
fn run_once(
    sys: &ParticleSystem,
    cfg: ClusterConfig,
    steps: u64,
    engine: &EngineConfig,
) -> (Timing, RunStats, ClusterRunReport) {
    let mut cluster = Cluster::new(cfg, sys);
    let t0 = Instant::now();
    let c0 = cpu_seconds();
    let r = cluster.run_with(steps, engine);
    let timing = Timing {
        wall: t0.elapsed().as_secs_f64(),
        cpu: cpu_seconds() - c0,
    };
    let stats = RunStats {
        skipped: cluster.skipped_cycles,
        burst_cycles: cluster.burst_cycles,
        burst_count: cluster.burst_count,
        burst_refused: cluster.burst_refused,
    };
    (timing, stats, r)
}

/// Best-of-`reps` for all four engines, reps interleaved (serial,
/// engine, full, soa, serial, ...) so slow host-load windows hit every
/// side alike. Asserts each optimized report equal to the serial
/// oracle's.
fn measure(
    sys: &ParticleSystem,
    cfg: ClusterConfig,
    steps: u64,
    reps: u32,
    name: &'static str,
    engines: &Engines,
) -> Outcome {
    let mut o = Outcome {
        name,
        serial: Timing::WORST,
        engine: Timing::WORST,
        full: Timing::WORST,
        soa: Timing::WORST,
        cycles: 0,
        skipped: 0,
        burst_cycles: 0,
        burst_count: 0,
        burst_refused: 0,
    };
    for _ in 0..reps {
        let (ts, _, rs) = run_once(sys, cfg.clone(), steps, &EngineConfig::serial());
        let (te, _, re) = run_once(sys, cfg.clone(), steps, &engines.engine);
        let (tf, sf, rf) = run_once(sys, cfg.clone(), steps, &engines.full);
        let (ta, _, ra) = run_once(sys, cfg.clone(), steps, &engines.soa);
        assert_eq!(re, rs, "{name}: engine must stay bit-identical");
        assert_eq!(rf, rs, "{name}: burst engine must stay bit-identical");
        assert_eq!(ra, rs, "{name}: soa engine must stay bit-identical");
        o.serial.fold_best(ts);
        o.engine.fold_best(te);
        o.full.fold_best(tf);
        o.soa.fold_best(ta);
        o.cycles = rs.total_cycles;
        o.skipped = sf.skipped;
        o.burst_cycles = sf.burst_cycles;
        o.burst_count = sf.burst_count;
        o.burst_refused = sf.burst_refused;
    }
    o
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let steps: u64 = args.get("steps", if smoke { 1 } else { 3 });
    let reps: u32 = args.get("reps", if smoke { 1 } else { 2 });
    let stall: u64 = args.get("stall", if smoke { 5_000 } else { 200_000 });
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads: usize = args.get("threads", host_cores);
    let out: String = args.get("out", "BENCH_engine.json".to_string());

    println!("FASDA — cycle-engine benchmark (fig16 8-FPGA workload)");
    let per_cell = if smoke { 4 } else { 64 };
    println!(
        "6x6x6 cells, {per_cell} Na/cell, 8 nodes (3x3x3 cells each), {steps} steps, \
         best of {reps}, {host_cores}-core host{}",
        if smoke { " [smoke]" } else { "" }
    );

    let sys = if smoke {
        WorkloadSpec {
            space: SimulationSpace::cubic(6),
            per_cell,
            placement: Placement::JitteredLattice { jitter: 0.05 },
            temperature_k: 150.0,
            seed: 0xFA5DA,
            element: Element::Na,
        }
        .generate()
    } else {
        WorkloadSpec::paper(SimulationSpace::cubic(6), 0xFA5DA).generate()
    };
    let dense = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    let mut straggler = dense.clone();
    straggler.straggler = Some((0, stall));
    let scenarios = [
        Scenario { name: "dense", cfg: dense },
        Scenario { name: "straggler", cfg: straggler },
    ];

    // Previous engine generation's feature set: threads + fast-forward +
    // fast path, burst stepping and SoA scan kernels disabled; the
    // default engine (burst on); and the default plus the opt-in SoA
    // batch-kernel scan.
    let full = EngineConfig::parallel().with_threads(threads);
    let engines = Engines {
        engine: full.with_soa(false).with_burst(false),
        full,
        soa: full.with_soa(true),
    };

    let mut outcomes = Vec::new();
    for sc in &scenarios {
        rule(sc.name);
        let o = measure(&sys, sc.cfg.clone(), steps, reps, sc.name, &engines);
        println!(
            "{:<22}{:>10.3} s wall {:>8.2} s cpu",
            "serial reference", o.serial.wall, o.serial.cpu
        );
        println!(
            "{:<22}{:>10.3} s wall {:>8.2} s cpu   ({} threads, fast path + fast-forward)",
            "engine", o.engine.wall, o.engine.cpu, engines.engine.threads
        );
        println!(
            "{:<22}{:>10.3} s wall {:>8.2} s cpu   (+ burst stepping: {} bursts / {} cycles, {} refused)",
            "engine+burst", o.full.wall, o.full.cpu, o.burst_count, o.burst_cycles, o.burst_refused
        );
        println!(
            "{:<22}{:>10.3} s wall {:>8.2} s cpu   (+ opt-in SoA scan kernels)",
            "engine+burst+soa", o.soa.wall, o.soa.cpu
        );
        println!(
            "{:<22}{:>9.2}x   vs serial ({:.2}x vs engine; {} cycles, {} fast-forwarded)",
            "speedup",
            o.speedup(),
            o.burst_gain(),
            o.cycles,
            o.skipped
        );
        outcomes.push(o);
    }

    // Headline: the default engine vs the serial oracle on the dense run
    // (no idle cycles to fast-forward — the per-cycle datapath cost
    // itself). The straggler run documents the fast-forward/burst lever.
    let dense_o = &outcomes[0];
    let headline = dense_o.speedup();
    println!("\nheadline: dense default-engine speedup vs serial: {headline:.2}x");
    println!(
        "          dense burst gain over previous engine mode: {:.2}x, opt-in soa: {:.2}x",
        dense_o.burst_gain(),
        dense_o.soa_gain()
    );
    println!(
        "          straggler default-engine speedup vs serial: {:.2}x",
        outcomes[1].speedup()
    );

    // JSON via the shared fasda-trace writer — the workspace
    // deliberately has no serde_json. Same keys as the hand-rolled
    // emitter this replaced.
    let mut doc = Json::obj().field("workload", "fig16-6x6x6-8fpga");
    if smoke {
        doc = doc.field("smoke", true);
    }
    let mut scenarios = Json::obj();
    for o in &outcomes {
        scenarios = scenarios.field(
            o.name,
            Json::obj()
                .field("serial_seconds", Json::fixed(o.serial.wall, 6))
                .field("engine_seconds", Json::fixed(o.full.wall, 6))
                .field("speedup", Json::fixed(o.speedup(), 3))
                .field("simulated_cycles", Json::uint(o.cycles))
                .field("skipped_cycles", Json::uint(o.skipped))
                .build(),
        );
    }
    let mut datapath = Json::obj();
    for o in &outcomes {
        datapath = datapath.field(
            o.name,
            Json::obj()
                .field("serial_cpu_seconds", Json::fixed(o.serial.cpu, 6))
                .field("engine_cpu_seconds", Json::fixed(o.engine.cpu, 6))
                .field("engine_burst_cpu_seconds", Json::fixed(o.full.cpu, 6))
                .field("engine_burst_soa_cpu_seconds", Json::fixed(o.soa.cpu, 6))
                .field("speedup_engine", Json::fixed(o.speedup_engine(), 3))
                .field("speedup_burst", Json::fixed(o.speedup(), 3))
                .field("burst_vs_engine", Json::fixed(o.burst_gain(), 3))
                .field("soa_vs_default", Json::fixed(o.soa_gain(), 3))
                .field("burst_cycles", Json::uint(o.burst_cycles))
                .field("burst_count", Json::uint(o.burst_count))
                .field("burst_refused", Json::uint(o.burst_refused))
                .build(),
        );
    }
    let doc = doc
        .field("per_cell", per_cell as i64)
        .field("steps", Json::uint(steps))
        .field("reps", reps as i64)
        .field("host_cores", host_cores)
        .field("threads", engines.engine.threads)
        .field("straggler_stall", Json::uint(stall))
        .field("speedup", Json::fixed(headline, 3))
        .field(
            "metric",
            "user-cpu seconds (wall clock absorbs hypervisor steal on the 1-core reference host)",
        )
        .field("bit_identical", true)
        .field("scenarios", scenarios.build())
        .field("datapath", datapath.build())
        .build();
    std::fs::write(&out, doc.pretty()).expect("write benchmark result");
    println!("wrote {out}");
}
