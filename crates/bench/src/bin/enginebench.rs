//! Engine benchmark — wall-clock cost of simulating fig16-style 8-FPGA
//! workloads under the serial reference engine vs the parallel + idle
//! fast-forward cycle engine.
//!
//! Two scenarios, both on the fig16 particle workload (6x6x6 cells,
//! 64 Na/cell, 8 nodes of 3x3x3 cells):
//!
//! * `dense` — every node computes flat out. Almost no cycle is globally
//!   quiescent, so the win on a single-core host comes only from the
//!   gated fast path (precomputed match scans, idle-SPE skip). The rayon
//!   compute phase is the lever on a multi-core host.
//! * `straggler` — node 0 stalls for `--stall` cycles at the start of
//!   each force phase (OS jitter / checkpoint pause on one host). Once
//!   the other seven nodes drain, the whole cluster is quiescent and the
//!   engine fast-forwards straight to the stall expiry.
//!
//! Every run pair is asserted bit-identical (`ClusterRunReport ==`); the
//! engine only changes how fast host wall-clock time passes. Results are
//! written to `BENCH_engine.json` in the current directory.
//!
//! Usage: `enginebench [--steps N] [--reps N] [--threads N] [--stall N] [--out FILE]`

use fasda_bench::{rule, Args};
use fasda_cluster::{Cluster, ClusterConfig, ClusterRunReport, EngineConfig};
use fasda_core::config::ChipConfig;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::workload::WorkloadSpec;
use std::time::Instant;

struct Scenario {
    name: &'static str,
    cfg: ClusterConfig,
}

struct Outcome {
    name: &'static str,
    serial_s: f64,
    engine_s: f64,
    cycles: u64,
    skipped: u64,
}

impl Outcome {
    fn speedup(&self) -> f64 {
        self.serial_s / self.engine_s
    }
}

/// One fresh run under `engine`: wall-clock seconds, skipped cycles, report.
fn run_once(
    sys: &ParticleSystem,
    cfg: ClusterConfig,
    steps: u64,
    engine: &EngineConfig,
) -> (f64, u64, ClusterRunReport) {
    let mut cluster = Cluster::new(cfg, sys);
    let t0 = Instant::now();
    let r = cluster.run_with(steps, engine);
    (t0.elapsed().as_secs_f64(), cluster.skipped_cycles, r)
}

/// Best-of-`reps` for both engines, reps interleaved (serial, engine,
/// serial, engine, ...) so slow host-load windows hit both sides alike.
fn measure_pair(
    sys: &ParticleSystem,
    cfg: ClusterConfig,
    steps: u64,
    reps: u32,
    engine: &EngineConfig,
) -> (f64, f64, u64, ClusterRunReport, ClusterRunReport) {
    let mut serial_best = f64::INFINITY;
    let mut engine_best = f64::INFINITY;
    let mut skipped = 0;
    let mut reports = None;
    for _ in 0..reps {
        let (ts, _, rs) = run_once(sys, cfg, steps, &EngineConfig::serial());
        let (te, sk, re) = run_once(sys, cfg, steps, engine);
        serial_best = serial_best.min(ts);
        engine_best = engine_best.min(te);
        skipped = sk;
        reports = Some((rs, re));
    }
    let (rs, re) = reports.expect("reps >= 1");
    (serial_best, engine_best, skipped, rs, re)
}

fn main() {
    let args = Args::parse();
    let steps: u64 = args.get("steps", 3);
    let reps: u32 = args.get("reps", 2);
    let stall: u64 = args.get("stall", 200_000);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads: usize = args.get("threads", host_cores);
    let out: String = args.get("out", "BENCH_engine.json".to_string());

    println!("FASDA — cycle-engine benchmark (fig16 8-FPGA workload)");
    println!(
        "6x6x6 cells, 64 Na/cell, 8 nodes (3x3x3 cells each), {steps} steps, best of {reps}, \
         {host_cores}-core host"
    );

    let sys = WorkloadSpec::paper(SimulationSpace::cubic(6), 0xFA5DA).generate();
    let dense = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    let mut straggler = dense;
    straggler.straggler = Some((0, stall));
    let scenarios = [
        Scenario { name: "dense", cfg: dense },
        Scenario { name: "straggler", cfg: straggler },
    ];

    let engine = EngineConfig::parallel().with_threads(threads);
    let mut outcomes = Vec::new();
    for sc in &scenarios {
        rule(sc.name);
        let (serial_s, engine_s, skipped, r_serial, r_engine) =
            measure_pair(&sys, sc.cfg, steps, reps, &engine);
        println!("{:<22}{serial_s:>10.3} s", "serial reference");
        println!(
            "{:<22}{engine_s:>10.3} s   ({} threads, fast path + fast-forward)",
            "parallel engine", engine.threads
        );
        assert_eq!(r_engine, r_serial, "engines must stay bit-identical");
        let o = Outcome {
            name: sc.name,
            serial_s,
            engine_s,
            cycles: r_serial.total_cycles,
            skipped,
        };
        println!(
            "{:<22}{:>9.2}x   ({} cycles simulated, {} fast-forwarded)",
            "speedup",
            o.speedup(),
            o.cycles,
            o.skipped
        );
        outcomes.push(o);
    }

    // Headline: the straggler run — the fast-forward lever is the one a
    // single-core host can actually realise; the dense run documents the
    // fast-path floor (rayon needs real cores to move it).
    let headline = outcomes.last().expect("scenarios is non-empty").speedup();
    println!("\nheadline speedup (straggler fig16 run): {headline:.2}x");

    // Hand-rolled JSON — the workspace deliberately has no serde_json.
    let mut json = String::from("{\n");
    json.push_str("  \"workload\": \"fig16-6x6x6-8fpga\",\n");
    json.push_str(&format!("  \"steps\": {steps},\n  \"reps\": {reps},\n"));
    json.push_str(&format!(
        "  \"host_cores\": {host_cores},\n  \"threads\": {},\n  \"straggler_stall\": {stall},\n",
        engine.threads
    ));
    json.push_str(&format!("  \"speedup\": {headline:.3},\n"));
    json.push_str("  \"bit_identical\": true,\n  \"scenarios\": {\n");
    for (i, o) in outcomes.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{\n      \"serial_seconds\": {:.6},\n      \"engine_seconds\": {:.6},\n      \
             \"speedup\": {:.3},\n      \"simulated_cycles\": {},\n      \"skipped_cycles\": {}\n    }}{}\n",
            o.name,
            o.serial_s,
            o.engine_s,
            o.speedup(),
            o.cycles,
            o.skipped,
            if i + 1 < outcomes.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(&out, json).expect("write benchmark result");
    println!("wrote {out}");
}
