//! Ablation — filters per force pipeline (paper §5.3).
//!
//! "The number of filters (6 per pipeline in our experiments) matches
//! the PE throughput that generates one force per cycle": with Eq. 3's
//! ~15.5% pass rate, 6 filters feed ≈ 0.93 valid pairs/cycle. Fewer
//! filters starve the pipeline; more filters saturate it and waste LUTs.
//! This sweep measures cycles/step and PE utilization across filter
//! counts on the paper-scale single-chip design.
//!
//! Usage: `ablate_filters [--steps N]`

use fasda_bench::{rule, Args};
use fasda_core::config::ChipConfig;
use fasda_core::geometry::ChipGeometry;
use fasda_core::timed::TimedChip;
use fasda_md::space::SimulationSpace;
use fasda_md::units::UnitSystem;
use fasda_md::workload::WorkloadSpec;

fn main() {
    let args = Args::parse();
    let steps: u64 = args.get("steps", 2);
    let space = SimulationSpace::cubic(3);
    let sys = WorkloadSpec::paper(space, 0xFA5DA).generate();

    println!("FASDA reproduction — ablation: filters per pipeline (paper: 6)");
    rule("3x3x3, 64 Na/cell, 1 PE per cell");
    println!(
        "{:<10}{:>14}{:>12}{:>14}{:>14}",
        "filters", "cycles/step", "µs/day", "PE hw util", "filter util"
    );

    let mut best = (0u32, f64::MAX);
    for filters in [1u32, 2, 4, 6, 8, 12] {
        let mut cfg = ChipConfig::baseline();
        cfg.hw.filters_per_pe = filters;
        let mut chip = TimedChip::new(
            cfg,
            ChipGeometry::single_chip(space),
            UnitSystem::PAPER,
            2.0,
        );
        chip.load(&sys);
        let mut cycles = 0u64;
        let mut pe_util = 0.0;
        let mut f_util = 0.0;
        for _ in 0..steps {
            let r = chip.run_timestep();
            cycles += r.total_cycles();
            pe_util = r.stats.hardware_util("PE", r.total_cycles());
            f_util = r.stats.hardware_util("Filter", r.total_cycles());
        }
        let per_step = cycles as f64 / steps as f64;
        let rate = cfg.hw.us_per_day(per_step, 2.0);
        println!(
            "{:<10}{:>14.0}{:>12.2}{:>13.1}%{:>13.1}%",
            filters,
            per_step,
            rate,
            100.0 * pe_util,
            100.0 * f_util
        );
        if per_step < best.1 {
            best = (filters, per_step);
        }
    }

    println!(
        "\nfastest at {} filters; the paper's 6 balances speed against the\n\
         hundreds of filter instances the design replicates (LUT cost).",
        best.0
    );
}
