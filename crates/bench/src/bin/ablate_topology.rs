//! Ablation — inter-node topology (paper §4.1, Fig. 8).
//!
//! The paper runs its testbed through a 100 GbE switch but argues the
//! architecture also suits direct hyper-ring wiring ("the network
//! routing device can be replaced by other FPGA nodes directly connected
//! as a ring ... or a hyper-ring of 3rd order ... using FPGA Mezzanine
//! Cards"), trading switch latency for hop latency that grows with ring
//! distance. This harness runs the same 8-FPGA workload over a switch, a
//! single ring, and a 2nd-order hyper-ring, at two link-latency
//! operating points.
//!
//! Usage: `ablate_topology [--steps N]`

use fasda_bench::{engine_from_args, rule, Args};
use fasda_cluster::{Cluster, ClusterConfig, EngineConfig};
use fasda_core::config::ChipConfig;
use fasda_md::space::SimulationSpace;
use fasda_md::workload::WorkloadSpec;
use fasda_net::topology::Topology;

fn run(topology: Topology, steps: u64, engine: &EngineConfig) -> (f64, f64) {
    let sys = WorkloadSpec::paper(SimulationSpace::cubic(6), 0xFA5DA).generate();
    let mut cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    cfg.topology = topology;
    let mut cluster = Cluster::new(cfg, &sys);
    let r = cluster.run_with(steps, engine);
    (r.cycles_per_step(), r.us_per_day())
}

fn main() {
    let args = Args::parse();
    let steps: u64 = args.get("steps", 2);
    let engine = engine_from_args(&args);

    println!("FASDA reproduction — ablation: inter-node topology (§4.1)");
    println!("6x6x6 cells on 8 FPGAs, variant A\n");
    rule("topology comparison");
    println!("{:<44}{:>14}{:>10}", "topology", "cyc/step", "µs/day");

    let cases: [(&str, Topology); 5] = [
        (
            "switch, 1 µs (paper testbed)",
            Topology::Switch { latency: 200 },
        ),
        ("switch, 5 µs (congested)", Topology::Switch { latency: 1000 }),
        (
            "hyper-ring (8 nodes, 50-cycle FMC hops)",
            Topology::HyperRing {
                nodes: 8,
                hop_latency: 50,
            },
        ),
        (
            "hyper-ring (8 nodes, 200-cycle hops)",
            Topology::HyperRing {
                nodes: 8,
                hop_latency: 200,
            },
        ),
        (
            "2nd-order hyper-ring (4x2, 50/100 cycles)",
            Topology::HyperRing2 {
                inner: 4,
                rings: 2,
                hop_latency: 50,
                bridge_latency: 100,
            },
        ),
    ];
    for (label, topo) in cases {
        let (cps, rate) = run(topo, steps, &engine);
        println!("{label:<44}{cps:>14.0}{rate:>10.2}");
    }

    println!("\nreading: with low-latency direct links a hyper-ring matches or beats");
    println!("the switch despite multi-hop paths — the paper's point that RL traffic");
    println!("is neighbour-dominated, so diameter matters little (§4.1, §5.4). A slow");
    println!("switch hurts every exchange; slow ring hops hurt only distant pairs.");
}
