//! `chaosbench` — cost of surviving a lossy hyper-ring.
//!
//! Runs the fig16-style 8-FPGA workload through a sweep of seeded
//! drop-only fault plans with the reliable-delivery layer on, and
//! records what reliability costs as loss grows:
//!
//! * `goodput` — fraction of fabric packets that are first-copy payload
//!   (baseline packet count / faulted packet count; the rest is
//!   retransmissions, acks, and duplicate copies);
//! * `retransmit_overhead` — retransmitted frames per baseline payload
//!   frame;
//! * `cycle_inflation` — simulated cycles relative to the fault-free
//!   run (retransmission round-trips stretch chained sync).
//!
//! Every faulted run is asserted **bit-identical** in final particle
//! state to the fault-free run — the sweep measures the price of
//! reliability, never a different answer. The rate-0 row isolates the
//! pure ack/bookkeeping overhead of the layer itself.
//!
//! Results merge into the `chaos` section of `BENCH_engine.json`
//! (created if absent), preserving the engine benchmark's sections.
//!
//! Usage: `chaosbench [--steps N] [--per-cell N] [--seed S]
//!                    [--out FILE] [--smoke]`

use fasda_bench::{rule, Args};
use fasda_cluster::{Cluster, ClusterConfig, EngineConfig, FaultPlan, RelConfig};
use fasda_core::config::ChipConfig;
use fasda_md::element::Element;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::workload::{Placement, WorkloadSpec};
use fasda_trace::Json;

/// One row of the sweep.
struct Row {
    rate: f64,
    cycles: u64,
    packets: u64,
    faults: u64,
    retransmits: u64,
    acks: u64,
    duplicates: u64,
}

struct RunOut {
    cycles: u64,
    packets: u64,
    faults: u64,
    retransmits: u64,
    acks: u64,
    duplicates: u64,
    sys: ParticleSystem,
}

fn run(sys: &ParticleSystem, cfg: ClusterConfig, steps: u64, engine: &EngineConfig) -> RunOut {
    let mut cluster = Cluster::new(cfg, sys);
    let report = cluster
        .try_run_with(steps, 2_000_000_000, engine)
        .expect("chaos sweep run converges");
    let mut out = sys.clone();
    cluster.store_into(&mut out);
    let rel = report.reliability.unwrap_or_default();
    RunOut {
        cycles: report.total_cycles,
        packets: report.pos_packets + report.frc_packets,
        faults: report.faults_injected,
        retransmits: rel.retransmits,
        acks: rel.acks_sent,
        duplicates: rel.duplicates_dropped,
        sys: out,
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let steps: u64 = args.get("steps", if smoke { 1 } else { 3 });
    let per_cell: u32 = args.get("per-cell", if smoke { 4 } else { 16 });
    let seed: u64 = args.get("seed", 0xC4A05);
    let out: String = args.get("out", "BENCH_engine.json".to_string());
    let rates: &[f64] = &[0.0, 0.01, 0.05, 0.2];

    println!("FASDA — chaos benchmark (reliable delivery under a lossy hyper-ring)");
    println!(
        "6x6x6 cells, {per_cell} Na/cell, 8 nodes (3x3x3 cells each), {steps} steps{}",
        if smoke { " [smoke]" } else { "" }
    );

    let sys = WorkloadSpec {
        space: SimulationSpace::cubic(6),
        per_cell,
        placement: Placement::JitteredLattice { jitter: 0.05 },
        temperature_k: 150.0,
        seed: 0xFA5DA,
        element: Element::Na,
    }
    .generate();
    let cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    let engine = EngineConfig::parallel();

    rule("fault-free baseline (reliability off)");
    let base = run(&sys, cfg.clone(), steps, &engine);
    println!(
        "{:>10} cycles, {:>8} fabric packets",
        base.cycles, base.packets
    );

    rule("drop-rate sweep (reliability on, seeded plans)");
    println!(
        "{:>6} {:>12} {:>10} {:>8} {:>12} {:>10} {:>9} {:>9}",
        "drop", "cycles", "packets", "faults", "retransmits", "acks", "goodput", "inflate"
    );
    let mut rows = Vec::new();
    for &rate in rates {
        let mut c = cfg.clone().with_reliability(RelConfig::new(2_048, 16_384));
        if rate > 0.0 {
            c = c.with_faults(FaultPlan::drop_only(rate, seed));
        }
        let o = run(&sys, c, steps, &engine);
        assert_eq!(
            o.sys.pos, base.sys.pos,
            "drop {rate}: final positions drifted from fault-free run"
        );
        assert_eq!(
            o.sys.vel, base.sys.vel,
            "drop {rate}: final velocities drifted from fault-free run"
        );
        if rate > 0.0 {
            assert!(o.faults > 0, "drop {rate}: plan injected nothing");
        }
        let goodput = base.packets as f64 / o.packets.max(1) as f64;
        let inflate = o.cycles as f64 / base.cycles.max(1) as f64;
        println!(
            "{:>6} {:>12} {:>10} {:>8} {:>12} {:>10} {:>9.3} {:>9.3}",
            rate, o.cycles, o.packets, o.faults, o.retransmits, o.acks, goodput, inflate
        );
        rows.push(Row {
            rate,
            cycles: o.cycles,
            packets: o.packets,
            faults: o.faults,
            retransmits: o.retransmits,
            acks: o.acks,
            duplicates: o.duplicates,
        });
    }
    println!("\nall sweep runs bit-identical to the fault-free baseline");

    // Merge the chaos section into the engine benchmark document rather
    // than clobbering it; create a fresh document when absent.
    let mut sweep = Vec::new();
    for r in &rows {
        sweep.push(
            Json::obj()
                .field("drop_rate", Json::fixed(r.rate, 3))
                .field("simulated_cycles", Json::uint(r.cycles))
                .field("fabric_packets", Json::uint(r.packets))
                .field("faults_injected", Json::uint(r.faults))
                .field("retransmits", Json::uint(r.retransmits))
                .field("acks", Json::uint(r.acks))
                .field("duplicates_dropped", Json::uint(r.duplicates))
                .field(
                    "goodput",
                    Json::fixed(base.packets as f64 / r.packets.max(1) as f64, 4),
                )
                .field(
                    "retransmit_overhead",
                    Json::fixed(r.retransmits as f64 / base.packets.max(1) as f64, 4),
                )
                .field(
                    "cycle_inflation",
                    Json::fixed(r.cycles as f64 / base.cycles.max(1) as f64, 4),
                )
                .build(),
        );
    }
    let chaos = Json::obj()
        .field("workload", "fig16-6x6x6-8fpga")
        .field("smoke", smoke)
        .field("per_cell", per_cell as i64)
        .field("steps", Json::uint(steps))
        .field("fault_seed", Json::uint(seed))
        .field("baseline_cycles", Json::uint(base.cycles))
        .field("baseline_packets", Json::uint(base.packets))
        .field("bit_identical", true)
        .field("sweep", Json::Arr(sweep))
        .build();

    let mut doc = std::fs::read_to_string(&out)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .unwrap_or_else(|| Json::obj().build());
    match &mut doc {
        Json::Obj(fields) => {
            if let Some(slot) = fields.iter_mut().find(|(k, _)| k == "chaos") {
                slot.1 = chaos;
            } else {
                fields.push(("chaos".to_string(), chaos));
            }
        }
        other => *other = Json::Obj(vec![("chaos".to_string(), chaos)]),
    }
    std::fs::write(&out, doc.pretty()).expect("write benchmark result");
    println!("merged chaos section into {out}");
}
