//! `chaosbench` — cost of surviving a lossy hyper-ring.
//!
//! Runs the fig16-style 8-FPGA workload through a sweep of seeded
//! drop-only fault plans with the reliable-delivery layer on, and
//! records what reliability costs as loss grows:
//!
//! * `goodput` — fraction of fabric packets that are first-copy payload
//!   (baseline packet count / faulted packet count; the rest is
//!   retransmissions, acks, and duplicate copies);
//! * `retransmit_overhead` — retransmitted frames per baseline payload
//!   frame;
//! * `cycle_inflation` — simulated cycles relative to the fault-free
//!   run (retransmission round-trips stretch chained sync).
//!
//! Every faulted run is asserted **bit-identical** in final particle
//! state to the fault-free run — the sweep measures the price of
//! reliability, never a different answer. The rate-0 row isolates the
//! pure ack/bookkeeping overhead of the layer itself.
//!
//! Results merge into the `chaos` section of `BENCH_engine.json`
//! (created if absent), preserving the engine benchmark's sections.
//!
//! `--recovery` instead measures what *crash recovery* costs: for each
//! checkpoint interval and drop rate ∈ {0, 5 %}, a run is killed via a
//! `crash=NODE@STEP` fault at its last step and resumed from the latest
//! snapshot; the `recovery` section records snapshot size, serialize and
//! restore wall time, and the replay overhead (fraction of the run
//! re-simulated because progress past the last checkpoint was lost).
//! Every resumed run is asserted bit-identical to the uninterrupted
//! oracle.
//!
//! Usage: `chaosbench [--steps N] [--per-cell N] [--seed S]
//!                    [--out FILE] [--smoke] [--recovery]`

use fasda_bench::{rule, Args};
use fasda_cluster::{
    resume_latest, run_with_checkpoints, save_checkpoint, CheckpointConfig, Cluster,
    ClusterConfig, ClusterError, CkptRunError, EngineConfig, FaultPlan, ObsLive, ObsSinkConfig,
    RelConfig, RunAccumulator,
};
use fasda_core::config::ChipConfig;
use fasda_md::element::Element;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::workload::{Placement, WorkloadSpec};
use fasda_trace::Json;
use std::time::Instant;

/// One row of the sweep.
struct Row {
    rate: f64,
    cycles: u64,
    packets: u64,
    faults: u64,
    retransmits: u64,
    acks: u64,
    duplicates: u64,
}

struct RunOut {
    cycles: u64,
    packets: u64,
    faults: u64,
    retransmits: u64,
    acks: u64,
    duplicates: u64,
    sys: ParticleSystem,
}

fn run(sys: &ParticleSystem, cfg: ClusterConfig, steps: u64, engine: &EngineConfig) -> RunOut {
    let mut cluster = Cluster::new(cfg, sys);
    let report = cluster
        .try_run_with(steps, 2_000_000_000, engine)
        .expect("chaos sweep run converges");
    let mut out = sys.clone();
    cluster.store_into(&mut out);
    let rel = report.reliability.unwrap_or_default();
    RunOut {
        cycles: report.total_cycles,
        packets: report.pos_packets + report.frc_packets,
        faults: report.faults_injected,
        retransmits: rel.retransmits,
        acks: rel.acks_sent,
        duplicates: rel.duplicates_dropped,
        sys: out,
    }
}

/// The fig16-style 8-FPGA workload shared by both benchmark modes.
fn workload(per_cell: u32) -> ParticleSystem {
    WorkloadSpec {
        space: SimulationSpace::cubic(6),
        per_cell,
        placement: Placement::JitteredLattice { jitter: 0.05 },
        temperature_k: 150.0,
        seed: 0xFA5DA,
        element: Element::Na,
    }
    .generate()
}

/// Merge `section` into the JSON document at `out` under `key`,
/// preserving every other section (created if absent).
fn merge_section(out: &str, key: &str, section: Json) {
    let mut doc = std::fs::read_to_string(out)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .unwrap_or_else(|| Json::obj().build());
    match &mut doc {
        Json::Obj(fields) => {
            if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                slot.1 = section;
            } else {
                fields.push((key.to_string(), section));
            }
        }
        other => *other = Json::Obj(vec![(key.to_string(), section)]),
    }
    std::fs::write(out, doc.pretty()).expect("write benchmark result");
    println!("merged {key} section into {out}");
}

fn main() {
    let args = Args::parse();
    if args.flag("recovery") {
        return recovery(&args);
    }
    let smoke = args.flag("smoke");
    let steps: u64 = args.get("steps", if smoke { 1 } else { 3 });
    let per_cell: u32 = args.get("per-cell", if smoke { 4 } else { 16 });
    let seed: u64 = args.get("seed", 0xC4A05);
    let out: String = args.get("out", "BENCH_engine.json".to_string());
    let rates: &[f64] = &[0.0, 0.01, 0.05, 0.2];

    println!("FASDA — chaos benchmark (reliable delivery under a lossy hyper-ring)");
    println!(
        "6x6x6 cells, {per_cell} Na/cell, 8 nodes (3x3x3 cells each), {steps} steps{}",
        if smoke { " [smoke]" } else { "" }
    );

    let sys = workload(per_cell);
    let cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    let engine = EngineConfig::parallel();

    rule("fault-free baseline (reliability off)");
    let base = run(&sys, cfg.clone(), steps, &engine);
    println!(
        "{:>10} cycles, {:>8} fabric packets",
        base.cycles, base.packets
    );

    rule("drop-rate sweep (reliability on, seeded plans)");
    println!(
        "{:>6} {:>12} {:>10} {:>8} {:>12} {:>10} {:>9} {:>9}",
        "drop", "cycles", "packets", "faults", "retransmits", "acks", "goodput", "inflate"
    );
    let mut rows = Vec::new();
    for &rate in rates {
        let mut c = cfg.clone().with_reliability(RelConfig::new(2_048, 16_384));
        if rate > 0.0 {
            c = c.with_faults(FaultPlan::drop_only(rate, seed));
        }
        let o = run(&sys, c, steps, &engine);
        assert_eq!(
            o.sys.pos, base.sys.pos,
            "drop {rate}: final positions drifted from fault-free run"
        );
        assert_eq!(
            o.sys.vel, base.sys.vel,
            "drop {rate}: final velocities drifted from fault-free run"
        );
        assert_eq!(
            o.sys.force, base.sys.force,
            "drop {rate}: final forces drifted from fault-free run"
        );
        if rate > 0.0 {
            assert!(o.faults > 0, "drop {rate}: plan injected nothing");
        }
        let goodput = base.packets as f64 / o.packets.max(1) as f64;
        let inflate = o.cycles as f64 / base.cycles.max(1) as f64;
        println!(
            "{:>6} {:>12} {:>10} {:>8} {:>12} {:>10} {:>9.3} {:>9.3}",
            rate, o.cycles, o.packets, o.faults, o.retransmits, o.acks, goodput, inflate
        );
        rows.push(Row {
            rate,
            cycles: o.cycles,
            packets: o.packets,
            faults: o.faults,
            retransmits: o.retransmits,
            acks: o.acks,
            duplicates: o.duplicates,
        });
    }
    println!("\nall sweep runs bit-identical to the fault-free baseline");

    // Merge the chaos section into the engine benchmark document rather
    // than clobbering it; create a fresh document when absent.
    let mut sweep = Vec::new();
    for r in &rows {
        sweep.push(
            Json::obj()
                .field("drop_rate", Json::fixed(r.rate, 3))
                .field("simulated_cycles", Json::uint(r.cycles))
                .field("fabric_packets", Json::uint(r.packets))
                .field("faults_injected", Json::uint(r.faults))
                .field("retransmits", Json::uint(r.retransmits))
                .field("acks", Json::uint(r.acks))
                .field("duplicates_dropped", Json::uint(r.duplicates))
                .field(
                    "goodput",
                    Json::fixed(base.packets as f64 / r.packets.max(1) as f64, 4),
                )
                .field(
                    "retransmit_overhead",
                    Json::fixed(r.retransmits as f64 / base.packets.max(1) as f64, 4),
                )
                .field(
                    "cycle_inflation",
                    Json::fixed(r.cycles as f64 / base.cycles.max(1) as f64, 4),
                )
                .build(),
        );
    }
    let chaos = Json::obj()
        .field("workload", "fig16-6x6x6-8fpga")
        .field("smoke", smoke)
        .field("per_cell", per_cell as i64)
        .field("steps", Json::uint(steps))
        .field("fault_seed", Json::uint(seed))
        .field("baseline_cycles", Json::uint(base.cycles))
        .field("baseline_packets", Json::uint(base.packets))
        .field("bit_identical", true)
        .field("sweep", Json::Arr(sweep))
        .build();

    merge_section(&out, "chaos", chaos);

    rule("heartbeat continuity under loss");
    // The in-run sampler beats on step boundaries, so a retransmission
    // storm stretches *cycles* but must never open a gap in the beat
    // stream: with cadence 1 no two consecutive beats (or the run's
    // end) may be more than 2 steps apart.
    let every = 1u64;
    let limit = 2 * every;
    let scratch = std::env::temp_dir().join(format!("fasda-chaos-obs-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    println!(
        "{:>6} {:>7} {:>9} {:>10}",
        "drop", "beats", "max-gap", "gap-limit"
    );
    let mut cont = Vec::new();
    for &rate in &[0.0, 0.05] {
        let mut c = cfg.clone().with_reliability(RelConfig::new(2_048, 16_384));
        if rate > 0.0 {
            c = c.with_faults(FaultPlan::drop_only(rate, seed));
        }
        let beats_path = scratch.join(format!("beats-{}.jsonl", (rate * 100.0) as u32));
        let sinks = ObsSinkConfig { heartbeat_out: Some(beats_path.clone()), prom_out: None };
        let mut cluster = Cluster::new(c, &sys);
        cluster.attach_obs(Box::new(ObsLive::new(every, &sinks).expect("beat sink opens")));
        cluster
            .try_run_with(steps, 2_000_000_000, &engine)
            .expect("lossy heartbeat run converges");
        let text = std::fs::read_to_string(&beats_path).expect("beat stream");
        let seen: Vec<u64> = text
            .lines()
            .map(|l| {
                let rec = Json::parse(l).expect("beat record parses");
                rec.get("step").unwrap().as_i64().expect("step field") as u64
            })
            .collect();
        assert!(!seen.is_empty(), "drop {rate}: no heartbeats emitted");
        let mut max_gap = seen[0]; // start-of-run to first beat
        for w in seen.windows(2) {
            max_gap = max_gap.max(w[1] - w[0]);
        }
        max_gap = max_gap.max(steps - seen.last().unwrap()); // last beat to end
        assert!(
            max_gap <= limit,
            "drop {rate}: heartbeat gap of {max_gap} steps exceeds {limit} (2x cadence)"
        );
        println!("{:>6} {:>7} {:>9} {:>10}", rate, seen.len(), max_gap, limit);
        cont.push(
            Json::obj()
                .field("drop_rate", Json::fixed(rate, 3))
                .field("beats", Json::uint(seen.len() as u64))
                .field("max_gap_steps", Json::uint(max_gap))
                .build(),
        );
    }
    println!("\nno heartbeat gap exceeded 2x the cadence");
    let _ = std::fs::remove_dir_all(&scratch);
    merge_section(
        &out,
        "heartbeat_continuity",
        Json::obj()
            .field("workload", "fig16-6x6x6-8fpga")
            .field("smoke", smoke)
            .field("steps", Json::uint(steps))
            .field("cadence_steps", Json::uint(every))
            .field("gap_limit_steps", Json::uint(limit))
            .field("rows", Json::Arr(cont))
            .build(),
    );
}

/// `--recovery`: the cost of checkpointing and of coming back from the
/// dead, as a function of checkpoint interval and link loss.
fn recovery(args: &Args) {
    let smoke = args.flag("smoke");
    let steps: u64 = args.get("steps", if smoke { 4 } else { 6 });
    let per_cell: u32 = args.get("per-cell", if smoke { 4 } else { 16 });
    let seed: u64 = args.get("seed", 0xC4A05);
    let out: String = args.get("out", "BENCH_engine.json".to_string());
    let intervals: &[u64] = if smoke { &[1, 2] } else { &[1, 2, 3] };
    let rates: &[f64] = &[0.0, 0.05];
    let crash_step = steps - 1;

    println!("FASDA — recovery benchmark (checkpoint + crash-recovery cost)");
    println!(
        "6x6x6 cells, {per_cell} Na/cell, 8 nodes, {steps} steps, crash=1@{crash_step}{}",
        if smoke { " [smoke]" } else { "" }
    );

    let sys = workload(per_cell);
    let base = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    let engine = EngineConfig::parallel();
    let budget = 2_000_000_000u64;
    let scratch = std::env::temp_dir().join(format!("fasda-recovery-{}", std::process::id()));

    println!(
        "{:>6} {:>5} {:>12} {:>10} {:>10} {:>8} {:>12} {:>9}",
        "drop", "every", "snap-bytes", "ser-ms", "restore-ms", "replayed", "replay-cyc", "overhead"
    );
    let mut sweep = Vec::new();
    for &rate in rates {
        let faulted = |crash: bool| {
            let mut plan = if rate > 0.0 {
                FaultPlan::drop_only(rate, seed)
            } else {
                FaultPlan::none()
            };
            if crash {
                plan = plan.with_crash(1, crash_step);
            }
            let mut c = base.clone();
            if rate > 0.0 {
                c = c.with_reliability(RelConfig::new(2_048, 16_384));
            }
            if !plan.is_none() || !plan.crashes.is_empty() {
                c = c.with_faults(plan);
            }
            c
        };
        for &every in intervals {
            let tag = format!("r{}-k{every}", (rate * 100.0) as u32);
            // Separate oracle and victim checkpoint dirs: resume must
            // only ever see snapshots the *crashed* run got to write.
            let ckpt = CheckpointConfig::new(every, scratch.join(format!("{tag}-oracle")));
            let dir = scratch.join(format!("{tag}-crash"));
            let ckpt_crash = CheckpointConfig::new(every, &dir);

            // Uninterrupted oracle with the same segmentation: the
            // bit-identity reference and the denominator for overhead.
            let mut oracle = Cluster::new(faulted(false), &sys);
            let oracle_run = run_with_checkpoints(
                &mut oracle,
                steps,
                budget,
                &engine,
                Some(&ckpt),
                RunAccumulator::new(),
            )
            .expect("oracle run completes");
            let mut oracle_sys = sys.clone();
            oracle.store_into(&mut oracle_sys);

            // Serialize cost on the final (densest) machine state.
            let mut final_acc = RunAccumulator::new();
            final_acc.fold(&oracle_run.report);
            let t = Instant::now();
            let snap_path = save_checkpoint(&oracle, &final_acc, &ckpt).expect("serialize");
            let serialize_ms = t.elapsed().as_secs_f64() * 1e3;
            let snapshot_bytes = std::fs::metadata(&snap_path).expect("stat").len();

            // Crash at the last step, losing everything past the most
            // recent checkpoint boundary.
            let mut victim = Cluster::new(faulted(true), &sys);
            let crashed = run_with_checkpoints(
                &mut victim,
                steps,
                budget,
                &engine,
                Some(&ckpt_crash),
                RunAccumulator::new(),
            );
            match crashed {
                Err(CkptRunError::Run(ClusterError::Crashed(_))) => {}
                other => panic!("expected injected crash, got {:?}", other.map(|r| r.report)),
            }

            // Recover: restore the latest snapshot and replay to the end.
            let mut revived = Cluster::new(faulted(false), &sys);
            let t = Instant::now();
            let (_, acc) = resume_latest(&mut revived, &dir)
                .expect("restore")
                .expect("a checkpoint exists");
            let restore_ms = t.elapsed().as_secs_f64() * 1e3;
            let steps_replayed = crash_step + 1 - acc.steps_done.min(crash_step + 1);
            let resume_cycle = revived.cycle;
            let run =
                run_with_checkpoints(&mut revived, steps, budget, &engine, Some(&ckpt_crash), acc)
                    .expect("resumed run completes");
            let replay_cycles = revived.cycle - resume_cycle;
            let overhead = replay_cycles as f64 / run.report.total_cycles.max(1) as f64;

            let mut recovered_sys = sys.clone();
            revived.store_into(&mut recovered_sys);
            assert_eq!(recovered_sys.pos, oracle_sys.pos, "recovery drifted (pos)");
            assert_eq!(recovered_sys.vel, oracle_sys.vel, "recovery drifted (vel)");
            assert_eq!(recovered_sys.force, oracle_sys.force, "recovery drifted (force)");
            assert_eq!(
                run.report.total_cycles, oracle_run.report.total_cycles,
                "recovery cycle count drifted"
            );

            println!(
                "{:>6} {:>5} {:>12} {:>10.2} {:>10.2} {:>8} {:>12} {:>9.3}",
                rate, every, snapshot_bytes, serialize_ms, restore_ms, steps_replayed,
                replay_cycles, overhead
            );
            sweep.push(
                Json::obj()
                    .field("drop_rate", Json::fixed(rate, 3))
                    .field("checkpoint_every", Json::uint(every))
                    .field("snapshot_bytes", Json::uint(snapshot_bytes))
                    .field("serialize_ms", Json::fixed(serialize_ms, 3))
                    .field("restore_ms", Json::fixed(restore_ms, 3))
                    .field("steps_replayed", Json::uint(steps_replayed))
                    .field("replay_cycles", Json::uint(replay_cycles))
                    .field("replay_overhead", Json::fixed(overhead, 4))
                    .field("total_cycles", Json::uint(run.report.total_cycles))
                    .build(),
            );
        }
    }
    println!("\nall recovered runs bit-identical to their uninterrupted oracles");
    let _ = std::fs::remove_dir_all(&scratch);

    let recovery = Json::obj()
        .field("workload", "fig16-6x6x6-8fpga")
        .field("smoke", smoke)
        .field("per_cell", per_cell as i64)
        .field("steps", Json::uint(steps))
        .field("crash_step", Json::uint(crash_step))
        .field("fault_seed", Json::uint(seed))
        .field("bit_identical", true)
        .field("sweep", Json::Arr(sweep))
        .build();
    merge_section(&out, "recovery", recovery);
}
