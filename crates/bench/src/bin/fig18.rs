//! Figure 18 — Communication bandwidth demand and breakdown.
//!
//! (A) average per-FPGA bandwidth demand in Gbps for the position and
//! force ports across the multi-chip designs (paper: below 25 Gbps even
//! for 2-SPE/3-PE);
//! (B) percentage breakdown of position and force traffic by peer node
//! (paper: forces concentrate on logically-near nodes because zero
//! forces are discarded rather than returned).
//!
//! Usage: `fig18 [--steps N]`

use fasda_bench::{engine_from_args, rule, Args};
use fasda_cluster::{Cluster, ClusterConfig, EngineConfig};
use fasda_core::config::{ChipConfig, DesignVariant};
use fasda_md::space::SimulationSpace;
use fasda_md::workload::WorkloadSpec;

fn run(
    label: &str,
    space: SimulationSpace,
    block: (u32, u32, u32),
    variant: DesignVariant,
    steps: u64,
    engine: &EngineConfig,
) {
    let sys = WorkloadSpec::paper(space, 0xFA5DA).generate();
    let cfg = ClusterConfig::paper(ChipConfig::variant(variant), block);
    let mut cl = Cluster::new(cfg, &sys);
    let report = cl.run_with(steps, engine);
    println!(
        "{:<14}{:>7}{:>12.2}{:>12.2}{:>14}{:>14}",
        label,
        report.nodes,
        report.pos_gbps_per_node(),
        report.frc_gbps_per_node(),
        report.pos_packets,
        report.frc_packets,
    );
}

fn breakdown(
    label: &str,
    space: SimulationSpace,
    block: (u32, u32, u32),
    variant: DesignVariant,
    steps: u64,
    engine: &EngineConfig,
) {
    let sys = WorkloadSpec::paper(space, 0xFA5DA).generate();
    let cfg = ClusterConfig::paper(ChipConfig::variant(variant), block);
    let mut cl = Cluster::new(cfg, &sys);
    let report = cl.run_with(steps, engine);
    let t = &report.per_node_traffic[0];
    let pos_total: u64 = t.pos_sent.values().sum();
    let frc_total: u64 = t.frc_sent.values().sum();
    println!("\n  {label}: traffic share of node (0,0,0) by peer (pos% / frc%)");
    let mut peers: Vec<_> = t.pos_sent.keys().collect();
    peers.sort_by_key(|c| (c.x, c.y, c.z));
    for p in peers {
        let pos = *t.pos_sent.get(p).unwrap_or(&0) as f64 / pos_total.max(1) as f64;
        let frc = *t.frc_sent.get(p).unwrap_or(&0) as f64 / frc_total.max(1) as f64;
        let dist = p.x.min(1) + p.y.min(1) + p.z.min(1); // face/edge/corner
        let kind = match dist {
            1 => "face  ",
            2 => "edge  ",
            _ => "corner",
        };
        println!(
            "    peer ({},{},{}) {kind}: pos {:>5.1}%   frc {:>5.1}%",
            p.x,
            p.y,
            p.z,
            100.0 * pos,
            100.0 * frc
        );
    }
}

fn main() {
    let args = Args::parse();
    let steps: u64 = args.get("steps", 2);
    let engine = engine_from_args(&args);

    println!("FASDA reproduction — Figure 18: communication intensity");
    rule("(A) average per-FPGA bandwidth demand (paper: < 25 Gbps)");
    println!(
        "{:<14}{:>7}{:>12}{:>12}{:>14}{:>14}",
        "design", "FPGAs", "pos Gbps", "frc Gbps", "pos pkts", "frc pkts"
    );
    run("6x3x3", SimulationSpace::new(6, 3, 3), (3, 3, 3), DesignVariant::A, steps, &engine);
    run("6x6x3", SimulationSpace::new(6, 6, 3), (3, 3, 3), DesignVariant::A, steps, &engine);
    run("6x6x6", SimulationSpace::cubic(6), (3, 3, 3), DesignVariant::A, steps, &engine);
    run("4x4x4-A", SimulationSpace::cubic(4), (2, 2, 2), DesignVariant::A, steps, &engine);
    run("4x4x4-B", SimulationSpace::cubic(4), (2, 2, 2), DesignVariant::B, steps, &engine);
    run("4x4x4-C", SimulationSpace::cubic(4), (2, 2, 2), DesignVariant::C, steps, &engine);

    rule("(B) traffic breakdown by peer (paper: force traffic to corner peers ≈ 0)");
    breakdown(
        "6x6x6 (8F)",
        SimulationSpace::cubic(6),
        (3, 3, 3),
        DesignVariant::A,
        steps,
        &engine,
    );
    breakdown(
        "4x4x4-C (8F)",
        SimulationSpace::cubic(4),
        (2, 2, 2),
        DesignVariant::C,
        steps,
        &engine,
    );
    println!("\ndone.");
}
