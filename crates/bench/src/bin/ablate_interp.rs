//! Ablation — interpolation table precision vs cost (paper §3.4,
//! Fig. 7).
//!
//! Sweeps the section/bin geometry of the `r⁻¹⁴`/`r⁻⁸` tables and
//! reports the worst relative force error over the covered domain, the
//! resulting total-energy error after a short trajectory, and the BRAM
//! footprint. Shows why 256 bins/section is the design point: error
//! scales as `n_b⁻²` while storage scales as `n_b`.
//!
//! Usage: `ablate_interp [--steps N]`

use fasda_arith::interp::{InterpTable, TableConfig};
use fasda_bench::{rule, Args};
use fasda_core::functional::FunctionalChip;
use fasda_md::element::PairTable;
use fasda_md::engine::{CellListEngine, ForceEngine};
use fasda_md::integrator::Integrator;
use fasda_md::observables::{kinetic_energy, relative_error};
use fasda_md::space::SimulationSpace;
use fasda_md::units::UnitSystem;
use fasda_md::workload::WorkloadSpec;

fn trajectory_energy_error(cfg: TableConfig, steps: u64) -> f64 {
    let sys = WorkloadSpec::paper(SimulationSpace::cubic(3), 0xFA5DA).generate();
    let table = PairTable::new(UnitSystem::PAPER);
    let mut chip = FunctionalChip::load(&sys, cfg, 2.0);
    let mut ref_sys = sys.clone();
    let mut ref_eng = CellListEngine::new(table.clone());
    let mut meas = CellListEngine::new(table);
    let integ = Integrator::PAPER;
    for _ in 0..steps {
        chip.step();
        ref_eng.step(&mut ref_sys, &integ);
    }
    let mut snap = chip.snapshot();
    let e_f = meas.compute_forces(&mut snap) + kinetic_energy(&snap);
    let e_r = meas.compute_forces(&mut ref_sys.clone()) + kinetic_energy(&ref_sys);
    relative_error(e_f, e_r)
}

fn main() {
    let args = Args::parse();
    let steps: u64 = args.get("steps", 100);

    println!("FASDA reproduction — ablation: interpolation table geometry (§3.4)");
    rule("bins/section sweep at 14 sections (paper design point: 256 bins)");
    println!(
        "{:<10}{:>14}{:>14}{:>16}{:>12}",
        "bins", "r^-14 err", "r^-8 err", "E err @steps", "BRAM Kb"
    );
    for log2_bins in [4u32, 6, 8, 10] {
        let cfg = TableConfig {
            n_sections: 14,
            log2_bins,
        };
        let e14 = InterpTable::build_r_pow(cfg, 14).max_rel_error(|x| x.powf(-7.0), 20_000);
        let e8 = InterpTable::build_r_pow(cfg, 8).max_rel_error(|x| x.powf(-4.0), 20_000);
        let traj = trajectory_energy_error(cfg, steps);
        // four tables on chip: r^-14, r^-8, r^-12, r^-6
        let kb = 4.0 * cfg.storage_bits() as f64 / 1024.0;
        println!(
            "{:<10}{:>14.3e}{:>14.3e}{:>16.3e}{:>12.0}",
            cfg.bins(),
            e14,
            e8,
            traj,
            kb
        );
    }

    rule("section count sweep at 256 bins (domain floor = 2^-n_s)");
    println!("{:<10}{:>16}{:>14}", "sections", "domain min r", "r^-14 err");
    for n_sections in [8u32, 11, 14, 17] {
        let cfg = TableConfig {
            n_sections,
            log2_bins: 8,
        };
        let e14 = InterpTable::build_r_pow(cfg, 14).max_rel_error(|x| x.powf(-7.0), 20_000);
        println!(
            "{:<10}{:>16.4}{:>14.3e}",
            n_sections,
            cfg.domain_min().sqrt(),
            e14
        );
    }

    println!("\nreading: error falls quadratically with bins (chord interpolation) while");
    println!("storage grows linearly; sections only extend the domain floor toward r = 0.");
    println!("an `inf` row means the slope coefficient overflowed f32 (r^-14 ~ 2^119 at");
    println!("r^2 = 2^-17) — the hardware reason the small-r region is excluded (Fig. 7).");
}
