//! Service load generator — submit→complete latency and queue-depth
//! behaviour of the `fasda-svc` job daemon under concurrent multi-tenant
//! load.
//!
//! Starts an in-process server (Unix-domain control socket, a worker
//! pool), then drives it from several client threads, each submitting a
//! stream of tiny jobs across a handful of tenants with distinct
//! fair-share weights. A slice of the jobs is asked to migrate
//! mid-flight, so the measured latencies include drain/resume cycles —
//! the service's steady state under rebalancing, not an idle best case.
//!
//! Two latency views are recorded and cross-checked:
//!
//! * client-side — per-job submit→terminal wall clock, quantiled over
//!   the raw samples (includes the client's ~20 ms status-poll
//!   quantization, i.e. what a caller actually experiences);
//! * server-side — the daemon's own `job_latency_ms` histogram,
//!   bucket-quantiled with the `fasda_obs::Hist::quantile` rule
//!   (submit→settle, no poll overhead, upper-bound biased).
//!
//! Results go to `BENCH_service.json` in the current directory.
//!
//! Usage: `svcloadgen [--jobs N] [--clients N] [--workers N]
//!                    [--per-cell N] [--steps N] [--migrate-every N]
//!                    [--out FILE] [--smoke]`
//!
//! `--smoke` shrinks the run to a handful of jobs — a CI liveness gate,
//! not a measurement.

use fasda_bench::Args;
use fasda_svc::{Client, JobSpec, Server, ServerConfig};
use fasda_trace::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const TENANTS: [(&str, &str); 3] = [("alice", "2"), ("bob", "1"), ("carol", "1")];

fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let jobs: usize = if smoke { 6 } else { args.get("jobs", 40) };
    let clients: usize = args.get("clients", if smoke { 2 } else { 4 });
    let workers: usize = args.get("workers", 2);
    let per_cell: u32 = args.get("per-cell", 4);
    // Two steps with a checkpoint after the first gives every job a
    // segment boundary a migrate request can drain at.
    let steps: u64 = args.get("steps", 2);
    let migrate_every: usize = args.get("migrate-every", 8);
    let out = args.get("out", "BENCH_service.json".to_string());

    let dir = std::env::temp_dir().join(format!("fasda-svcload-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ServerConfig::at(&dir);
    cfg.workers = workers;
    for (tenant, weight) in TENANTS {
        cfg.tenants
            .parse_clause(&format!("{tenant}:{weight}"))
            .expect("tenant clause");
    }
    let handle = Server::start(cfg).expect("server start");
    println!(
        "svcloadgen: {jobs} job(s) from {clients} client thread(s) against {workers} worker(s) \
         (per_cell {per_cell}, steps {steps}, migrate every {migrate_every})"
    );

    let counter = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut threads = Vec::new();
    for c in 0..clients {
        let addr = handle.addr().clone();
        let counter = Arc::clone(&counter);
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("client connect");
            let mut latencies_ms: Vec<f64> = Vec::new();
            let mut migrated = 0u64;
            loop {
                let n = counter.fetch_add(1, Ordering::SeqCst) as usize;
                if n >= jobs {
                    break;
                }
                let spec = JobSpec {
                    name: format!("load-{n}"),
                    tenant: TENANTS[n % TENANTS.len()].0.to_string(),
                    priority: (n % 3) as i64,
                    per_cell,
                    steps,
                    ckpt_every: 1,
                    ..JobSpec::default()
                };
                let t0 = Instant::now();
                let id = client.submit(&spec).expect("submit");
                if workers >= 2 && migrate_every > 0 && n.is_multiple_of(migrate_every) {
                    // Racing the worker is fine: a job that already
                    // finished just rejects the migrate.
                    if client.migrate(id).is_ok() {
                        migrated += 1;
                    }
                }
                let status = client
                    .wait(id, Duration::from_secs(600))
                    .expect("job terminal");
                assert_eq!(
                    status.get("state").and_then(Json::as_str),
                    Some("completed"),
                    "client {c} job {id}: {}",
                    status.compact()
                );
                latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            (latencies_ms, migrated)
        }));
    }
    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut migrate_requests = 0u64;
    for t in threads {
        let (lat, mig) = t.join().expect("client thread");
        latencies_ms.extend(lat);
        migrate_requests += mig;
    }
    let elapsed = started.elapsed().as_secs_f64();

    let mut metrics_client = Client::connect(handle.addr()).expect("metrics connect");
    let metrics = metrics_client.metrics().expect("metrics");
    metrics_client.shutdown().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (p50, p95, p99) = (
        quantile(&latencies_ms, 0.50),
        quantile(&latencies_ms, 0.95),
        quantile(&latencies_ms, 0.99),
    );
    let counters = metrics.get("counters").cloned().unwrap_or(Json::Null);
    let counter_of = |name: &str| counters.get(name).and_then(Json::as_i64).unwrap_or(0);
    // The serialized histogram is bounds/counts; quantile it with the
    // same upper-bound-of-bucket rule as `fasda_obs::Hist::quantile`.
    let hist = metrics
        .get("hists")
        .and_then(|h| h.get("job_latency_ms"))
        .cloned()
        .unwrap_or(Json::Null);
    let hist_q = |q: f64| -> u64 {
        let nums = |key: &str| -> Vec<u64> {
            hist.get(key)
                .map(|a| a.items().iter().filter_map(|v| v.as_i64()).map(|v| v as u64).collect())
                .unwrap_or_default()
        };
        let (bounds, counts) = (nums("bounds"), nums("counts"));
        let total: u64 = counts.iter().sum();
        if total == 0 || bounds.is_empty() {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bounds.get(i).copied().unwrap_or(*bounds.last().expect("bounds"));
            }
        }
        *bounds.last().expect("bounds")
    };

    assert_eq!(
        counter_of("jobs_completed") as usize,
        jobs,
        "not every job completed: {}",
        metrics.compact()
    );

    let doc = Json::obj()
        .field("workload", "svc-loadgen-633-2node")
        .field("jobs", jobs)
        .field("clients", clients)
        .field("workers", workers)
        .field("per_cell", per_cell)
        .field("steps", Json::uint(steps))
        .field("elapsed_seconds", elapsed)
        .field("throughput_jobs_per_sec", jobs as f64 / elapsed)
        .field(
            "latency_ms",
            Json::obj()
                .field("p50", p50)
                .field("p95", p95)
                .field("p99", p99)
                .field("min", latencies_ms.first().copied().unwrap_or(0.0))
                .field("max", latencies_ms.last().copied().unwrap_or(0.0))
                .field("samples", latencies_ms.len())
                .build(),
        )
        .field(
            "server_hist_latency_ms",
            Json::obj()
                .field("p50", Json::uint(hist_q(0.50)))
                .field("p95", Json::uint(hist_q(0.95)))
                .field("p99", Json::uint(hist_q(0.99)))
                .build(),
        )
        .field("queue_depth_peak", counter_of("queue_depth_peak"))
        .field("migrate_requests", Json::uint(migrate_requests))
        .field("jobs_migrated", counter_of("jobs_migrated"))
        .field("jobs_completed", counter_of("jobs_completed"))
        .field("smoke", smoke)
        .build();
    std::fs::write(&out, doc.pretty()).expect("write results");
    println!(
        "submit->complete: p50 {p50:.0} ms, p95 {p95:.0} ms, p99 {p99:.0} ms \
         ({:.1} jobs/s, queue peak {}, {} migration(s))",
        jobs as f64 / elapsed,
        counter_of("queue_depth_peak"),
        counter_of("jobs_migrated")
    );
    println!("wrote {out}");
}
