//! Figure 19 — Energy relative error with respect to the
//! double-precision reference (OpenMM stand-in).
//!
//! The FASDA functional model (fixed-point positions, interpolated
//! forces, f32 state) and the f64 cell-list reference engine integrate
//! the same initial condition with the same leapfrog discretization; at
//! regular intervals both trajectories' total energies (KE + truncated-LJ
//! PE, both evaluated in f64) are compared. The paper runs 100 000
//! iterations on the 4×4×4 space and finds the relative error always
//! below 1e-3 and generally below 1e-4.
//!
//! Usage: `fig19 [--steps N] [--interval K] [--space D] [--paper]`
//!   --paper  = the full 100 000-step run (minutes of wall time)

use fasda_arith::interp::TableConfig;
use fasda_bench::{rule, Args};
use fasda_core::functional::FunctionalChip;
use fasda_md::element::PairTable;
use fasda_md::engine::{CellListEngine, ForceEngine};
use fasda_md::integrator::Integrator;
use fasda_md::observables::{kinetic_energy_onstep, relative_error};
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::units::UnitSystem;
use fasda_md::workload::WorkloadSpec;

/// Total energy with leapfrog-synchronized kinetic energy: PE at the
/// current positions plus KE from velocities advanced to the same time
/// point. Without this synchronization, comparing two decorrelated
/// leapfrog trajectories is dominated by their (independent) half-step
/// KE oscillations rather than by arithmetic differences.
fn total_energy(sys: &mut ParticleSystem, eng: &mut CellListEngine) -> f64 {
    let pe = eng.compute_forces(sys);
    pe + kinetic_energy_onstep(sys, 2.0)
}

fn main() {
    let args = Args::parse();
    let paper = args.flag("paper");
    let steps: u64 = if paper { 100_000 } else { args.get("steps", 1_000) };
    let interval: u64 = args.get("interval", (steps / 20).max(1));
    let d: u32 = args.get("space", 4);

    println!("FASDA reproduction — Figure 19: energy relative error vs f64 reference");
    println!("space {d}x{d}x{d}, {} particles, {steps} steps of 2 fs", d * d * d * 64);

    let sys = WorkloadSpec::paper(SimulationSpace::cubic(d), 0xFA5DA).generate();
    let table = PairTable::new(UnitSystem::PAPER);
    let mut chip = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
    let mut ref_sys = sys.clone();
    let mut ref_eng = CellListEngine::new(table.clone());
    let mut meas_eng = CellListEngine::new(table);
    let integ = Integrator::PAPER;

    let mut fasda_snapshot = chip.snapshot();
    let e0_ref = total_energy(&mut ref_sys.clone(), &mut meas_eng);
    let e0_fasda = total_energy(&mut fasda_snapshot, &mut meas_eng);
    println!("initial energy: reference {e0_ref:.4} kcal/mol, FASDA {e0_fasda:.4} kcal/mol");

    rule("step, E_ref, E_fasda, relative error (paper: < 1e-3, mostly < 1e-4)");
    let mut worst: f64 = relative_error(e0_fasda, e0_ref);
    let mut worst_step = 0;
    let mut above_1e4 = 0u64;
    let mut samples = 0u64;
    let mut next_report = interval;
    for step in 1..=steps {
        chip.step();
        ref_eng.step(&mut ref_sys, &integ);
        if step == next_report || step == steps {
            next_report += interval;
            let mut snap = chip.snapshot();
            let e_f = total_energy(&mut snap, &mut meas_eng);
            let e_r = total_energy(&mut ref_sys.clone(), &mut meas_eng);
            let err = relative_error(e_f, e_r);
            samples += 1;
            if err > 1e-4 {
                above_1e4 += 1;
            }
            if err > worst {
                worst = err;
                worst_step = step;
            }
            println!("{step:>8}  {e_r:>14.4}  {e_f:>14.4}  {err:>12.3e}");
        }
    }

    rule("summary");
    println!("worst relative error: {worst:.3e} at step {worst_step}");
    println!(
        "samples above 1e-4: {above_1e4}/{samples} ({:.0}%)",
        100.0 * above_1e4 as f64 / samples.max(1) as f64
    );
    println!(
        "paper criterion (always < 1e-3): {}",
        if worst < 1e-3 { "MET" } else { "NOT MET" }
    );
}
