//! Figure 16 — Scalability comparison: simulation rate in µs/day.
//!
//! Left of the figure: weak scaling over 3³ / 6·3·3 / 6·6·3 / 6³ cell
//! spaces (1/2/4/8 FPGAs) and strong scaling on 4³ (8 FPGAs, design
//! variants A/B/C) against CPU thread sweeps and GPU device counts.
//! Right of the figure: simulated FPGA results for 8³ (64 FPGAs) and 10³
//! (125 FPGAs) with GPU model curves.
//!
//! Usage: `fig16 [--steps N] [--cpu-steps N] [--skip-cpu] [--skip-large]
//!               [--threads N] [--serial]`

use fasda_bench::{engine_from_args, rule, Args};
use fasda_baseline::{GpuKind, GpuModel, ThreadedCpuEngine};
use fasda_cluster::{Cluster, ClusterConfig, EngineConfig};
use fasda_core::config::{ChipConfig, DesignVariant};
use fasda_core::geometry::ChipGeometry;
use fasda_core::timed::TimedChip;
use fasda_md::element::PairTable;
use fasda_md::integrator::Integrator;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::units::UnitSystem;
use fasda_md::workload::WorkloadSpec;

const DT_FS: f64 = 2.0;

fn workload(space: SimulationSpace) -> ParticleSystem {
    WorkloadSpec::paper(space, 0xFA5DA).generate()
}

/// FPGA rate for a single chip covering the whole space.
fn fpga_single(space: SimulationSpace, variant: DesignVariant, steps: u64) -> f64 {
    let sys = workload(space);
    let cfg = ChipConfig::variant(variant);
    let mut chip = TimedChip::new(cfg, ChipGeometry::single_chip(space), UnitSystem::PAPER, DT_FS);
    chip.load(&sys);
    let mut total = 0u64;
    for _ in 0..steps {
        total += chip.run_timestep().total_cycles();
    }
    cfg.hw.us_per_day(total as f64 / steps as f64, DT_FS)
}

/// FPGA rate for a cluster partition.
fn fpga_cluster(
    space: SimulationSpace,
    block: (u32, u32, u32),
    variant: DesignVariant,
    steps: u64,
    engine: &EngineConfig,
) -> (f64, usize) {
    let sys = workload(space);
    let cfg = ClusterConfig::paper(ChipConfig::variant(variant), block);
    let mut cluster = Cluster::new(cfg, &sys);
    let nodes = cluster.num_nodes();
    let report = cluster.run_with(steps, engine);
    (report.us_per_day(), nodes)
}

/// Returns `(µs/day, seconds per step)` for the measured CPU engine.
fn cpu_rate(space: SimulationSpace, threads: usize, steps: usize) -> (f64, f64) {
    let mut sys = workload(space);
    let eng = ThreadedCpuEngine::new(PairTable::new(UnitSystem::PAPER), threads);
    let secs = eng.measure(&mut sys, &Integrator::PAPER, steps);
    (UnitSystem::us_per_day(DT_FS, secs), secs)
}

fn main() {
    let args = Args::parse();
    let steps: u64 = args.get("steps", 3);
    let cpu_steps: usize = args.get("cpu-steps", 3);
    let skip_cpu = args.flag("skip-cpu");
    let skip_large = args.flag("skip-large");
    let engine = engine_from_args(&args);

    println!("FASDA reproduction — Figure 16: scalability comparison (µs/day)");
    println!("FPGA results: cycle-level simulation at 200 MHz, dt = 2 fs, 64 Na/cell");

    // ---------------------------------------------------------------
    rule("FPGA weak scaling (variant A: 1 SPE, 1 PE per cell)");
    println!("{:<12}{:>8}{:>14}{:>16}", "space", "FPGAs", "µs/day", "paper ≈2");
    let r = fpga_single(SimulationSpace::cubic(3), DesignVariant::A, steps);
    println!("{:<12}{:>8}{:>14.2}{:>16}", "3x3x3", 1, r, "~2");
    for (label, space, block, fpgas) in [
        ("6x3x3", SimulationSpace::new(6, 3, 3), (3, 3, 3), 2),
        ("6x6x3", SimulationSpace::new(6, 6, 3), (3, 3, 3), 4),
        ("6x6x6", SimulationSpace::cubic(6), (3, 3, 3), 8),
    ] {
        let (r, nodes) = fpga_cluster(space, block, DesignVariant::A, steps, &engine);
        assert_eq!(nodes, fpgas);
        println!("{:<12}{:>8}{:>14.2}{:>16}", label, fpgas, r, "~2");
    }

    // ---------------------------------------------------------------
    rule("FPGA strong scaling on 4x4x4 (8 FPGAs, 2x2x2 cells each)");
    println!("{:<12}{:>16}{:>14}", "variant", "config", "µs/day");
    let mut rate_a = 0.0;
    let mut rate_c = 0.0;
    for v in [DesignVariant::A, DesignVariant::B, DesignVariant::C] {
        let (r, _) = fpga_cluster(SimulationSpace::cubic(4), (2, 2, 2), v, steps, &engine);
        println!("{:<12}{:>16}{:>14.2}", format!("4x4x4-{v:?}"), v.label(), r);
        if v == DesignVariant::A {
            rate_a = r;
        }
        if v == DesignVariant::C {
            rate_c = r;
        }
    }
    println!(
        "C/A strong-scaling speedup: {:.2}x   (paper: 5.26x)",
        rate_c / rate_a
    );

    // ---------------------------------------------------------------
    rule("GPU model (CALIBRATED — no GPU present; see DESIGN.md)");
    for kind in [GpuKind::A100, GpuKind::V100] {
        println!("{}", GpuModel::new(kind, 1).describe());
    }
    println!(
        "\n{:<12}{:>10}{:>12}{:>12}{:>12}{:>12}",
        "space", "N", "1xA100", "2xA100", "1xV100", "4xV100"
    );
    let mut best_gpu_4cube: f64 = 0.0;
    for (label, cells) in [
        ("3x3x3", 27),
        ("4x4x4", 64),
        ("6x6x6", 216),
        ("8x8x8", 512),
        ("10x10x10", 1000),
    ] {
        let n = cells * 64;
        let a1 = GpuModel::new(GpuKind::A100, 1).us_per_day(n, DT_FS);
        let a2 = GpuModel::new(GpuKind::A100, 2).us_per_day(n, DT_FS);
        let v1 = GpuModel::new(GpuKind::V100, 1).us_per_day(n, DT_FS);
        let v4 = GpuModel::new(GpuKind::V100, 4).us_per_day(n, DT_FS);
        println!(
            "{:<12}{:>10}{:>12.2}{:>12.2}{:>12.2}{:>12.2}",
            label, n, a1, a2, v1, v4
        );
        if label == "4x4x4" {
            best_gpu_4cube = a1.max(a2).max(v1).max(v4);
        }
    }
    println!(
        "\nHeadline: FPGA 4x4x4-C {rate_c:.2} µs/day vs best GPU {best_gpu_4cube:.2} µs/day \
         → {:.2}x   (paper: 4.67x)",
        rate_c / best_gpu_4cube
    );

    // ---------------------------------------------------------------
    if !skip_cpu {
        rule("CPU (measured: rayon LJ engine — OpenMM-CPU stand-in)");
        let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
        println!("host has {cores} hardware thread(s); oversubscribed points are annotated");
        println!(
            "{:<12}{:>9}{:>14}{:>14}",
            "space", "threads", "µs/day", "ms/step"
        );
        for (label, space) in [
            ("3x3x3", SimulationSpace::cubic(3)),
            ("4x4x4", SimulationSpace::cubic(4)),
            ("6x6x6", SimulationSpace::cubic(6)),
        ] {
            for threads in [1usize, 2, 4, 8, 16, 32] {
                let (r, secs) = cpu_rate(space, threads, cpu_steps);
                let note = if threads > cores { " (oversub.)" } else { "" };
                println!(
                    "{:<12}{:>9}{:>14.4}{:>14.2}{note}",
                    label,
                    threads,
                    r,
                    secs * 1e3
                );
            }
        }
    }

    // ---------------------------------------------------------------
    if !skip_large {
        rule("FPGA simulated large clusters (right of Fig. 16)");
        println!("{:<12}{:>8}{:>14}", "space", "FPGAs", "µs/day");
        for (label, space, fpgas) in [
            ("8x8x8", SimulationSpace::cubic(8), 64),
            ("10x10x10", SimulationSpace::cubic(10), 125),
        ] {
            let (r, nodes) = fpga_cluster(space, (2, 2, 2), DesignVariant::C, steps.min(2), &engine);
            assert_eq!(nodes, fpgas);
            println!("{:<12}{:>8}{:>14.2}", label, fpgas, r);
        }
    }

    println!("\ndone.");
}
