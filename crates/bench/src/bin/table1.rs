//! Table 1 — Hardware (resource) utilization of all design variations:
//! the analytic composition model vs the paper's synthesis results.

use fasda_bench::rule;
use fasda_core::config::{ChipConfig, DesignVariant};
use fasda_core::geometry::{ChipCoord, ChipGeometry};
use fasda_core::resources::{estimate, ResourcePercent, ALVEO_U280, PAPER_TABLE1};
use fasda_md::space::SimulationSpace;

type DesignRow = (
    &'static str,
    DesignVariant,
    SimulationSpace,
    (u32, u32, u32),
);

fn model(
    variant: DesignVariant,
    space: SimulationSpace,
    block: (u32, u32, u32),
) -> ResourcePercent {
    let geo = ChipGeometry::new(space, block, ChipCoord::new(0, 0, 0));
    estimate(&ChipConfig::variant(variant), &geo).percent_of(ALVEO_U280)
}

fn main() {
    println!("FASDA reproduction — Table 1: per-FPGA resource utilization");
    println!("model values from the calibrated composition model (see DESIGN.md);");
    println!("paper values from synthesis on the Alveo U280.\n");

    rule("LUT / FF / BRAM / URAM / DSP, % of device (model | paper)");
    println!(
        "{:<10}{:>6} {:>13} {:>13} {:>13} {:>13} {:>13}",
        "design", "FPGAs", "LUT", "FF", "BRAM", "URAM", "DSP"
    );

    let designs: [DesignRow; 7] = [
        ("3x3x3", DesignVariant::A, SimulationSpace::cubic(3), (3, 3, 3)),
        ("6x3x3", DesignVariant::A, SimulationSpace::new(6, 3, 3), (3, 3, 3)),
        ("6x6x3", DesignVariant::A, SimulationSpace::new(6, 6, 3), (3, 3, 3)),
        ("6x6x6", DesignVariant::A, SimulationSpace::cubic(6), (3, 3, 3)),
        ("4x4x4-A", DesignVariant::A, SimulationSpace::cubic(4), (2, 2, 2)),
        ("4x4x4-B", DesignVariant::B, SimulationSpace::cubic(4), (2, 2, 2)),
        ("4x4x4-C", DesignVariant::C, SimulationSpace::cubic(4), (2, 2, 2)),
    ];

    for (i, (label, variant, space, block)) in designs.iter().enumerate() {
        let m = model(*variant, *space, *block);
        let p = PAPER_TABLE1[i];
        assert_eq!(p.0, *label, "row order must match the paper");
        println!(
            "{:<10}{:>6} {:>6.0}|{:<6.0} {:>6.0}|{:<6.0} {:>6.0}|{:<6.0} {:>6.0}|{:<6.0} {:>6.0}|{:<6.0}",
            label, p.1, m.lut, p.2, m.ff, p.3, m.bram, p.4, m.uram, p.5, m.dsp, p.6
        );
    }

    println!("\nknown model limitation: BRAM on 4x4x4-B/C is underestimated because");
    println!("the authors manually rebalance LUT/BRAM/URAM on large variants (§5.5).");
}
