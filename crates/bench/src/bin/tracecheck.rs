//! `tracecheck <run.trace.json> <run.metrics.json>` — CI validator for
//! the flight-recorder exports.
//!
//! Checks, on files produced by `fasda-cli run --trace-out ...
//! --metrics-out ...`:
//!
//! * both documents parse with the fasda-trace JSON reader and survive
//!   a parse → render → parse round-trip unchanged;
//! * every Chrome trace event carries the mandatory `ph`/`pid` fields
//!   (and `ts` for everything but metadata), and every node opens at
//!   least one `force` phase span;
//! * in the metrics document, each (node, step) stall breakdown sums
//!   exactly to that record's `force_cycles` — the attribution
//!   invariant `productive + Σ causes == force_cycles` — with every
//!   known stall-cause key (including the reliability layer's
//!   `retransmit` / `wait-ack` classes) present and summing exactly to
//!   `idle`.
//!
//! Exits non-zero with a message on the first violation.

use fasda_trace::{Json, StallCause};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("tracecheck: {msg}");
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: parse error: {e}"))?;
    let again =
        Json::parse(&doc.pretty()).map_err(|e| format!("{path}: re-parse error: {e}"))?;
    if again != doc {
        return Err(format!("{path}: render/parse round-trip changed the document"));
    }
    Ok(doc)
}

fn check_chrome(doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .ok_or("trace: no traceEvents array")?
        .items();
    if events.is_empty() {
        return Err("trace: traceEvents is empty".into());
    }
    let mut force_spans: BTreeMap<i64, u64> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trace: event {i} has no ph"))?;
        let pid = e
            .get("pid")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("trace: event {i} has no pid"))?;
        if ph != "M" && e.get("ts").and_then(Json::as_f64).is_none() {
            return Err(format!("trace: {ph} event {i} has no ts"));
        }
        if ph == "B" && e.get("name").and_then(Json::as_str) == Some("force") {
            *force_spans.entry(pid).or_default() += 1;
        }
    }
    let nodes = doc
        .get("otherData")
        .and_then(|o| o.get("nodes"))
        .and_then(Json::as_i64)
        .ok_or("trace: otherData.nodes missing")?;
    for node in 0..nodes {
        if !force_spans.contains_key(&node) {
            return Err(format!("trace: node {node} opened no force-phase span"));
        }
    }
    println!(
        "trace ok: {} events, {} nodes with force spans",
        events.len(),
        force_spans.len()
    );
    Ok(())
}

fn check_metrics(doc: &Json) -> Result<(), String> {
    let run = doc.get("run").ok_or("metrics: no run section")?;
    let records = run.get("records").ok_or("metrics: run.records missing")?.items();
    if records.is_empty() {
        return Err("metrics: run.records is empty".into());
    }
    // force_cycles per (node, step), from the run section.
    let mut force_cycles: BTreeMap<(i64, i64), i64> = BTreeMap::new();
    for r in records {
        let node = r.get("node").and_then(Json::as_i64).ok_or("metrics: record node")?;
        let step = r.get("step").and_then(Json::as_i64).ok_or("metrics: record step")?;
        let fc = r
            .get("force_cycles")
            .and_then(Json::as_i64)
            .ok_or("metrics: record force_cycles")?;
        force_cycles.insert((node, step), fc);
    }
    let Some(stalls) = doc.get("stalls") else {
        println!("metrics ok: {} records (no stall section — tracing off)", force_cycles.len());
        return Ok(());
    };
    let mut checked = 0usize;
    for n in stalls.get("nodes").ok_or("metrics: stalls.nodes")?.items() {
        let node = n.get("node").and_then(Json::as_i64).ok_or("metrics: stall node id")?;
        for s in n.get("steps").ok_or("metrics: stall steps")?.items() {
            let step = s.get("step").and_then(Json::as_i64).ok_or("metrics: stall step id")?;
            let total = s.get("total").and_then(Json::as_i64).ok_or("metrics: stall total")?;
            let productive = s
                .get("productive")
                .and_then(Json::as_i64)
                .ok_or("metrics: stall productive")?;
            let idle = s.get("idle").and_then(Json::as_i64).ok_or("metrics: stall idle")?;
            if productive + idle != total {
                return Err(format!(
                    "metrics: node {node} step {step}: productive {productive} + idle {idle} != total {total}"
                ));
            }
            // Per-cause attribution: every cause key (including the
            // reliability layer's retransmit / wait-ack) must be present
            // and the breakdown must sum exactly to `idle`.
            let mut causes = 0i64;
            for cause in StallCause::ALL {
                let v = s.get(cause.label()).and_then(Json::as_i64).ok_or_else(|| {
                    format!(
                        "metrics: node {node} step {step}: missing stall cause `{}`",
                        cause.label()
                    )
                })?;
                causes += v;
            }
            if causes != idle {
                return Err(format!(
                    "metrics: node {node} step {step}: Σ causes {causes} != idle {idle}"
                ));
            }
            let want = force_cycles.get(&(node, step)).copied().ok_or_else(|| {
                format!("metrics: stall entry for node {node} step {step} has no run record")
            })?;
            if total != want {
                return Err(format!(
                    "metrics: node {node} step {step}: stall total {total} != force_cycles {want}"
                ));
            }
            checked += 1;
        }
    }
    if checked != force_cycles.len() {
        return Err(format!(
            "metrics: {checked} stall entries for {} run records",
            force_cycles.len()
        ));
    }
    println!("metrics ok: {checked} (node, step) stall breakdowns match force_cycles exactly");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [trace_path, metrics_path] = args.as_slice() else {
        eprintln!("usage: tracecheck <run.trace.json> <run.metrics.json>");
        return ExitCode::from(2);
    };
    let trace = match load(trace_path) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    let metrics = match load(metrics_path) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    if let Err(e) = check_chrome(&trace) {
        return fail(&e);
    }
    if let Err(e) = check_metrics(&metrics) {
        return fail(&e);
    }
    ExitCode::SUCCESS
}
