//! `tracecheck <run.trace.json> <run.metrics.json>` — CI validator for
//! the flight-recorder exports.
//!
//! Checks, on files produced by `fasda-cli run --trace-out ...
//! --metrics-out ...`:
//!
//! * both documents parse with the fasda-trace JSON reader and survive
//!   a parse → render → parse round-trip unchanged;
//! * every Chrome trace event carries the mandatory `ph`/`pid` fields
//!   (and `ts` for everything but metadata), and every node opens at
//!   least one `force` phase span;
//! * in the metrics document, each (node, step) stall breakdown sums
//!   exactly to that record's `force_cycles` — the attribution
//!   invariant `productive + Σ causes == force_cycles` — with every
//!   known stall-cause key (including the reliability layer's
//!   `retransmit` / `wait-ack` classes) present and summing exactly to
//!   `idle`.
//!
//! With `--beats beats.jsonl` the heartbeat stream from
//! `--heartbeat-out` is also validated: every line parses, record
//! types are `beat`/`fleet`/`final`, beat counters strictly increase,
//! steps and cycle counters never decrease, at most one `final` record
//! closes the stream — and when the metrics document carries an `obs`
//! section, the final record's live totals must equal it exactly (the
//! live-vs-post-hoc identity the CI gates). `--prom scrape.prom`
//! parses the Prometheus text exposition file.
//!
//! Exits non-zero with a message on the first violation.

use fasda_obs::parse_jsonl;
use fasda_trace::{Json, StallCause};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("tracecheck: {msg}");
    ExitCode::FAILURE
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: parse error: {e}"))?;
    let again =
        Json::parse(&doc.pretty()).map_err(|e| format!("{path}: re-parse error: {e}"))?;
    if again != doc {
        return Err(format!("{path}: render/parse round-trip changed the document"));
    }
    Ok(doc)
}

fn check_chrome(doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .ok_or("trace: no traceEvents array")?
        .items();
    if events.is_empty() {
        return Err("trace: traceEvents is empty".into());
    }
    let mut force_spans: BTreeMap<i64, u64> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trace: event {i} has no ph"))?;
        let pid = e
            .get("pid")
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("trace: event {i} has no pid"))?;
        if ph != "M" && e.get("ts").and_then(Json::as_f64).is_none() {
            return Err(format!("trace: {ph} event {i} has no ts"));
        }
        if ph == "B" && e.get("name").and_then(Json::as_str) == Some("force") {
            *force_spans.entry(pid).or_default() += 1;
        }
    }
    let nodes = doc
        .get("otherData")
        .and_then(|o| o.get("nodes"))
        .and_then(Json::as_i64)
        .ok_or("trace: otherData.nodes missing")?;
    for node in 0..nodes {
        if !force_spans.contains_key(&node) {
            return Err(format!("trace: node {node} opened no force-phase span"));
        }
    }
    println!(
        "trace ok: {} events, {} nodes with force spans",
        events.len(),
        force_spans.len()
    );
    Ok(())
}

fn check_metrics(doc: &Json) -> Result<(), String> {
    let run = doc.get("run").ok_or("metrics: no run section")?;
    let records = run.get("records").ok_or("metrics: run.records missing")?.items();
    if records.is_empty() {
        return Err("metrics: run.records is empty".into());
    }
    // force_cycles per (node, step), from the run section.
    let mut force_cycles: BTreeMap<(i64, i64), i64> = BTreeMap::new();
    for r in records {
        let node = r.get("node").and_then(Json::as_i64).ok_or("metrics: record node")?;
        let step = r.get("step").and_then(Json::as_i64).ok_or("metrics: record step")?;
        let fc = r
            .get("force_cycles")
            .and_then(Json::as_i64)
            .ok_or("metrics: record force_cycles")?;
        force_cycles.insert((node, step), fc);
    }
    let Some(stalls) = doc.get("stalls") else {
        println!("metrics ok: {} records (no stall section — tracing off)", force_cycles.len());
        return Ok(());
    };
    let mut checked = 0usize;
    for n in stalls.get("nodes").ok_or("metrics: stalls.nodes")?.items() {
        let node = n.get("node").and_then(Json::as_i64).ok_or("metrics: stall node id")?;
        for s in n.get("steps").ok_or("metrics: stall steps")?.items() {
            let step = s.get("step").and_then(Json::as_i64).ok_or("metrics: stall step id")?;
            let total = s.get("total").and_then(Json::as_i64).ok_or("metrics: stall total")?;
            let productive = s
                .get("productive")
                .and_then(Json::as_i64)
                .ok_or("metrics: stall productive")?;
            let idle = s.get("idle").and_then(Json::as_i64).ok_or("metrics: stall idle")?;
            if productive + idle != total {
                return Err(format!(
                    "metrics: node {node} step {step}: productive {productive} + idle {idle} != total {total}"
                ));
            }
            // Per-cause attribution: every cause key (including the
            // reliability layer's retransmit / wait-ack) must be present
            // and the breakdown must sum exactly to `idle`.
            let mut causes = 0i64;
            for cause in StallCause::ALL {
                let v = s.get(cause.label()).and_then(Json::as_i64).ok_or_else(|| {
                    format!(
                        "metrics: node {node} step {step}: missing stall cause `{}`",
                        cause.label()
                    )
                })?;
                causes += v;
            }
            if causes != idle {
                return Err(format!(
                    "metrics: node {node} step {step}: Σ causes {causes} != idle {idle}"
                ));
            }
            let want = force_cycles.get(&(node, step)).copied().ok_or_else(|| {
                format!("metrics: stall entry for node {node} step {step} has no run record")
            })?;
            if total != want {
                return Err(format!(
                    "metrics: node {node} step {step}: stall total {total} != force_cycles {want}"
                ));
            }
            checked += 1;
        }
    }
    if checked != force_cycles.len() {
        return Err(format!(
            "metrics: {checked} stall entries for {} run records",
            force_cycles.len()
        ));
    }
    println!("metrics ok: {checked} (node, step) stall breakdowns match force_cycles exactly");
    Ok(())
}

/// Validate a heartbeat JSONL stream (and, when the metrics document
/// carries an `obs` section, the live-vs-post-hoc totals identity).
fn check_beats(path: &str, metrics: &Json) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let records = parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
    if records.is_empty() {
        return Err(format!("{path}: heartbeat stream is empty"));
    }
    let mut last_beat = 0i64;
    let mut last_step = -1i64;
    let mut last_cycles = -1i64;
    let mut finals = 0usize;
    for (i, rec) in records.iter().enumerate() {
        let kind = rec
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: record {i} has no type"))?;
        match kind {
            "beat" | "fleet" => {
                if finals > 0 {
                    return Err(format!("{path}: record {i}: {kind} after final"));
                }
                let beat = rec
                    .get("beat")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| format!("{path}: record {i} has no beat counter"))?;
                if beat <= last_beat {
                    return Err(format!(
                        "{path}: record {i}: beat {beat} not after {last_beat}"
                    ));
                }
                last_beat = beat;
                let step = rec
                    .get("step")
                    .and_then(Json::as_i64)
                    .ok_or_else(|| format!("{path}: record {i} has no step"))?;
                if step < last_step {
                    return Err(format!("{path}: record {i}: step went backwards"));
                }
                last_step = step;
                if let Some(cycles) = rec
                    .get("counters")
                    .and_then(|c| c.get("cycles"))
                    .and_then(Json::as_i64)
                {
                    if cycles < last_cycles {
                        return Err(format!("{path}: record {i}: cycle counter decreased"));
                    }
                    last_cycles = cycles;
                }
            }
            "final" => {
                finals += 1;
                if i + 1 != records.len() {
                    return Err(format!("{path}: final record is not last"));
                }
                if let Some(obs) = metrics.get("obs") {
                    for section in ["counters", "hists"] {
                        if rec.get(section) != obs.get(section) {
                            return Err(format!(
                                "{path}: final record {section} differ from the metrics \
                                 document's obs section — live totals drifted from post-hoc"
                            ));
                        }
                    }
                }
            }
            other => return Err(format!("{path}: record {i}: unknown type {other:?}")),
        }
    }
    println!(
        "beats ok: {} records ({} final{})",
        records.len(),
        finals,
        if metrics.get("obs").is_some() { ", live totals match metrics obs section" } else { "" }
    );
    Ok(())
}

/// Parse a Prometheus text-exposition scrape file: comments or
/// `name[{labels}] value` lines, `fasda`-prefixed names, float values.
fn check_prom(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut samples = 0usize;
    for (i, line) in text.lines().enumerate().filter(|(_, l)| !l.is_empty()) {
        if line.starts_with("# TYPE ") || line.starts_with("# HELP ") {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("{path}: line {}: no sample value", i + 1))?;
        if !name.starts_with("fasda") {
            return Err(format!("{path}: line {}: unprefixed metric {name}", i + 1));
        }
        if let Some(open) = name.find('{') {
            if !name.ends_with('}') {
                return Err(format!("{path}: line {}: unterminated label set", i + 1));
            }
            if name[open + 1..name.len() - 1].is_empty() {
                return Err(format!("{path}: line {}: empty label set", i + 1));
            }
        }
        value
            .parse::<f64>()
            .map_err(|_| format!("{path}: line {}: bad sample value {value:?}", i + 1))?;
        samples += 1;
    }
    if samples == 0 {
        return Err(format!("{path}: scrape file has no samples"));
    }
    println!("prom ok: {samples} samples");
    Ok(())
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut take_opt = |flag: &str| -> Option<String> {
        let i = args.iter().position(|a| a == flag)?;
        if i + 1 >= args.len() {
            return None; // flag stays put → the usage check below fires
        }
        args.remove(i);
        Some(args.remove(i))
    };
    let beats_path = take_opt("--beats");
    let prom_path = take_opt("--prom");
    let [trace_path, metrics_path] = args.as_slice() else {
        eprintln!(
            "usage: tracecheck <run.trace.json> <run.metrics.json> \
             [--beats beats.jsonl] [--prom scrape.prom]"
        );
        return ExitCode::from(2);
    };
    let trace = match load(trace_path) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    let metrics = match load(metrics_path) {
        Ok(d) => d,
        Err(e) => return fail(&e),
    };
    if let Err(e) = check_chrome(&trace) {
        return fail(&e);
    }
    if let Err(e) = check_metrics(&metrics) {
        return fail(&e);
    }
    if let Some(path) = beats_path {
        if let Err(e) = check_beats(&path, &metrics) {
            return fail(&e);
        }
    }
    if let Some(path) = prom_path {
        if let Err(e) = check_prom(&path) {
            return fail(&e);
        }
    }
    ExitCode::SUCCESS
}
