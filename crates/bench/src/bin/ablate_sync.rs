//! Ablation — chained vs bulk synchronization under injected stragglers
//! (paper §4.4, Figs. 12–13).
//!
//! One node is stalled for a fixed number of cycles at the start of every
//! force phase. Bulk synchronization makes every node pay the stall plus
//! the barrier round trip; chained synchronization lets nodes that do not
//! depend on the straggler keep going ("providing them with a head start
//! into the next iteration").
//!
//! Usage: `ablate_sync [--steps N] [--space D]`

use fasda_bench::{engine_from_args, rule, Args};
use fasda_cluster::{Cluster, ClusterConfig, EngineConfig};
use fasda_core::config::ChipConfig;
use fasda_md::space::SimulationSpace;
use fasda_md::workload::WorkloadSpec;
use fasda_net::sync::SyncMode;

fn run(space: SimulationSpace, sync: SyncMode, straggler: Option<(usize, u64)>, steps: u64, engine: &EngineConfig) -> (f64, f64) {
    let sys = WorkloadSpec::paper(space, 0xFA5DA).generate();
    let mut cfg = ClusterConfig::paper(ChipConfig::baseline(), (3, 3, 3));
    cfg.sync = sync;
    cfg.straggler = straggler;
    let mut cluster = Cluster::new(cfg, &sys);
    let report = cluster.run_with(steps, engine);
    (report.cycles_per_step(), report.avg_completion_spread())
}

fn main() {
    let args = Args::parse();
    let steps: u64 = args.get("steps", 4);
    let d: u32 = args.get("space", 6);
    let engine = engine_from_args(&args);
    let space = SimulationSpace::cubic(d);

    println!("FASDA reproduction — ablation: chained vs bulk synchronization");
    println!("space {d}x{d}x{d}, 8 FPGAs, straggler = node 0 stalled per step\n");

    // The paper motivates against host-based barriers ("milliseconds for
    // a single MD iteration"); we use a generous central-FPGA barrier at
    // 2k cycles and a host barrier at 200k cycles (1 ms at 200 MHz).
    let modes: [(&str, SyncMode); 3] = [
        ("chained", SyncMode::Chained),
        ("bulk (central FPGA, 2k cyc)", SyncMode::Bulk { latency: 2_000 }),
        ("bulk (host, 200k cyc ≈ 1 ms)", SyncMode::Bulk { latency: 200_000 }),
    ];

    rule("cycles per step vs injected stall");
    println!("{:<32}{:>12}{:>14}{:>14}", "mode", "stall", "cyc/step", "spread");
    for (label, mode) in modes {
        for stall in [0u64, 5_000, 20_000] {
            let straggler = if stall == 0 { None } else { Some((0usize, stall)) };
            let (cps, spread) = run(space, mode, straggler, steps, &engine);
            println!("{label:<32}{stall:>12}{cps:>14.0}{spread:>14.0}");
        }
    }

    println!("\nreading: under a straggler, chained sync's per-step cost grows by less");
    println!("than the stall (absorbed by overlap), while bulk adds the full stall plus");
    println!("2x the barrier latency; the completion spread shows fast nodes racing ahead.");
}
