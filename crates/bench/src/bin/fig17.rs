//! Figure 17 — Hardware and time utilization of the key components (PR,
//! FR, Filter, PE, MU) for all seven design variants.
//!
//! Usage: `fig17 [--steps N]`

use fasda_bench::{engine_from_args, rule, Args};
use fasda_cluster::{Cluster, ClusterConfig, EngineConfig};
use fasda_core::config::{ChipConfig, DesignVariant};
use fasda_core::geometry::ChipGeometry;
use fasda_core::timed::TimedChip;
use fasda_md::space::SimulationSpace;
use fasda_md::units::UnitSystem;
use fasda_md::workload::WorkloadSpec;
use fasda_sim::StatSet;

const COMPONENTS: [&str; 5] = ["PR", "FR", "Filter", "PE", "MU"];

fn print_row(label: &str, stats: &StatSet, window: u64) {
    print!("{label:<12}");
    for c in COMPONENTS {
        print!(
            "{:>7.1}/{:<6.1}",
            100.0 * stats.hardware_util(c, window),
            100.0 * stats.time_util(c, window)
        );
    }
    println!();
}

fn single(space: SimulationSpace, steps: u64) -> (StatSet, u64) {
    let sys = WorkloadSpec::paper(space, 0xFA5DA).generate();
    let mut chip = TimedChip::new(
        ChipConfig::baseline(),
        ChipGeometry::single_chip(space),
        UnitSystem::PAPER,
        2.0,
    );
    chip.load(&sys);
    let mut window = 0;
    let mut last = None;
    for _ in 0..steps {
        let r = chip.run_timestep();
        window += r.total_cycles();
        last = Some(r.stats);
    }
    // run_timestep resets stats per step; report the last step over its
    // own window.
    let r = last.expect("at least one step");
    (r, window / steps)
}

fn cluster(
    space: SimulationSpace,
    block: (u32, u32, u32),
    variant: DesignVariant,
    steps: u64,
    engine: &EngineConfig,
) -> (StatSet, u64) {
    let sys = WorkloadSpec::paper(space, 0xFA5DA).generate();
    let cfg = ClusterConfig::paper(ChipConfig::variant(variant), block);
    let mut cl = Cluster::new(cfg, &sys);
    let report = cl.run_with(steps, engine);
    (report.stats, report.total_cycles)
}

fn main() {
    let args = Args::parse();
    let steps: u64 = args.get("steps", 2);
    let engine = engine_from_args(&args);

    println!("FASDA reproduction — Figure 17: component utilization");
    println!("cells: hardware-util% / time-util% per component");
    rule("utilization (paper: PE hw 50-60%, PE time ~80%, MU < 5%, PR underused)");
    print!("{:<12}", "design");
    for c in COMPONENTS {
        print!("{c:>10}    ");
    }
    println!();

    let (s, w) = single(SimulationSpace::cubic(3), steps);
    print_row("3x3x3", &s, w);
    for (label, space, fpgas) in [
        ("6x3x3", SimulationSpace::new(6, 3, 3), 2),
        ("6x6x3", SimulationSpace::new(6, 6, 3), 4),
        ("6x6x6", SimulationSpace::cubic(6), 8),
    ] {
        let (s, w) = cluster(space, (3, 3, 3), DesignVariant::A, steps, &engine);
        print_row(&format!("{label} ({fpgas}F)"), &s, w);
    }
    for v in [DesignVariant::A, DesignVariant::B, DesignVariant::C] {
        let (s, w) = cluster(SimulationSpace::cubic(4), (2, 2, 2), v, steps, &engine);
        print_row(&format!("4x4x4-{v:?}"), &s, w);
    }
    println!("\nnote: cluster windows are wall-clock cycles over {steps} step(s), so");
    println!("per-step utilization is diluted by inter-step sync gaps, as on hardware.");
}
