//! Ablation — cell size relative to the cutoff radius (paper Fig. 3).
//!
//! The paper picks the cell edge equal to `Rc` because it is "both the
//! smallest value to maintain only 26 possible neighbor cells and the
//! biggest value for efficient particle pair filtering". This harness
//! quantifies the second half of that sentence: shrinking the cutoff
//! below the cell edge (equivalently, growing the cell beyond `Rc`)
//! leaves the candidate-pair traffic unchanged while the valid fraction
//! collapses — wasted filter work and idle force pipelines.
//!
//! Usage: `ablate_cellsize [--steps N]`

use fasda_bench::{rule, Args};
use fasda_core::config::ChipConfig;
use fasda_core::geometry::ChipGeometry;
use fasda_core::timed::TimedChip;
use fasda_md::space::SimulationSpace;
use fasda_md::units::UnitSystem;
use fasda_md::workload::WorkloadSpec;

fn main() {
    let args = Args::parse();
    let steps: u64 = args.get("steps", 2);
    let space = SimulationSpace::cubic(3);
    let sys = WorkloadSpec::paper(space, 0xFA5DA).generate();

    println!("FASDA reproduction — ablation: cell size vs cutoff (Fig. 3)");
    println!("3x3x3 cells, 64 Na/cell; cutoff swept below the cell edge\n");
    rule("cell/Rc ratio sweep (1.0 = paper design point)");
    println!(
        "{:<12}{:>12}{:>14}{:>14}{:>12}{:>14}",
        "cell/Rc", "cutoff", "valid pairs", "pass rate", "µs/day", "PE hw util"
    );

    for cutoff in [1.0f64, 0.9, 0.8, 0.7, 0.6, 0.5] {
        let mut cfg = ChipConfig::baseline();
        cfg.cutoff_cells = cutoff;
        let mut chip = TimedChip::new(
            cfg,
            ChipGeometry::single_chip(space),
            UnitSystem::PAPER,
            2.0,
        );
        chip.load(&sys);
        let mut cycles = 0u64;
        let mut valid = 0u64;
        let mut comparisons = 0u64;
        let mut pe_util = 0.0;
        for _ in 0..steps {
            let r = chip.run_timestep();
            cycles += r.total_cycles();
            valid += r.valid_pairs;
            comparisons += r.comparisons;
            pe_util = r.stats.hardware_util("PE", r.total_cycles());
        }
        let per_step = cycles as f64 / steps as f64;
        println!(
            "{:<12.2}{:>12.2}{:>14}{:>13.1}%{:>12.2}{:>13.1}%",
            1.0 / cutoff,
            cutoff,
            valid / steps,
            100.0 * valid as f64 / comparisons.max(1) as f64,
            cfg.hw.us_per_day(per_step, 2.0),
            100.0 * pe_util
        );
    }

    println!("\nreading: candidate traffic (filter comparisons) is fixed by the cell");
    println!("geometry, so a cell edge 2x the cutoff cuts the pass rate ~8x (r³) and");
    println!("leaves the force pipelines starving — Fig. 3's 'more invalid pairs to");
    println!("filter'. Physics note: a smaller cutoff evaluates a smaller force");
    println!("sphere; this sweep isolates the *efficiency* effect at fixed hardware.");
}
