//! # fasda-bench
//!
//! Harnesses that regenerate every table and figure of the FASDA paper's
//! evaluation (§5), plus ablation studies. Each harness is a binary:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `fig16` | Fig. 16 — simulation rate (µs/day), weak + strong scaling, FPGA vs CPU vs GPU |
//! | `fig17` | Fig. 17 — hardware/time utilization of PR, FR, Filter, PE, MU |
//! | `fig18` | Fig. 18 — communication bandwidth demand and per-peer breakdown |
//! | `table1` | Table 1 — FPGA resource utilization (model vs paper) |
//! | `fig19` | Fig. 19 — energy relative error vs the f64 reference |
//! | `ablate_sync` | §4.4 — chained vs bulk synchronization under stragglers |
//! | `ablate_interp` | §3.4 — interpolation table precision sweep |
//! | `ablate_filters` | §5.3 — filters-per-pipeline sweep |
//!
//! Criterion micro-benchmarks live in `benches/`.

use fasda_cluster::EngineConfig;
use std::collections::HashMap;

pub mod kernels;

/// Tiny `--key value` / `--flag` argument parser (no external deps).
pub struct Args {
    flags: Vec<String>,
    values: HashMap<String, String>,
}

impl Args {
    /// Parse `std::env::args()`.
    pub fn parse() -> Self {
        let mut flags = Vec::new();
        let mut values = HashMap::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    values.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    flags.push(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { flags, values }
    }

    /// Value of `--key`, parsed.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.values
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Presence of `--flag`.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

/// `--serial` / `--threads N` → cycle-engine configuration shared by the
/// cluster-driving harnesses. Every choice produces bit-identical
/// reports; only wall-clock time differs.
pub fn engine_from_args(args: &Args) -> EngineConfig {
    if args.flag("serial") {
        return EngineConfig::serial();
    }
    let mut e = EngineConfig::parallel();
    let threads = args.get("threads", 0usize);
    if threads > 0 {
        e = e.with_threads(threads);
    }
    e
}

/// Print a separator line for harness output.
pub fn rule(title: &str) {
    println!("\n=== {title} {}", "=".repeat(66usize.saturating_sub(title.len())));
}
