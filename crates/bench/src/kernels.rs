//! Shared datapath-kernel throughput measurement.
//!
//! One measurement routine used by both `datapathbench` (per-kernel
//! report + the `--smoke` perf-regression gate) and `enginebench` (the
//! `datapath_kernels` section of `BENCH_engine.json`): the scalar
//! `filter()`/`force()` walk vs the fused SIMD filter→force kernel
//! (`ForceDatapath::fused_scan_into`) over the fig16-density 64-particle
//! home cell.
//!
//! Absolute throughput numbers move with the host, so the regression
//! gate compares the **fused/scalar ratio** — both kernels run the same
//! arithmetic on the same machine in the same process, which cancels
//! machine speed and leaves only the kernels' relative shape (the thing
//! a vectorization regression actually changes).

use fasda_arith::fixed::FixVec3;
use fasda_arith::interp::TableConfig;
use fasda_core::datapath::{ForceDatapath, HomeSoa, ScanHit};
use fasda_md::element::{Element, PairTable};
use fasda_md::units::UnitSystem;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput of the two scan kernels over the reference home cell.
pub struct KernelThroughput {
    /// Particles in the scanned home cell.
    pub home_len: usize,
    /// Filter hits per scan (the mix the adjacent-cell neighbour sees).
    pub hits_per_scan: usize,
    /// Pairs filtered per second by the scalar `filter()`+`force()` walk.
    pub scalar_pairs_per_sec: f64,
    /// Pairs filtered per second by the fused filter→force kernel.
    pub fused_pairs_per_sec: f64,
    /// Forces evaluated per second by the scalar walk.
    pub scalar_forces_per_sec: f64,
    /// Forces evaluated per second by the fused kernel.
    pub fused_forces_per_sec: f64,
}

impl KernelThroughput {
    /// Fused-over-scalar pairs/sec ratio — the machine-speed-independent
    /// quantity the regression gate tracks.
    pub fn fused_vs_scalar(&self) -> f64 {
        self.fused_pairs_per_sec / self.scalar_pairs_per_sec
    }
}

/// Deterministic jittered home cell of `n` particles (fig16 density is
/// 64/cell) concatenated at the home RCID.
pub fn reference_home(n: usize) -> (Vec<Element>, Vec<FixVec3>) {
    let mut state = 0x5DA_F00Du64;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    let elems = (0..n).map(|i| Element::ALL[i % Element::ALL.len()]).collect();
    let concat = (0..n)
        .map(|_| ForceDatapath::concat((2, 2, 2), FixVec3::from_f64(rnd(), rnd(), rnd())))
        .collect();
    (elems, concat)
}

/// The adjacent-cell neighbour every kernel scans against: a realistic
/// mix of hits and misses.
pub fn reference_neighbour() -> FixVec3 {
    ForceDatapath::concat((3, 2, 2), FixVec3::from_f64(0.12, 0.43, 0.77))
}

/// Time one batch of `iters` calls of `f`, returning seconds/iter.
fn time_batch<R>(iters: u64, f: &mut impl FnMut() -> R) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    t.elapsed().as_secs_f64() / iters as f64
}

/// Measure both scan kernels over the reference 64-particle cell.
/// `min` is the total measurement budget.
///
/// The reference host is a 1-core VM whose hypervisor steals the core
/// for tens of milliseconds at a time, so a single timed run of each
/// kernel can be off by 40%. The kernels are instead timed in short
/// **interleaved rounds** (scalar batch, fused batch, scalar batch, …)
/// and each keeps its *minimum* seconds/iter across rounds: a steal
/// window inflates one batch of one round, and the minimum discards it,
/// while interleaving guarantees neither kernel systematically gets the
/// colder machine.
pub fn measure_kernels(min: Duration) -> KernelThroughput {
    let dp = ForceDatapath::new(&PairTable::new(UnitSystem::PAPER), TableConfig::PAPER);
    let (elems, concat) = reference_home(64);
    let mut soa = HomeSoa::new();
    soa.rebuild(&elems, &concat);
    let nbr = reference_neighbour();
    let nbr_elem = Element::Na;

    let mut hits: Vec<ScanHit> = Vec::with_capacity(64);
    dp.fused_scan_into(&soa, nbr, nbr_elem, 0, &mut hits);
    let hits_per_scan = hits.len();

    let mut scalar = || {
        let mut acc = [0.0f32; 3];
        for i in 0..concat.len() {
            if let Some(pair) = dp.filter(concat[i], nbr) {
                let f = dp.force(elems[i], nbr_elem, pair);
                for k in 0..3 {
                    acc[k] += f[k];
                }
            }
        }
        acc
    };
    let mut fused = || {
        hits.clear();
        dp.fused_scan_into(&soa, nbr, nbr_elem, 0, &mut hits);
        let mut acc = [0.0f32; 3];
        for h in &hits {
            for (a, f) in acc.iter_mut().zip(h.force) {
                *a += f;
            }
        }
        acc
    };

    // Calibrate a batch size on the scalar kernel so each of the
    // ROUNDS×2 batches takes roughly min/(ROUNDS×2)·(3/4) — a quarter
    // of the budget warms the calibration itself.
    const ROUNDS: u32 = 8;
    let t = Instant::now();
    let mut calib = 0u64;
    while t.elapsed() < min / 4 {
        black_box(scalar());
        calib += 1;
    }
    let batch = (calib * 3 / (u64::from(ROUNDS) * 2)).max(1);

    let mut scalar_s = f64::INFINITY;
    let mut fused_s = f64::INFINITY;
    for _ in 0..ROUNDS {
        scalar_s = scalar_s.min(time_batch(batch, &mut scalar));
        fused_s = fused_s.min(time_batch(batch, &mut fused));
    }

    let n = concat.len() as f64;
    let h = hits_per_scan as f64;
    KernelThroughput {
        home_len: concat.len(),
        hits_per_scan,
        scalar_pairs_per_sec: n / scalar_s,
        fused_pairs_per_sec: n / fused_s,
        scalar_forces_per_sec: h / scalar_s,
        fused_forces_per_sec: h / fused_s,
    }
}
