//! # fasda-baseline
//!
//! The comparison systems of the paper's Fig. 16 — stand-ins for
//! "OpenMM, one of the state-of-the-art MD software packages" running on
//! Xeon CPUs and Nvidia GPUs (§5.1):
//!
//! * [`cpu::ThreadedCpuEngine`] — a real, measured multithreaded LJ-only
//!   MD engine (cell lists, full-shell per-particle parallelism over a
//!   rayon pool of configurable width). It genuinely exhibits the
//!   strong-scaling behaviour Fig. 16 reports for CPUs: near-linear to a
//!   few threads, then degradation as per-thread work shrinks below the
//!   per-step coordination cost.
//! * [`gpu::GpuModel`] — an **analytic performance model** for A100/V100
//!   GPUs. No GPU exists in this reproduction environment; the model's
//!   constants are *calibrated to the paper's reported ratios* (negative
//!   strong scaling of −26%/−49% for 2/4 GPUs, the 4³→8³→10³ efficiency
//!   curve) and are printed by every harness that uses them so they can
//!   never be mistaken for measurements. See `DESIGN.md` for the
//!   substitution rationale.

pub mod cpu;
pub mod gpu;

pub use cpu::ThreadedCpuEngine;
pub use gpu::{GpuKind, GpuModel};
