//! Multithreaded CPU reference engine (OpenMM-CPU stand-in).
//!
//! LJ-only force field, cell lists rebuilt every step, full-shell
//! per-particle parallelism: each particle scans its own cell and all 26
//! neighbours, computing its force independently (every pair is evaluated
//! twice — the standard trade of arithmetic for lock-freedom that
//! throughput-oriented MD engines make). The thread count is explicit so
//! the Fig. 16 CPU sweep can measure 1…32 threads.

use fasda_md::celllist::{CellList, NEIGHBOR_OFFSETS};
use fasda_md::element::PairTable;
use fasda_md::integrator::Integrator;
use fasda_md::system::ParticleSystem;
use fasda_md::vec3::Vec3;
use rayon::prelude::*;
use std::time::Instant;

/// A thread-pooled LJ engine.
pub struct ThreadedCpuEngine {
    table: PairTable,
    pool: rayon::ThreadPool,
    threads: usize,
    cutoff_sq: f64,
}

impl ThreadedCpuEngine {
    /// Build an engine with a dedicated pool of `threads` workers.
    pub fn new(table: PairTable, threads: usize) -> Self {
        assert!(threads >= 1);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        ThreadedCpuEngine {
            table,
            pool,
            threads,
            cutoff_sq: 1.0,
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Compute all forces (full-shell, parallel over particles).
    /// Returns the total potential energy, kcal/mol.
    pub fn compute_forces(&self, sys: &mut ParticleSystem) -> f64 {
        let cl = CellList::build(sys);
        let space = sys.space;
        let table = &self.table;
        let cutoff_sq = self.cutoff_sq;
        let pos = &sys.pos;
        let elem = &sys.element;

        let results: Vec<(Vec3, f64)> = self.pool.install(|| {
            (0..pos.len())
                .into_par_iter()
                .map(|i| {
                    let pi = pos[i];
                    let ei = elem[i];
                    let home = space.cell_of(pi);
                    let mut f = Vec3::ZERO;
                    let mut pe = 0.0;
                    let mut visit = |cid: u32| {
                        for &j in cl.cell(cid) {
                            if j as usize == i {
                                continue;
                            }
                            let dr = space.min_image(pi, pos[j as usize]);
                            let r2 = dr.norm_sq();
                            if r2 < cutoff_sq {
                                f += dr * table.force_scale(ei, elem[j as usize], r2);
                                pe += table.potential(ei, elem[j as usize], r2);
                            }
                        }
                    };
                    visit(space.cell_id(home));
                    for off in NEIGHBOR_OFFSETS {
                        visit(space.cell_id(space.wrap_coord(home.offset(off))));
                    }
                    (f, pe)
                })
                .collect()
        });
        let mut pe_total = 0.0;
        for (i, (f, pe)) in results.into_iter().enumerate() {
            sys.force[i] = f;
            pe_total += pe;
        }
        // every pair is visited from both ends in the full shell
        pe_total / 2.0
    }

    /// One leapfrog timestep; returns wall-clock seconds spent.
    pub fn step(&self, sys: &mut ParticleSystem, integ: &Integrator) -> f64 {
        let t = Instant::now();
        self.compute_forces(sys);
        integ.leapfrog_step(sys);
        t.elapsed().as_secs_f64()
    }

    /// Measure average seconds per step over `steps` timesteps (after one
    /// warmup step).
    pub fn measure(&self, sys: &mut ParticleSystem, integ: &Integrator, steps: usize) -> f64 {
        self.step(sys, integ); // warmup
        let t = Instant::now();
        for _ in 0..steps {
            self.compute_forces(sys);
            integ.leapfrog_step(sys);
        }
        t.elapsed().as_secs_f64() / steps as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasda_md::element::Element;
    use fasda_md::engine::{CellListEngine, ForceEngine};
    use fasda_md::space::SimulationSpace;
    use fasda_md::units::UnitSystem;
    use fasda_md::workload::{Placement, WorkloadSpec};

    fn workload(seed: u64) -> ParticleSystem {
        WorkloadSpec {
            space: SimulationSpace::cubic(3),
            per_cell: 8,
            placement: Placement::JitteredLattice { jitter: 0.06 },
            temperature_k: 100.0,
            seed,
            element: Element::Na,
        }
        .generate()
    }

    #[test]
    fn matches_halfshell_reference() {
        let mut a = workload(31);
        let mut b = a.clone();
        let table = PairTable::new(UnitSystem::PAPER);
        let pe_ref = CellListEngine::new(table.clone()).compute_forces(&mut a);
        let eng = ThreadedCpuEngine::new(table, 2);
        let pe_par = eng.compute_forces(&mut b);
        assert!(
            (pe_ref - pe_par).abs() < 1e-9 * pe_ref.abs().max(1.0),
            "PE {pe_ref} vs {pe_par}"
        );
        for i in 0..a.len() {
            assert!(
                (a.force[i] - b.force[i]).max_abs() < 1e-9,
                "force mismatch at {i}"
            );
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut a = workload(32);
        let mut b = a.clone();
        let table = PairTable::new(UnitSystem::PAPER);
        ThreadedCpuEngine::new(table.clone(), 1).compute_forces(&mut a);
        ThreadedCpuEngine::new(table, 4).compute_forces(&mut b);
        for i in 0..a.len() {
            assert_eq!(a.force[i], b.force[i], "thread count changed physics");
        }
    }

    #[test]
    fn step_advances_and_times() {
        let mut sys = workload(33);
        let table = PairTable::new(UnitSystem::PAPER);
        let eng = ThreadedCpuEngine::new(table, 2);
        let p0 = sys.pos.clone();
        let secs = eng.step(&mut sys, &Integrator::PAPER);
        assert!(secs > 0.0);
        assert!(sys.pos.iter().zip(&p0).any(|(a, b)| a != b), "nothing moved");
    }
}
