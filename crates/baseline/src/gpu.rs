//! Analytic GPU performance model (A100 / V100 OpenMM stand-in).
//!
//! **No GPU exists in this reproduction environment.** This model
//! replaces the measured OpenMM-CUDA runs of Fig. 16 with an affine
//! per-step cost plus a multi-GPU synchronization term:
//!
//! ```text
//! t_step(N, g) = T0 + (g − 1)·T_SYNC + N / (R · g)
//! ```
//!
//! * `T0` — fixed per-step cost (kernel launches, host synchronization,
//!   neighbour-list bookkeeping). Dominates at small N, producing the
//!   paper's observation that GPU efficiency *grows* with workload and
//!   that small-molecule systems cannot saturate a GPU.
//! * `T_SYNC` — added cost per extra GPU (NVLink synchronization every
//!   timestep). Produces the paper's **negative strong scaling**: −26%
//!   for 2 GPUs and −49% for 4 GPUs on the 4×4×4 space.
//! * `R` — saturated particle throughput.
//!
//! The constants below were **calibrated once against the ratios the
//! paper reports** (not measured): 2-GPU/1-GPU = 0.74, 4-GPU/1-GPU =
//! 0.51, the 4³→8³ rate drop of ~60%, the 8³→10³ halving, and the
//! 4.67× FPGA-vs-best-GPU headline. Every harness that consumes this
//! model prints the constants alongside its results.

use serde::{Deserialize, Serialize};

/// GPU device classes of the paper's testbed (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GpuKind {
    /// Nvidia A100-40GB (up to 2, NVLink).
    A100,
    /// Nvidia V100-16GB (up to 4, all-to-all NVLink).
    V100,
}

impl GpuKind {
    /// Saturated LJ throughput, particles per second (calibrated).
    pub fn particles_per_second(self) -> f64 {
        match self {
            GpuKind::A100 => 2.4e8,
            GpuKind::V100 => 1.45e8,
        }
    }

    /// Fixed per-step overhead, seconds (calibrated).
    pub fn step_overhead(self) -> f64 {
        match self {
            GpuKind::A100 => 58.0e-6,
            GpuKind::V100 => 62.0e-6,
        }
    }

    /// Per-extra-GPU synchronization cost, seconds (calibrated).
    pub fn sync_per_gpu(self) -> f64 {
        match self {
            GpuKind::A100 => 30.0e-6,
            GpuKind::V100 => 35.0e-6,
        }
    }

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            GpuKind::A100 => "A100",
            GpuKind::V100 => "V100",
        }
    }
}

/// The analytic model for `gpus` devices of one kind.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuModel {
    /// Device class.
    pub kind: GpuKind,
    /// Device count.
    pub gpus: u32,
}

impl GpuModel {
    /// Build a model; the paper uses up to 2×A100 or 4×V100.
    pub fn new(kind: GpuKind, gpus: u32) -> Self {
        assert!(gpus >= 1);
        let max = match kind {
            GpuKind::A100 => 2,
            GpuKind::V100 => 4,
        };
        assert!(gpus <= max, "{} supports up to {max} devices", kind.label());
        GpuModel { kind, gpus }
    }

    /// Modeled seconds per timestep for `n` particles.
    pub fn seconds_per_step(&self, n: usize) -> f64 {
        let k = self.kind;
        k.step_overhead()
            + (self.gpus - 1) as f64 * k.sync_per_gpu()
            + n as f64 / (k.particles_per_second() * self.gpus as f64)
    }

    /// Modeled simulation rate in µs/day for a `dt_fs` timestep.
    pub fn us_per_day(&self, n: usize, dt_fs: f64) -> f64 {
        fasda_md::units::UnitSystem::us_per_day(dt_fs, self.seconds_per_step(n))
    }

    /// One-line disclosure of the calibrated constants, for harness
    /// output.
    pub fn describe(&self) -> String {
        let k = self.kind;
        format!(
            "{}x{} model (CALIBRATED, not measured): T0={:.0}us, Tsync={:.0}us/extra-GPU, R={:.2e} particles/s",
            self.gpus,
            k.label(),
            k.step_overhead() * 1e6,
            k.sync_per_gpu() * 1e6,
            k.particles_per_second()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N_4CUBE: usize = 64 * 64; // 4³ cells × 64

    #[test]
    fn negative_strong_scaling_matches_paper_ratios() {
        // paper §5.2: "2 GPUs and 4 GPUs result in 26% and 49%
        // performance loss respectively compared to 1 GPU"
        let r1 = GpuModel::new(GpuKind::V100, 1).us_per_day(N_4CUBE, 2.0);
        let r2 = GpuModel::new(GpuKind::V100, 2).us_per_day(N_4CUBE, 2.0);
        let r4 = GpuModel::new(GpuKind::V100, 4).us_per_day(N_4CUBE, 2.0);
        let loss2 = 1.0 - r2 / r1;
        let loss4 = 1.0 - r4 / r1;
        assert!((loss2 - 0.26).abs() < 0.10, "2-GPU loss {loss2:.2}");
        assert!((loss4 - 0.49).abs() < 0.12, "4-GPU loss {loss4:.2}");
    }

    #[test]
    fn efficiency_grows_with_workload() {
        // paper §5.2: 4³ → 8³ (8× particles) costs only ~60% of the rate
        let m = GpuModel::new(GpuKind::A100, 1);
        let r4 = m.us_per_day(4096, 2.0);
        let r8 = m.us_per_day(32768, 2.0);
        let drop = 1.0 - r8 / r4;
        assert!(
            (0.45..0.80).contains(&drop),
            "4³→8³ rate drop {drop:.2} out of band"
        );
        // 8³ → 10³ is near-proportional (GPU saturated)
        let r10 = m.us_per_day(64000, 2.0);
        let ratio = r8 / r10;
        let workload_ratio = 64000.0 / 32768.0;
        assert!(
            (ratio / workload_ratio - 1.0).abs() < 0.35,
            "saturated scaling ratio {ratio:.2} vs workload {workload_ratio:.2}"
        );
    }

    #[test]
    fn single_gpu_rate_in_papers_regime() {
        // best GPU on 4³ should land in the low single-digit µs/day so
        // the FPGA's ~12 µs/day gives the ~4.67× headline.
        let r = GpuModel::new(GpuKind::A100, 1).us_per_day(N_4CUBE, 2.0);
        assert!((1.0..5.0).contains(&r), "A100 4³ rate {r:.2} µs/day");
    }

    #[test]
    #[should_panic(expected = "supports up to 2")]
    fn a100_limited_to_two() {
        GpuModel::new(GpuKind::A100, 3);
    }

    #[test]
    fn describe_discloses_calibration() {
        let d = GpuModel::new(GpuKind::A100, 2).describe();
        assert!(d.contains("CALIBRATED"));
    }
}
