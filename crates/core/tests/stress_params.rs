//! Stress tests of the timed model's backpressure and EX-node paths
//! under extreme (but legal) hardware parameters: tiny FIFOs force
//! flits to spin on the rings and stations to stall, which must change
//! timing but never physics.

use fasda_arith::interp::TableConfig;
use fasda_core::config::ChipConfig;
use fasda_core::functional::FunctionalChip;
use fasda_core::geometry::{ChipCoord, ChipGeometry};
use fasda_core::timed::TimedChip;
use fasda_md::element::Element;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::units::UnitSystem;
use fasda_md::workload::{Placement, WorkloadSpec};

fn workload(seed: u64) -> ParticleSystem {
    WorkloadSpec {
        space: SimulationSpace::cubic(3),
        per_cell: 12,
        placement: Placement::JitteredLattice { jitter: 0.06 },
        temperature_k: 200.0,
        seed,
        element: Element::Na,
    }
    .generate()
}

fn run_single(sys: &ParticleSystem, cfg: ChipConfig) -> (ParticleSystem, u64) {
    let mut chip = TimedChip::new(
        cfg,
        ChipGeometry::single_chip(sys.space),
        UnitSystem::PAPER,
        2.0,
    );
    chip.load(sys);
    let r = chip.run_timestep();
    let mut out = sys.clone();
    chip.store_into(&mut out);
    (out, r.total_cycles())
}

fn oracle(sys: &ParticleSystem) -> ParticleSystem {
    let mut f = FunctionalChip::load(sys, TableConfig::PAPER, 2.0);
    f.step();
    f.snapshot()
}

fn assert_same_physics(a: &ParticleSystem, b: &ParticleSystem) {
    for i in 0..a.len() {
        let d = a.space.min_image(a.pos[i], b.pos[i]).max_abs();
        assert!(d < 1e-6, "particle {i} off by {d}");
    }
}

#[test]
fn single_slot_pos_fifo_still_correct() {
    let sys = workload(81);
    let want = oracle(&sys);
    let mut cfg = ChipConfig::baseline();
    cfg.hw.pos_in_fifo_depth = 1; // flits must spin and retry
    let (got, cycles_tiny) = run_single(&sys, cfg);
    assert_same_physics(&got, &want);
    // sanity: the stall costs cycles relative to the default depth
    let (_, cycles_default) = run_single(&sys, ChipConfig::baseline());
    assert!(
        cycles_tiny >= cycles_default,
        "tiny FIFO cannot be faster: {cycles_tiny} vs {cycles_default}"
    );
}

#[test]
fn single_slot_frc_and_pair_fifos_still_correct() {
    let sys = workload(82);
    let want = oracle(&sys);
    let mut cfg = ChipConfig::baseline();
    cfg.hw.frc_out_fifo_depth = 1;
    cfg.hw.pair_fifo_depth = 1; // filters stall on a full pair FIFO
    let (got, _) = run_single(&sys, cfg);
    assert_same_physics(&got, &want);
}

#[test]
fn extreme_pipeline_latency_still_correct() {
    let sys = workload(83);
    let want = oracle(&sys);
    let mut cfg = ChipConfig::baseline();
    cfg.hw.force_pipe_latency = 200;
    cfg.hw.mu_latency = 100;
    let (got, cycles) = run_single(&sys, cfg);
    assert_same_physics(&got, &want);
    assert!(cycles > 300, "latency must be visible in the cycle count");
}

#[test]
fn single_filter_station_still_correct() {
    let sys = workload(84);
    let want = oracle(&sys);
    let mut cfg = ChipConfig::baseline();
    cfg.hw.filters_per_pe = 1;
    let (got, cycles_one) = run_single(&sys, cfg);
    assert_same_physics(&got, &want);
    let (_, cycles_six) = run_single(&sys, ChipConfig::baseline());
    assert!(
        cycles_one > cycles_six * 3,
        "1 filter ({cycles_one}) must be far slower than 6 ({cycles_six})"
    );
}

/// Two chips exchanged by hand at the EX interfaces — the minimal
/// distributed system, without packetizers or a switch. Validates the
/// ingest/drain contracts directly.
#[test]
fn manual_two_chip_exchange_matches_functional() {
    let global = SimulationSpace::new(6, 3, 3);
    let sys = WorkloadSpec {
        space: global,
        per_cell: 3,
        placement: Placement::JitteredLattice { jitter: 0.06 },
        temperature_k: 150.0,
        seed: 85,
        element: Element::Na,
    }
    .generate();

    let mk = |x: u32| {
        let geo = ChipGeometry::new(global, (3, 3, 3), ChipCoord::new(x, 0, 0));
        let mut chip = TimedChip::new(ChipConfig::baseline(), geo, UnitSystem::PAPER, 2.0);
        chip.load(&sys);
        chip
    };
    let mut chips = [mk(0), mk(1)];
    for c in &mut chips {
        c.begin_force_phase();
    }

    // force phase with zero-latency manual exchange
    let mut guard = 0;
    loop {
        let mut all_idle = true;
        for c in &mut chips {
            if !c.force_phase_local_idle() {
                c.step_force_cycle();
                all_idle = false;
            }
        }
        for i in 0..2 {
            let o = 1 - i;
            for (_, f) in chips[i].drain_pos_egress() {
                chips[o].ingest_remote_pos(f);
                all_idle = false;
            }
            for (_, f) in chips[i].drain_frc_egress() {
                chips[o].ingest_remote_frc(f);
                all_idle = false;
            }
        }
        if all_idle
            && chips.iter().all(|c| c.force_phase_local_idle())
            && chips
                .iter()
                .all(|c| c.outstanding_from(ChipCoord::new(0, 0, 0)) == 0)
            && chips
                .iter()
                .all(|c| c.outstanding_from(ChipCoord::new(1, 0, 0)) == 0)
        {
            break;
        }
        guard += 1;
        assert!(guard < 10_000_000, "manual exchange failed to converge");
    }

    // MU phase (migrants exchanged the same way)
    for c in &mut chips {
        c.begin_mu_phase();
    }
    let mut guard = 0;
    loop {
        let mut all_idle = true;
        for c in &mut chips {
            if !c.mu_phase_local_idle() {
                c.step_mu_cycle();
                all_idle = false;
            }
        }
        for i in 0..2 {
            let o = 1 - i;
            for (_, m) in chips[i].drain_mig_egress() {
                chips[o].ingest_remote_mig(m);
                all_idle = false;
            }
        }
        if all_idle && chips.iter().all(|c| c.mu_phase_local_idle()) {
            break;
        }
        guard += 1;
        assert!(guard < 1_000_000, "MU exchange failed to converge");
    }
    for c in &mut chips {
        c.end_mu_phase();
    }

    let mut got = sys.clone();
    for c in &chips {
        c.store_into(&mut got);
    }
    let want = oracle(&sys);
    assert_same_physics(&got, &want);
    assert_eq!(
        chips.iter().map(|c| c.num_particles()).sum::<usize>(),
        sys.len()
    );
}
