//! Integration tests: the cycle-level chip must compute the same physics
//! as the functional model (they share the datapath), and its cycle
//! counts must be in the regime the paper reports.

use fasda_arith::interp::TableConfig;
use fasda_core::config::{ChipConfig, DesignVariant};
use fasda_core::functional::FunctionalChip;
use fasda_core::geometry::ChipGeometry;
use fasda_core::timed::TimedChip;
use fasda_md::element::Element;
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::units::UnitSystem;
use fasda_md::workload::{Placement, WorkloadSpec};

fn workload(per_cell: u32, seed: u64) -> ParticleSystem {
    WorkloadSpec {
        space: SimulationSpace::cubic(3),
        per_cell,
        placement: Placement::JitteredLattice { jitter: 0.05 },
        temperature_k: 150.0,
        seed,
        element: Element::Na,
    }
    .generate()
}

fn run_timed_one_step(sys: &ParticleSystem, cfg: ChipConfig) -> (ParticleSystem, u64, u64) {
    let geo = ChipGeometry::single_chip(sys.space);
    let mut chip = TimedChip::new(cfg, geo, UnitSystem::PAPER, 2.0);
    chip.load(sys);
    assert_eq!(chip.num_particles(), sys.len());
    let report = chip.run_timestep();
    let mut out = sys.clone();
    chip.store_into(&mut out);
    (out, report.force_cycles, report.valid_pairs)
}

#[test]
fn timed_matches_functional_after_one_step() {
    let sys = workload(8, 11);
    // functional step
    let mut func = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
    func.step();
    let f_snap = func.snapshot();
    // timed step
    let (t_snap, _, _) = run_timed_one_step(&sys, ChipConfig::baseline());
    for i in 0..sys.len() {
        let dp = sys.space.min_image(f_snap.pos[i], t_snap.pos[i]).max_abs();
        assert!(
            dp < 1e-6,
            "particle {i} position mismatch by {dp} cells"
        );
        let dv = (f_snap.vel[i] - t_snap.vel[i]).max_abs();
        let vscale = f_snap.vel[i].max_abs().max(1e-6);
        assert!(
            dv < 1e-5 * vscale.max(1.0) + 1e-9,
            "particle {i} velocity mismatch {dv}"
        );
    }
}

#[test]
fn timed_valid_pairs_match_functional() {
    let sys = workload(6, 12);
    let mut func = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
    let stats = func.evaluate_forces();
    let (_, _, valid) = run_timed_one_step(&sys, ChipConfig::baseline());
    assert_eq!(valid, stats.valid_pairs, "same pair set evaluated");
}

#[test]
fn variants_agree_on_physics() {
    // A, B, C must produce identical particle sets; accumulation order
    // differs so compare with f32-rounding tolerance.
    let sys = workload(8, 13);
    let (a, _, pa) = run_timed_one_step(&sys, ChipConfig::variant(DesignVariant::A));
    let (b, _, pb) = run_timed_one_step(&sys, ChipConfig::variant(DesignVariant::B));
    let (c, _, pc) = run_timed_one_step(&sys, ChipConfig::variant(DesignVariant::C));
    assert_eq!(pa, pb);
    assert_eq!(pb, pc);
    for i in 0..sys.len() {
        assert!(sys.space.min_image(a.pos[i], b.pos[i]).max_abs() < 1e-6);
        assert!(sys.space.min_image(a.pos[i], c.pos[i]).max_abs() < 1e-6);
    }
}

#[test]
fn strong_scaling_variants_reduce_cycles() {
    let sys = workload(32, 14);
    let (_, cyc_a, _) = run_timed_one_step(&sys, ChipConfig::variant(DesignVariant::A));
    let (_, cyc_b, _) = run_timed_one_step(&sys, ChipConfig::variant(DesignVariant::B));
    let (_, cyc_c, _) = run_timed_one_step(&sys, ChipConfig::variant(DesignVariant::C));
    assert!(
        (cyc_b as f64) < cyc_a as f64,
        "B ({cyc_b}) must be faster than A ({cyc_a})"
    );
    assert!(
        (cyc_c as f64) < cyc_b as f64,
        "C ({cyc_c}) must be faster than B ({cyc_b})"
    );
    // 3 PEs give close to 3x on filter-bound workloads; allow wide margin
    assert!(
        cyc_a as f64 / cyc_c as f64 > 2.0,
        "A→C speedup {:.2} too small",
        cyc_a as f64 / cyc_c as f64
    );
}

#[test]
fn paper_scale_cycle_count_in_expected_regime() {
    // 3³ cells × 64 particles, 1 PE per cell: the paper reports ~2 µs/day
    // ⇒ ~10-25k cycles per 2 fs step at 200 MHz.
    let sys = workload(64, 15);
    let (_, cycles, valid) = run_timed_one_step(&sys, ChipConfig::baseline());
    assert!(
        (6_000..40_000).contains(&cycles),
        "force cycles {cycles} outside plausible regime"
    );
    // Eq. 3: ~15.5% of candidates pass; candidates/CBB ≈ 13·64·64 + 64·63/2
    let candidates = 27 * (13 * 64 * 64 + 64 * 63 / 2) as u64;
    let rate = valid as f64 / candidates as f64;
    assert!((0.10..0.30).contains(&rate), "pass rate {rate}");
}

#[test]
fn particle_count_and_momentum_conserved_over_steps() {
    let sys = workload(8, 16);
    let geo = ChipGeometry::single_chip(sys.space);
    let mut chip = TimedChip::new(ChipConfig::baseline(), geo, UnitSystem::PAPER, 2.0);
    chip.load(&sys);
    let n = chip.num_particles();
    for _ in 0..5 {
        chip.run_timestep();
        assert_eq!(chip.num_particles(), n);
    }
    let mut out = sys.clone();
    chip.store_into(&mut out);
    assert!(out.validate().is_ok());
    // momentum conserved to f32 accumulation error
    assert!(out.momentum().max_abs() < 1e-2);
}

#[test]
fn parallel_cbbs_bit_identical_to_serial() {
    // CBB fan-out must not change a single bit: same positions,
    // velocities, and cycle counts for any thread count.
    let sys = workload(8, 17);
    let geo = ChipGeometry::single_chip(sys.space);

    let run = |threads: usize| {
        let mut chip = TimedChip::new(ChipConfig::baseline(), geo, UnitSystem::PAPER, 2.0);
        chip.load(&sys);
        chip.set_parallel_cbbs(threads > 1);
        let mut cycles = Vec::new();
        let mut step = || {
            for _ in 0..3 {
                cycles.push(chip.run_timestep().total_cycles());
            }
        };
        if threads > 1 {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("pool");
            pool.install(step);
        } else {
            step();
        }
        let mut out = sys.clone();
        chip.store_into(&mut out);
        (out, cycles)
    };

    let (serial, serial_cycles) = run(1);
    for threads in [2, 4] {
        let (par, par_cycles) = run(threads);
        assert_eq!(serial_cycles, par_cycles, "{threads} threads: cycle drift");
        for i in 0..serial.len() {
            assert_eq!(serial.pos[i], par.pos[i], "{threads} threads: pos[{i}]");
            assert_eq!(serial.vel[i], par.vel[i], "{threads} threads: vel[{i}]");
        }
    }
}
