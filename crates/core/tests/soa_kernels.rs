//! SoA batch kernels vs the scalar reference datapath.
//!
//! The batch entry points (`ForceDatapath::filter_scan_into`,
//! `ForceDatapath::force_batch`) must reproduce the scalar
//! `filter()`/`force()` walk **exactly** — same hit slots, bit-equal
//! fixed-point pair words, bit-equal `f32` force words — over randomized
//! RCID-concatenated positions and element pairs. Tolerance comparisons
//! would hide exactly the class of bug (a reordered fixed-point
//! truncation, an f32 contraction) that breaks the engine's
//! bit-identity guarantee.

use fasda_arith::fixed::{Fix, FixVec3};
use fasda_arith::interp::TableConfig;
use fasda_core::datapath::{ForceDatapath, HomeSoa};
use fasda_md::element::{Element, PairTable};
use fasda_md::units::UnitSystem;
use proptest::prelude::*;

fn dp() -> ForceDatapath {
    ForceDatapath::new(&PairTable::new(UnitSystem::PAPER), TableConfig::PAPER)
}

fn elem(i: u8) -> Element {
    Element::ALL[i as usize % Element::ALL.len()]
}

/// Scalar filter()+force() walk over `home`, the oracle for both batch
/// kernels: the (slot, force) pairs the fused kernel must reproduce
/// bit-for-bit.
fn scalar_walk(
    dp: &ForceDatapath,
    elems: &[Element],
    concat: &[FixVec3],
    nbr: FixVec3,
    nbr_elem: Element,
    scan_from: u16,
) -> Vec<(u16, [f32; 3])> {
    let mut out = Vec::new();
    for i in scan_from as usize..concat.len() {
        if let Some(pair) = dp.filter(concat[i], nbr) {
            out.push((i as u16, dp.force(elems[i], nbr_elem, pair)));
        }
    }
    out
}

/// Assert the fused scan reproduces the scalar walk exactly.
fn assert_fused_matches(
    dp: &ForceDatapath,
    elems: &[Element],
    concat: &[FixVec3],
    nbr: FixVec3,
    nbr_elem: Element,
    scan_from: u16,
) {
    let want = scalar_walk(dp, elems, concat, nbr, nbr_elem, scan_from);
    let mut soa = HomeSoa::new();
    soa.rebuild(elems, concat);
    let mut hits = Vec::new();
    let compared = dp.fused_scan_into(&soa, nbr, nbr_elem, scan_from, &mut hits);
    assert_eq!(
        compared,
        (concat.len() - (scan_from as usize).min(concat.len())) as u64,
        "fused scan must report the scalar comparison count"
    );
    assert_eq!(hits.len(), want.len(), "hit count differs from scalar walk");
    for (hit, (want_slot, want_force)) in hits.iter().zip(&want) {
        assert_eq!(hit.slot, *want_slot);
        #[allow(clippy::needless_range_loop)] // k names the component in the assert message
        for k in 0..3 {
            assert_eq!(
                hit.force[k].to_bits(),
                want_force[k].to_bits(),
                "force component {k} differs at slot {}: {} vs {}",
                hit.slot,
                hit.force[k],
                want_force[k]
            );
        }
    }
}

proptest! {
    /// The batch scan finds exactly the scalar filter's hits, with
    /// bit-equal pair words, and reports the scalar comparison count.
    #[test]
    fn filter_scan_matches_scalar(
        home in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0u8..8), 0..40),
        nbr in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        rcid in (1u8..4, 1u8..4, 1u8..4),
        nbr_elem_idx in 0u8..8,
        scan_seed in 0usize..64,
    ) {
        let dp = dp();
        let elems: Vec<Element> = home.iter().map(|&(_, _, _, e)| elem(e)).collect();
        let concat: Vec<FixVec3> = home
            .iter()
            .map(|&(x, y, z, _)| {
                ForceDatapath::concat((2, 2, 2), FixVec3::from_f64(x, y, z))
            })
            .collect();
        let nbr_concat =
            ForceDatapath::concat(rcid, FixVec3::from_f64(nbr.0, nbr.1, nbr.2));
        let nbr_elem = elem(nbr_elem_idx);
        let scan_from = (scan_seed % (home.len() + 1)) as u16;

        // Scalar reference: one filter() + force() per home slot.
        let mut want_hits = Vec::new();
        let mut want_forces = Vec::new();
        for i in scan_from as usize..home.len() {
            if let Some(pair) = dp.filter(concat[i], nbr_concat) {
                want_forces.push(dp.force(elems[i], nbr_elem, pair));
                want_hits.push((i as u16, pair));
            }
        }

        // Batch kernels over the SoA banks.
        let mut soa = HomeSoa::new();
        soa.rebuild(&elems, &concat);
        let mut hits = Vec::new();
        let compared = dp.filter_scan_into(&soa, nbr_concat, scan_from, &mut hits);
        let mut forces = Vec::new();
        dp.force_batch(&soa.elem, nbr_elem, &hits, &mut forces);

        prop_assert_eq!(compared, (home.len() - scan_from as usize) as u64);
        prop_assert_eq!(hits.len(), want_hits.len());
        for (&(slot, pair), &(want_slot, want_pair)) in hits.iter().zip(&want_hits) {
            prop_assert_eq!(slot, want_slot);
            prop_assert_eq!(pair.r2.to_bits(), want_pair.r2.to_bits());
            prop_assert_eq!(pair.delta.x.to_bits(), want_pair.delta.x.to_bits());
            prop_assert_eq!(pair.delta.y.to_bits(), want_pair.delta.y.to_bits());
            prop_assert_eq!(pair.delta.z.to_bits(), want_pair.delta.z.to_bits());
        }
        prop_assert_eq!(forces.len(), want_forces.len());
        for (f, want) in forces.iter().zip(&want_forces) {
            for k in 0..3 {
                prop_assert_eq!(
                    f[k].to_bits(), want[k].to_bits(),
                    "force component {} differs: {} vs {}", k, f[k], want[k]
                );
            }
        }
    }

    /// The fused filter→force kernel reproduces the scalar
    /// filter()+force() walk bit-for-bit: same hit slots, bit-equal
    /// force words, scalar comparison count.
    #[test]
    fn fused_scan_matches_scalar(
        home in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0u8..8), 0..40),
        nbr in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        rcid in (1u8..4, 1u8..4, 1u8..4),
        nbr_elem_idx in 0u8..8,
        scan_seed in 0usize..64,
    ) {
        let dp = dp();
        let elems: Vec<Element> = home.iter().map(|&(_, _, _, e)| elem(e)).collect();
        let concat: Vec<FixVec3> = home
            .iter()
            .map(|&(x, y, z, _)| {
                ForceDatapath::concat((2, 2, 2), FixVec3::from_f64(x, y, z))
            })
            .collect();
        let nbr_concat =
            ForceDatapath::concat(rcid, FixVec3::from_f64(nbr.0, nbr.1, nbr.2));
        let scan_from = (scan_seed % (home.len() + 1)) as u16;
        assert_fused_matches(&dp, &elems, &concat, nbr_concat, elem(nbr_elem_idx), scan_from);
    }

    /// Rebuilding the SoA banks is a faithful transposition.
    #[test]
    fn soa_rebuild_roundtrips(
        home in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0u8..8), 0..40),
    ) {
        let elems: Vec<Element> = home.iter().map(|&(_, _, _, e)| elem(e)).collect();
        let concat: Vec<FixVec3> = home
            .iter()
            .map(|&(x, y, z, _)| {
                ForceDatapath::concat((2, 2, 2), FixVec3::from_f64(x, y, z))
            })
            .collect();
        let mut soa = HomeSoa::new();
        // Rebuild twice: the second build must fully overwrite the first.
        soa.rebuild(&[], &[]);
        soa.rebuild(&elems, &concat);
        prop_assert_eq!(soa.len(), concat.len());
        prop_assert_eq!(soa.is_empty(), concat.is_empty());
        for i in 0..concat.len() {
            prop_assert_eq!(soa.x[i], concat[i].x.to_bits());
            prop_assert_eq!(soa.y[i], concat[i].y.to_bits());
            prop_assert_eq!(soa.z[i], concat[i].z.to_bits());
            prop_assert_eq!(soa.elem[i], elems[i]);
        }
    }
}

/// Smallest non-negative delta whose DSP-truncating square
/// `(d² >> FRAC_BITS)` lands exactly on `target`, if one exists.
fn delta_for_sq(target: i32) -> Option<i32> {
    let t = i64::from(target);
    let mut d = ((t << 26) as f64).sqrt() as i64;
    while d > 0 && (d * d) >> 26 >= t {
        d -= 1;
    }
    while (d * d) >> 26 < t {
        d += 1;
    }
    ((d * d) >> 26 == t).then_some(d as i32)
}

/// Split a target r² into two per-axis deltas whose truncating squares
/// sum to it exactly. Near the cutoff a single axis cannot always land
/// on the target (consecutive squares step by 2 ulps there), so spill
/// up to 4 ulps onto the second axis.
fn deltas_for_r2(target: i32) -> (i32, i32) {
    for spill in 0..=4 {
        if let (Some(dx), Some(dy)) = (delta_for_sq(target - spill), delta_for_sq(spill)) {
            return (dx, dy);
        }
    }
    panic!("no delta decomposition for r2 bits {target}");
}

/// Boundary pairs: the filter keeps `min_r2 ≤ r² < cutoff_r2`, so the
/// fused kernel must agree with the scalar walk at `r² == min_r2`
/// (kept), one bit below it (rejected), one bit below `cutoff_r2`
/// (kept — this lands in the table's last bin and exercises the
/// below-1.0 f32 clamp), and at `cutoff_r2` exactly (rejected).
#[test]
fn fused_scan_boundary_pairs() {
    let dp = dp();
    let min_bits = Fix::from_f64(TableConfig::PAPER.domain_min()).to_bits();
    let cutoff_bits = Fix::ONE.to_bits();
    let cases = [
        (min_bits, true),
        (min_bits - 1, false),
        (cutoff_bits - 1, true),
        (cutoff_bits, false),
    ];
    let nbr = FixVec3 { x: Fix::from_bits(0), y: Fix::from_bits(0), z: Fix::from_bits(0) };
    for (r2_bits, keep) in cases {
        let (dx, dy) = deltas_for_r2(r2_bits);
        let home = vec![FixVec3 {
            x: Fix::from_bits(dx),
            y: Fix::from_bits(dy),
            z: Fix::from_bits(0),
        }];
        let elems = vec![Element::ALL[0]];

        // The construction itself must land on the boundary bit pattern.
        let pair = dp.filter(home[0], nbr);
        assert_eq!(pair.is_some(), keep, "scalar filter at r2 bits {r2_bits}");
        if let Some(p) = pair {
            assert_eq!(p.r2.to_bits(), r2_bits, "constructed r2 missed its target");
        }
        assert_fused_matches(&dp, &elems, &home, nbr, Element::ALL[1], 0);
    }
}

/// Chunk-tail lengths: the fused kernel walks home in 64-wide chunks,
/// so an empty scan, a one-short chunk, an exact chunk, and a
/// one-element tail must all reproduce the scalar walk.
#[test]
fn fused_scan_chunk_tails() {
    let dp = dp();
    for n in [0usize, 1, 63, 64, 65, 129] {
        let mut state = 0x5DA_F00Du64;
        let mut rng = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let concat: Vec<FixVec3> = (0..n)
            .map(|_| ForceDatapath::concat((2, 2, 2), FixVec3::from_f64(rng(), rng(), rng())))
            .collect();
        let elems: Vec<Element> = (0..n).map(|i| elem(i as u8)).collect();
        let nbr = ForceDatapath::concat((3, 2, 2), FixVec3::from_f64(0.12, 0.43, 0.77));
        for scan_from in [0, n / 2, n] {
            assert_fused_matches(&dp, &elems, &concat, nbr, Element::ALL[2], scan_from as u16);
        }
    }
}
