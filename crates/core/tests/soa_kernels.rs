//! SoA batch kernels vs the scalar reference datapath.
//!
//! The batch entry points (`ForceDatapath::filter_scan_into`,
//! `ForceDatapath::force_batch`) must reproduce the scalar
//! `filter()`/`force()` walk **exactly** — same hit slots, bit-equal
//! fixed-point pair words, bit-equal `f32` force words — over randomized
//! RCID-concatenated positions and element pairs. Tolerance comparisons
//! would hide exactly the class of bug (a reordered fixed-point
//! truncation, an f32 contraction) that breaks the engine's
//! bit-identity guarantee.

use fasda_arith::interp::TableConfig;
use fasda_core::datapath::{ForceDatapath, HomeSoa};
use fasda_md::element::{Element, PairTable};
use fasda_md::units::UnitSystem;
use fasda_arith::fixed::FixVec3;
use proptest::prelude::*;

fn dp() -> ForceDatapath {
    ForceDatapath::new(&PairTable::new(UnitSystem::PAPER), TableConfig::PAPER)
}

fn elem(i: u8) -> Element {
    Element::ALL[i as usize % Element::ALL.len()]
}

proptest! {
    /// The batch scan finds exactly the scalar filter's hits, with
    /// bit-equal pair words, and reports the scalar comparison count.
    #[test]
    fn filter_scan_matches_scalar(
        home in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0u8..8), 0..40),
        nbr in (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0),
        rcid in (1u8..4, 1u8..4, 1u8..4),
        nbr_elem_idx in 0u8..8,
        scan_seed in 0usize..64,
    ) {
        let dp = dp();
        let elems: Vec<Element> = home.iter().map(|&(_, _, _, e)| elem(e)).collect();
        let concat: Vec<FixVec3> = home
            .iter()
            .map(|&(x, y, z, _)| {
                ForceDatapath::concat((2, 2, 2), FixVec3::from_f64(x, y, z))
            })
            .collect();
        let nbr_concat =
            ForceDatapath::concat(rcid, FixVec3::from_f64(nbr.0, nbr.1, nbr.2));
        let nbr_elem = elem(nbr_elem_idx);
        let scan_from = (scan_seed % (home.len() + 1)) as u16;

        // Scalar reference: one filter() + force() per home slot.
        let mut want_hits = Vec::new();
        let mut want_forces = Vec::new();
        for i in scan_from as usize..home.len() {
            if let Some(pair) = dp.filter(concat[i], nbr_concat) {
                want_forces.push(dp.force(elems[i], nbr_elem, pair));
                want_hits.push((i as u16, pair));
            }
        }

        // Batch kernels over the SoA banks.
        let mut soa = HomeSoa::new();
        soa.rebuild(&elems, &concat);
        let mut hits = Vec::new();
        let compared = dp.filter_scan_into(&soa, nbr_concat, scan_from, &mut hits);
        let mut forces = Vec::new();
        dp.force_batch(&soa.elem, nbr_elem, &hits, &mut forces);

        prop_assert_eq!(compared, (home.len() - scan_from as usize) as u64);
        prop_assert_eq!(hits.len(), want_hits.len());
        for (&(slot, pair), &(want_slot, want_pair)) in hits.iter().zip(&want_hits) {
            prop_assert_eq!(slot, want_slot);
            prop_assert_eq!(pair.r2.to_bits(), want_pair.r2.to_bits());
            prop_assert_eq!(pair.delta.x.to_bits(), want_pair.delta.x.to_bits());
            prop_assert_eq!(pair.delta.y.to_bits(), want_pair.delta.y.to_bits());
            prop_assert_eq!(pair.delta.z.to_bits(), want_pair.delta.z.to_bits());
        }
        prop_assert_eq!(forces.len(), want_forces.len());
        for (f, want) in forces.iter().zip(&want_forces) {
            for k in 0..3 {
                prop_assert_eq!(
                    f[k].to_bits(), want[k].to_bits(),
                    "force component {} differs: {} vs {}", k, f[k], want[k]
                );
            }
        }
    }

    /// Rebuilding the SoA banks is a faithful transposition.
    #[test]
    fn soa_rebuild_roundtrips(
        home in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0u8..8), 0..40),
    ) {
        let elems: Vec<Element> = home.iter().map(|&(_, _, _, e)| elem(e)).collect();
        let concat: Vec<FixVec3> = home
            .iter()
            .map(|&(x, y, z, _)| {
                ForceDatapath::concat((2, 2, 2), FixVec3::from_f64(x, y, z))
            })
            .collect();
        let mut soa = HomeSoa::new();
        // Rebuild twice: the second build must fully overwrite the first.
        soa.rebuild(&[], &[]);
        soa.rebuild(&elems, &concat);
        prop_assert_eq!(soa.len(), concat.len());
        prop_assert_eq!(soa.is_empty(), concat.is_empty());
        for i in 0..concat.len() {
            prop_assert_eq!(soa.x[i], concat[i].x.to_bits());
            prop_assert_eq!(soa.y[i], concat[i].y.to_bits());
            prop_assert_eq!(soa.z[i], concat[i].z.to_bits());
            prop_assert_eq!(soa.elem[i], elems[i]);
        }
    }
}
