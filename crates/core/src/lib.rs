//! # fasda-core
//!
//! The paper's primary contribution: the FASDA accelerator architecture
//! for range-limited molecular dynamics, modelled at cycle level.
//!
//! A FASDA chip (one FPGA) is a set of **Cell Building Blocks** (CBBs),
//! one per simulation cell mapped to the chip. Each CBB couples a
//! Processing Element (a bank of fixed-point pair filters feeding a
//! floating-point force pipeline), Position/Force/Velocity Caches, a
//! Motion-Update unit, and three ring nodes that splice the CBB into the
//! chip-wide position, force, and motion-update rings (paper Fig. 5).
//! Strong scaling replaces the single PE with a **Scalable PE** (several
//! PEs per cell, §4.5) and then a **Scalable CBB** (several SPEs per cell
//! with banked force caches and an adder tree, §4.6).
//!
//! Two execution models share one numerical datapath
//! ([`datapath::ForceDatapath`]):
//!
//! * [`functional::FunctionalChip`] — bit-faithful arithmetic (fixed-point
//!   positions, interpolated `r⁻¹⁴`/`r⁻⁸`, `f32` accumulation) with no
//!   timing. Used for trajectory validation and the Fig. 19 energy
//!   experiment.
//! * [`timed::TimedChip`] — the cycle-level microarchitecture model:
//!   slotted rings, filter stations with drain tracking, latency-43 force
//!   pipelines, FIFO backpressure, motion-update streaming. Produces the
//!   cycle counts behind Fig. 16 and the utilization counters behind
//!   Fig. 17, and exposes the EX-node interfaces `fasda-cluster` drives
//!   for multi-chip runs.
//!
//! [`resources`] implements the analytic LUT/FF/BRAM/URAM/DSP model that
//! regenerates Table 1.

pub mod config;
pub mod datapath;
pub mod functional;
pub mod geometry;
pub mod resources;
pub mod timed;

pub use config::{ChipConfig, DesignVariant, HwParams};
pub use datapath::ForceDatapath;
pub use functional::FunctionalChip;
pub use geometry::{ChipCoord, ChipGeometry, Dest};
pub use timed::{PhaseReport, TimedChip, TimestepReport};
