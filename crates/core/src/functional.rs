//! Functional (untimed) FASDA model: the accelerator's exact arithmetic
//! without cycle accounting.
//!
//! This model executes a timestep with precisely the datapath numerics of
//! the hardware — fixed-point cell-relative positions, RCID concatenation,
//! fixed-point filtering, interpolated `r⁻¹⁴`/`r⁻⁸`, `f32` force and
//! velocity state — but evaluates pairs with plain loops instead of the
//! cycle-level machinery. It is the subject of the Fig. 19
//! energy-conservation experiment (FASDA arithmetic vs 64-bit OpenMM) and
//! the oracle the timed model is checked against (both must produce
//! *identical* forces, since they share the datapath).

// Componentwise `for k in 0..3` loops mirror the per-lane datapath.
#![allow(clippy::needless_range_loop)]
use crate::datapath::ForceDatapath;
use fasda_arith::fixed::{Fix, FixVec3};
use fasda_arith::interp::TableConfig;
use fasda_md::celllist::HALF_SHELL_OFFSETS;
use fasda_md::element::{Element, PairTable};
use fasda_md::space::SimulationSpace;
use fasda_md::system::ParticleSystem;
use fasda_md::units::UnitSystem;
use fasda_md::vec3::Vec3;

/// Per-cell particle storage: the PC/VC/FC contents of one CBB.
#[derive(Clone, Debug, Default)]
pub struct CellStore {
    /// Stable particle IDs.
    pub id: Vec<u32>,
    /// Element types (the `e` field of Fig. 6).
    pub elem: Vec<Element>,
    /// Position Cache: fixed-point offsets within the cell, `[0,1)`.
    pub offset: Vec<FixVec3>,
    /// Velocity Cache: `f32` velocities, cells/fs.
    pub vel: Vec<[f32; 3]>,
    /// Force Cache: `f32` force accumulators, kcal/mol/cell.
    pub force: Vec<[f32; 3]>,
}

impl CellStore {
    /// Particles in this cell.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True if the cell is empty.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    fn push(&mut self, id: u32, elem: Element, offset: FixVec3, vel: [f32; 3]) {
        self.id.push(id);
        self.elem.push(elem);
        self.offset.push(offset);
        self.vel.push(vel);
        self.force.push([0.0; 3]);
    }

    fn remove(&mut self, i: usize) -> (u32, Element, FixVec3, [f32; 3]) {
        self.force.swap_remove(i);
        (
            self.id.swap_remove(i),
            self.elem.swap_remove(i),
            self.offset.swap_remove(i),
            self.vel.swap_remove(i),
        )
    }
}

/// Statistics from one functional timestep.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Pairs presented to filters.
    pub candidate_pairs: u64,
    /// Pairs that passed filtering (entered the force pipeline).
    pub valid_pairs: u64,
    /// Particles that migrated to a different cell during motion update.
    pub migrations: u64,
}

impl StepStats {
    /// Filter pass rate — Eq. 3 predicts ≈ 15.5% for neighbour-cell pairs
    /// (slightly higher overall because home-cell pairs pass more often).
    pub fn pass_rate(&self) -> f64 {
        if self.candidate_pairs == 0 {
            0.0
        } else {
            self.valid_pairs as f64 / self.candidate_pairs as f64
        }
    }
}

/// The functional accelerator covering an entire simulation space.
#[derive(Clone, Debug)]
pub struct FunctionalChip {
    dp: ForceDatapath,
    space: SimulationSpace,
    cells: Vec<CellStore>,
    /// Timestep, fs.
    dt_fs: f64,
    /// Per-element `acc_factor / mass`, precomputed as `f32` (the MU's
    /// constant multiplier).
    acc_over_mass: [f32; Element::COUNT],
    units: UnitSystem,
}

impl FunctionalChip {
    /// Load a particle system into per-cell fixed-point storage.
    pub fn load(sys: &ParticleSystem, table: TableConfig, dt_fs: f64) -> Self {
        Self::load_with(sys, table, dt_fs, None)
    }

    /// Load with the real-space PME electrostatic term enabled.
    pub fn load_with(
        sys: &ParticleSystem,
        table: TableConfig,
        dt_fs: f64,
        electrostatics: Option<fasda_md::ewald::EwaldParams>,
    ) -> Self {
        let pairs = PairTable::new(sys.units);
        let mut dp = ForceDatapath::new(&pairs, table);
        if let Some(params) = electrostatics {
            dp = dp.with_electrostatics(params);
        }
        let mut cells = vec![CellStore::default(); sys.space.num_cells()];
        for i in 0..sys.len() {
            let cc = sys.space.cell_of(sys.pos[i]);
            let cid = sys.space.cell_id(cc) as usize;
            let off = sys.pos[i] - Vec3::new(cc.x as f64, cc.y as f64, cc.z as f64);
            let offset = quantize_offset(off);
            let v = sys.vel[i];
            cells[cid].push(
                sys.id[i],
                sys.element[i],
                offset,
                [v.x as f32, v.y as f32, v.z as f32],
            );
        }
        let mut acc_over_mass = [0.0f32; Element::COUNT];
        for e in Element::ALL {
            acc_over_mass[e.index()] = (sys.units.acc_factor() / e.mass()) as f32;
        }
        FunctionalChip {
            dp,
            space: sys.space,
            cells,
            dt_fs,
            acc_over_mass,
            units: sys.units,
        }
    }

    /// The simulation space.
    pub fn space(&self) -> SimulationSpace {
        self.space
    }

    /// Cell storage (read-only).
    pub fn cell(&self, cid: u32) -> &CellStore {
        &self.cells[cid as usize]
    }

    /// Total particles across cells.
    pub fn num_particles(&self) -> usize {
        self.cells.iter().map(CellStore::len).sum()
    }

    /// Shared datapath (for cross-checking the timed model).
    pub fn datapath(&self) -> &ForceDatapath {
        &self.dp
    }

    /// Run the force-evaluation phase: clears and repopulates every FC.
    pub fn evaluate_forces(&mut self) -> StepStats {
        let mut stats = StepStats::default();
        for cell in &mut self.cells {
            for f in &mut cell.force {
                *f = [0.0; 3];
            }
        }

        // Home-cell internal pairs (i < j), both particles at RCID (2,2,2).
        for cid in 0..self.cells.len() {
            let n = self.cells[cid].len();
            for i in 0..n {
                for j in (i + 1)..n {
                    stats.candidate_pairs += 1;
                    let (ci, cj) = {
                        let c = &self.cells[cid];
                        (
                            ForceDatapath::concat((2, 2, 2), c.offset[i]),
                            ForceDatapath::concat((2, 2, 2), c.offset[j]),
                        )
                    };
                    if let Some(p) = self.dp.filter(ci, cj) {
                        stats.valid_pairs += 1;
                        let c = &self.cells[cid];
                        let f = self.dp.force(c.elem[i], c.elem[j], p);
                        let c = &mut self.cells[cid];
                        for k in 0..3 {
                            c.force[i][k] += f[k];
                            c.force[j][k] -= f[k];
                        }
                    }
                }
            }
        }

        // Half-shell neighbour-cell pairs: source cell s broadcasts to
        // destination d = s + offset; at d the source particles appear at
        // RCID (2,2,2) - offset.
        for scid in 0..self.cells.len() as u32 {
            let scoord = self.space.cell_coord(scid);
            for off in HALF_SHELL_OFFSETS {
                let dcoord = self.space.wrap_coord(scoord.offset(off));
                let dcid = self.space.cell_id(dcoord);
                let rcid = (
                    (2 - off.0) as u8,
                    (2 - off.1) as u8,
                    (2 - off.2) as u8,
                );
                self.eval_cell_pair(scid, dcid, rcid, &mut stats);
            }
        }
        stats
    }

    /// Evaluate all pairs between source (neighbour) cell `scid` and home
    /// cell `dcid`, with the source particles seen at `rcid` from home.
    fn eval_cell_pair(&mut self, scid: u32, dcid: u32, rcid: (u8, u8, u8), stats: &mut StepStats) {
        debug_assert_ne!(scid, dcid);
        let (s_len, d_len) = (self.cells[scid as usize].len(), self.cells[dcid as usize].len());
        for ni in 0..s_len {
            let (n_elem, n_concat) = {
                let s = &self.cells[scid as usize];
                (s.elem[ni], ForceDatapath::concat(rcid, s.offset[ni]))
            };
            let mut n_force = [0.0f32; 3];
            for hi in 0..d_len {
                stats.candidate_pairs += 1;
                let (h_elem, h_concat) = {
                    let d = &self.cells[dcid as usize];
                    (d.elem[hi], ForceDatapath::concat((2, 2, 2), d.offset[hi]))
                };
                if let Some(p) = self.dp.filter(h_concat, n_concat) {
                    stats.valid_pairs += 1;
                    let f = self.dp.force(h_elem, n_elem, p);
                    let d = &mut self.cells[dcid as usize];
                    for k in 0..3 {
                        d.force[hi][k] += f[k];
                        // neighbour force accumulated locally, returned via FR
                        n_force[k] -= f[k];
                    }
                }
            }
            let s = &mut self.cells[scid as usize];
            for k in 0..3 {
                s.force[ni][k] += n_force[k];
            }
        }
    }

    /// Motion-update phase: leapfrog kick + drift in the MU's arithmetic
    /// (`f32` velocity update, fixed-point position update), then particle
    /// migration along the motion-update ring. Returns migration count.
    pub fn motion_update(&mut self) -> u64 {
        let dt = self.dt_fs;
        type Migrant = (u32, Element, FixVec3, [f32; 3]);
        let mut moves: Vec<(u32, Migrant)> = Vec::new();
        for cid in 0..self.cells.len() as u32 {
            let coord = self.space.cell_coord(cid);
            let cell = &mut self.cells[cid as usize];
            let mut i = 0;
            while i < cell.len() {
                let e = cell.elem[i];
                let aom = self.acc_over_mass[e.index()];
                let mut v = cell.vel[i];
                let f = cell.force[i];
                for k in 0..3 {
                    v[k] += f[k] * aom * dt as f32;
                }
                cell.vel[i] = v;
                // drift in fixed point: offset += quantize(v·dt)
                let d = FixVec3::new(
                    Fix::from_f64(v[0] as f64 * dt),
                    Fix::from_f64(v[1] as f64 * dt),
                    Fix::from_f64(v[2] as f64 * dt),
                );
                let nx = cell.offset[i].x + d.x;
                let ny = cell.offset[i].y + d.y;
                let nz = cell.offset[i].z + d.z;
                let (wx, mx) = nx.wrap_cell();
                let (wy, my) = ny.wrap_cell();
                let (wz, mz) = nz.wrap_cell();
                let new_off = FixVec3::new(wx, wy, wz);
                if (mx, my, mz) == (0, 0, 0) {
                    cell.offset[i] = new_off;
                    i += 1;
                } else {
                    let ncoord = self.space.wrap_coord(coord.offset((mx, my, mz)));
                    let ncid = self.space.cell_id(ncoord);
                    let (id, elem, _, vel) = cell.remove(i);
                    moves.push((ncid, (id, elem, new_off, vel)));
                }
            }
        }
        let migrations = moves.len() as u64;
        for (ncid, (id, elem, off, vel)) in moves {
            self.cells[ncid as usize].push(id, elem, off, vel);
        }
        migrations
    }

    /// One full timestep: force evaluation then motion update.
    pub fn step(&mut self) -> StepStats {
        let mut stats = self.evaluate_forces();
        stats.migrations = self.motion_update();
        stats
    }

    /// Export the accelerator state back into a [`ParticleSystem`]
    /// (positions/velocities/forces by stable particle ID) for
    /// double-precision analysis.
    pub fn store_into(&self, sys: &mut ParticleSystem) {
        assert_eq!(sys.len(), self.num_particles(), "system size mismatch");
        for cid in 0..self.cells.len() as u32 {
            let coord = self.space.cell_coord(cid);
            let base = Vec3::new(coord.x as f64, coord.y as f64, coord.z as f64);
            let cell = &self.cells[cid as usize];
            for i in 0..cell.len() {
                let idx = cell.id[i] as usize;
                let [ox, oy, oz] = cell.offset[i].to_f64();
                sys.id[idx] = cell.id[i];
                sys.element[idx] = cell.elem[i];
                sys.pos[idx] = base + Vec3::new(ox, oy, oz);
                sys.vel[idx] = Vec3::new(
                    cell.vel[i][0] as f64,
                    cell.vel[i][1] as f64,
                    cell.vel[i][2] as f64,
                );
                sys.force[idx] = Vec3::new(
                    cell.force[i][0] as f64,
                    cell.force[i][1] as f64,
                    cell.force[i][2] as f64,
                );
            }
        }
    }

    /// Clone the state into a fresh `ParticleSystem`.
    pub fn snapshot(&self) -> ParticleSystem {
        let mut sys = ParticleSystem::new(self.space, self.units);
        for _ in 0..self.num_particles() {
            sys.push(Element::Na, Vec3::ZERO, Vec3::ZERO);
        }
        self.store_into(&mut sys);
        sys
    }
}

/// Quantize an in-cell offset to the fixed-point grid, keeping it inside
/// `[0, 1)` (rounding at the top edge would otherwise escape the cell).
pub fn quantize_offset(off: Vec3) -> FixVec3 {
    let q = |v: f64| -> Fix {
        debug_assert!((0.0..1.0 + 1e-9).contains(&v), "offset {v} not in cell");
        let f = Fix::from_f64(v.clamp(0.0, 1.0));
        if f.is_cell_offset() {
            f
        } else {
            Fix::ONE - Fix::EPSILON
        }
    };
    FixVec3::new(q(off.x), q(off.y), q(off.z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasda_md::engine::{CellListEngine, ForceEngine};
    use fasda_md::space::CellCoord;
    use fasda_md::workload::{Placement, WorkloadSpec};

    fn workload(seed: u64) -> ParticleSystem {
        WorkloadSpec {
            space: SimulationSpace::cubic(3),
            per_cell: 8,
            placement: Placement::JitteredLattice { jitter: 0.06 },
            temperature_k: 100.0,
            seed,
            element: Element::Na,
        }
        .generate()
    }

    #[test]
    fn load_preserves_particles() {
        let sys = workload(1);
        let chip = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
        assert_eq!(chip.num_particles(), sys.len());
        let snap = chip.snapshot();
        for i in 0..sys.len() {
            assert!(
                (snap.pos[i] - sys.pos[i]).max_abs() < 1e-7,
                "particle {i} moved on load"
            );
        }
    }

    #[test]
    fn forces_match_reference_engine() {
        let mut sys = workload(2);
        let mut chip = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
        chip.evaluate_forces();
        let snap = chip.snapshot();
        CellListEngine::new(PairTable::new(UnitSystem::PAPER)).compute_forces(&mut sys);
        for i in 0..sys.len() {
            let want = sys.force[i];
            let got = snap.force[i];
            let tol = want.max_abs().max(0.05) * 1e-2;
            assert!(
                (got - want).max_abs() < tol,
                "particle {i}: got {got:?}, want {want:?}"
            );
        }
    }

    #[test]
    fn newtons_third_law_in_f32() {
        let sys = workload(3);
        let mut chip = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
        chip.evaluate_forces();
        let snap = chip.snapshot();
        // f32 accumulation: net force small relative to force scale
        assert!(snap.net_force().max_abs() < 1e-3);
    }

    #[test]
    fn pass_rate_near_eq3_prediction() {
        // Dense uniform fill: neighbour-cell pass rate ≈ 15.5% (Eq. 3);
        // including home-cell pairs the overall rate is a bit higher.
        let sys = WorkloadSpec::paper(SimulationSpace::cubic(3), 4).generate();
        let mut chip = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
        let stats = chip.evaluate_forces();
        let rate = stats.pass_rate();
        assert!(
            (0.12..0.25).contains(&rate),
            "pass rate {rate} far from Eq. 3's 15.5%"
        );
    }

    #[test]
    fn particle_count_conserved_across_steps() {
        let sys = workload(5);
        let n = sys.len();
        let mut chip = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
        for _ in 0..20 {
            chip.step();
            assert_eq!(chip.num_particles(), n);
        }
        assert!(chip.snapshot().validate().is_ok());
    }

    #[test]
    fn migration_moves_particle_to_adjacent_cell() {
        let mut sys = ParticleSystem::new(SimulationSpace::cubic(3), UnitSystem::PAPER);
        // fast particle near the +x face of cell (0,0,0)
        sys.push(
            Element::Na,
            Vec3::new(0.99, 0.5, 0.5),
            Vec3::new(0.02, 0.0, 0.0), // 0.04 cells in one 2fs step
        );
        let mut chip = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
        let stats = chip.step();
        assert_eq!(stats.migrations, 1);
        let cid_new = sys.space.cell_id(CellCoord::new(1, 0, 0));
        assert_eq!(chip.cell(cid_new).len(), 1);
    }

    #[test]
    fn short_trajectory_tracks_reference() {
        // 10 leapfrog steps: FASDA arithmetic vs f64 reference positions
        // should agree to ~1e-3 cells.
        let sys = workload(6);
        let mut chip = FunctionalChip::load(&sys, TableConfig::PAPER, 2.0);
        let mut ref_sys = sys.clone();
        let mut eng = CellListEngine::new(PairTable::new(UnitSystem::PAPER));
        let integ = fasda_md::integrator::Integrator::PAPER;
        for _ in 0..10 {
            chip.step();
            eng.step(&mut ref_sys, &integ);
        }
        let snap = chip.snapshot();
        let mut worst = 0.0f64;
        for i in 0..sys.len() {
            let d = ref_sys.space.min_image(snap.pos[i], ref_sys.pos[i]).max_abs();
            worst = worst.max(d);
        }
        assert!(worst < 1e-3, "trajectory diverged by {worst} cells in 10 steps");
    }
}
