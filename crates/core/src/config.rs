//! Chip configuration: hardware parameters and the paper's design
//! variants.
//!
//! FASDA "is built with a series of easily plugable components that can be
//! adjusted based on user requirements" (§1). [`HwParams`] exposes the
//! microarchitectural knobs (filter count, pipeline latencies, FIFO
//! depths, table geometry); [`ChipConfig`] adds the two strong-scaling
//! knobs of §4.5–4.6 — PEs per SPE and SPEs per CBB. The evaluation's
//! named variants (Table 1, Fig. 17) are provided as
//! [`DesignVariant`] constructors:
//!
//! | variant   | SPEs/CBB | PEs/SPE |
//! |-----------|----------|---------|
//! | `A`       | 1        | 1       |
//! | `B`       | 1        | 3       |
//! | `C`       | 2        | 3       |

use fasda_arith::interp::TableConfig;
use fasda_md::ewald::EwaldParams;
use serde::{Deserialize, Serialize};

/// Microarchitectural parameters of one FASDA chip.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HwParams {
    /// Clock frequency in Hz. The paper's Alveo U280 builds run at
    /// 200 MHz (§5.1).
    pub clock_hz: f64,
    /// Pair filters per force pipeline. The paper uses 6, chosen so the
    /// filter bank's valid-pair rate (~15.5% × 6 ≈ 0.93/cycle, Eq. 3)
    /// matches the pipeline's one-force-per-cycle throughput (§5.3).
    pub filters_per_pe: u32,
    /// Force pipeline latency in cycles (fixed→float conversion, table
    /// lookup, FP multiply/add tree).
    pub force_pipe_latency: u32,
    /// Depth of the per-filter valid-pair FIFO feeding the arbiter.
    pub pair_fifo_depth: usize,
    /// Depth of the neighbour-position input FIFO behind each PRN.
    pub pos_in_fifo_depth: usize,
    /// Depth of the neighbour-force output FIFO feeding each FRN.
    pub frc_out_fifo_depth: usize,
    /// Motion-update pipeline latency in cycles.
    pub mu_latency: u32,
    /// Minimum cycles between successive position broadcasts from one
    /// cell (per SPE). The PC meters its broadcast to the consumption
    /// rate — "each position still requires over 100 cycles of
    /// processing before the next one can be processed, granting the
    /// position ring ample routing time" (§4.5) — which keeps the
    /// position ring underused (Fig. 17). `0` (the default) derives the
    /// interval from the configuration at phase start:
    /// `13·(home_len + pipeline latency) / filters_per_spe`, the rate at
    /// which the 13 receiving cells retire a broadcast position.
    pub bcast_cooldown: u32,
    /// Interpolation table geometry (§3.4).
    pub table: TableConfig,
}

impl Default for HwParams {
    fn default() -> Self {
        HwParams {
            clock_hz: 200.0e6,
            filters_per_pe: 6,
            force_pipe_latency: 43,
            pair_fifo_depth: 8,
            pos_in_fifo_depth: 8,
            frc_out_fifo_depth: 8,
            mu_latency: 24,
            bcast_cooldown: 0,
            table: TableConfig::PAPER,
        }
    }
}

impl HwParams {
    /// Seconds per clock cycle.
    #[inline]
    pub fn cycle_seconds(&self) -> f64 {
        1.0 / self.clock_hz
    }

    /// Convert a cycles-per-timestep measurement into the paper's
    /// µs/day simulation-rate metric for a `dt_fs`-femtosecond timestep.
    pub fn us_per_day(&self, cycles_per_step: f64, dt_fs: f64) -> f64 {
        let seconds_per_step = cycles_per_step * self.cycle_seconds();
        fasda_md::units::UnitSystem::us_per_day(dt_fs, seconds_per_step)
    }
}

/// The named strong-scaling variants of the evaluation (§5.2, Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DesignVariant {
    /// 1 SPE per CBB, 1 PE per SPE — the baseline CBB.
    A,
    /// 1 SPE per CBB, 3 PEs per SPE — PE scaling (§4.5).
    B,
    /// 2 SPEs per CBB, 3 PEs per SPE — CBB scaling (§4.6).
    C,
}

impl DesignVariant {
    /// `(spes_per_cbb, pes_per_spe)` for this variant.
    pub fn shape(self) -> (u32, u32) {
        match self {
            DesignVariant::A => (1, 1),
            DesignVariant::B => (1, 3),
            DesignVariant::C => (2, 3),
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            DesignVariant::A => "1-SPE,1-PE",
            DesignVariant::B => "1-SPE,3-PE",
            DesignVariant::C => "2-SPE,3-PE",
        }
    }
}

/// Full configuration of one chip.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChipConfig {
    /// Microarchitecture parameters.
    pub hw: HwParams,
    /// SPEs per CBB (§4.6 CBB scaling). 1 = plain CBB.
    pub spes_per_cbb: u32,
    /// PEs per SPE (§4.5 PE scaling). 1 = plain PE.
    pub pes_per_spe: u32,
    /// Optional real-space PME electrostatics through the same pipeline
    /// (§2.1); `None` = LJ-only, the paper's benchmark configuration.
    pub electrostatics: Option<EwaldParams>,
    /// Filter cutoff radius in cell units; 1.0 (the paper's design point,
    /// Fig. 3) means `Rc` equals the cell edge. Values below 1 model a
    /// cell edge larger than the cutoff.
    pub cutoff_cells: f64,
}

impl ChipConfig {
    /// Baseline configuration (variant A geometry, default parameters).
    pub fn baseline() -> Self {
        ChipConfig::variant(DesignVariant::A)
    }

    /// A named evaluation variant with default hardware parameters.
    pub fn variant(v: DesignVariant) -> Self {
        let (spes, pes) = v.shape();
        ChipConfig {
            hw: HwParams::default(),
            spes_per_cbb: spes,
            pes_per_spe: pes,
            electrostatics: None,
            cutoff_cells: 1.0,
        }
    }

    /// Total PEs (force pipelines) per CBB.
    #[inline]
    pub fn pes_per_cbb(&self) -> u32 {
        self.spes_per_cbb * self.pes_per_spe
    }

    /// Total filters per CBB.
    #[inline]
    pub fn filters_per_cbb(&self) -> u32 {
        self.pes_per_cbb() * self.hw.filters_per_pe
    }

    /// Validate the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.spes_per_cbb == 0 || self.pes_per_spe == 0 {
            return Err("spes_per_cbb and pes_per_spe must be positive".into());
        }
        if self.spes_per_cbb > 8 {
            return Err("more than 8 SPEs per CBB is not a supported design point".into());
        }
        if self.hw.filters_per_pe == 0 {
            return Err("need at least one filter per PE".into());
        }
        if !(self.cutoff_cells > 0.0 && self.cutoff_cells <= 1.0) {
            return Err("cutoff_cells must be in (0, 1]".into());
        }
        Ok(())
    }
}

impl Default for ChipConfig {
    fn default() -> Self {
        ChipConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_shapes_match_paper() {
        assert_eq!(DesignVariant::A.shape(), (1, 1));
        assert_eq!(DesignVariant::B.shape(), (1, 3));
        assert_eq!(DesignVariant::C.shape(), (2, 3));
        assert_eq!(ChipConfig::variant(DesignVariant::C).pes_per_cbb(), 6);
        assert_eq!(ChipConfig::variant(DesignVariant::C).filters_per_cbb(), 36);
    }

    #[test]
    fn us_per_day_conversion() {
        let hw = HwParams::default();
        // 15_000 cycles @ 200 MHz = 75 µs per 2 fs step
        let rate = hw.us_per_day(15_000.0, 2.0);
        let want = 2.0 / (15_000.0 / 200.0e6 * 1e6) * 86_400.0 / 1.0e9 * 1e6;
        // direct: 2 fs per 75 µs → 2e-9 µs sim per 7.5e-5 s → × 86400 s/day
        let direct = 2e-9 / 7.5e-5 * 86_400.0;
        assert!((rate - direct).abs() < 1e-9, "{rate} vs {direct} ({want})");
    }

    #[test]
    fn validate_rejects_zeroes() {
        let mut c = ChipConfig::baseline();
        assert!(c.validate().is_ok());
        c.pes_per_spe = 0;
        assert!(c.validate().is_err());
        c.pes_per_spe = 1;
        c.spes_per_cbb = 99;
        assert!(c.validate().is_err());
    }
}
