//! Slotted daisy-chain rings and the flits they carry (paper §3.2).
//!
//! FASDA maps the 3-D cell space onto 1-D rings: the **position ring**
//! moves particle broadcasts clockwise (increasing CBB index), the
//! **force ring** moves accumulated neighbour forces counter-clockwise,
//! and the **motion-update ring** carries migrating particles. Each ring
//! node holds one flit register; flits advance one hop per cycle. A flit
//! that cannot be delivered (full input buffer) simply keeps rotating and
//! retries next lap — the "data pieces spinning in rings" of §5.3.

use crate::geometry::ChipCoord;
use fasda_arith::fixed::FixVec3;
use fasda_md::element::Element;
use fasda_md::space::CellCoord;

/// A position broadcast travelling the position ring.
///
/// Carries the owner identity (chip/CBB/slot — the "header that contains
/// particle identification information" of Fig. 11), the payload, and the
/// remaining destinations as masks. The local mask is over this chip's
/// CBB indices; the remote mask is over the chip's `send_chips()` list
/// and is drained by the EX node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PosFlit {
    /// Home chip of the particle.
    pub owner_chip: ChipCoord,
    /// Home CBB on the owner chip.
    pub owner_cbb: u16,
    /// Slot in the owner cell's phase snapshot.
    pub slot: u16,
    /// Element type.
    pub elem: Element,
    /// Fixed-point offset within the home cell.
    pub offset: FixVec3,
    /// Global coordinates of the home cell (for RCID at delivery).
    pub src_gcell: CellCoord,
    /// Remaining on-chip destination CBBs (bit = CBB index).
    pub local_mask: u64,
    /// Remaining remote destination chips (bit = index into the sending
    /// chip's `send_chips()` list).
    pub remote_mask: u32,
}

impl PosFlit {
    /// True once every destination has been served.
    #[inline]
    pub fn exhausted(&self) -> bool {
        self.local_mask == 0 && self.remote_mask == 0
    }
}

/// An accumulated neighbour force returning to its home cell on the
/// force ring.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FrcFlit {
    /// Home chip of the particle the force belongs to.
    pub owner_chip: ChipCoord,
    /// Home CBB on the owner chip.
    pub owner_cbb: u16,
    /// Slot in the owner cell's phase snapshot.
    pub slot: u16,
    /// Accumulated partial force, kcal/mol/cell.
    pub force: [f32; 3],
}

/// A migrating particle on the motion-update ring.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MigFlit {
    /// Destination cell, global coordinates.
    pub dest_gcell: CellCoord,
    /// Stable particle ID.
    pub id: u32,
    /// Element type.
    pub elem: Element,
    /// Offset within the destination cell.
    pub offset: FixVec3,
    /// Velocity, cells/fs.
    pub vel: [f32; 3],
}

/// Ring rotation direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Toward increasing node index (position ring, §3.2).
    Clockwise,
    /// Toward decreasing node index (force ring).
    CounterClockwise,
}

/// A slotted ring: one flit register per node, one hop per cycle.
#[derive(Clone, Debug)]
pub struct Ring<T> {
    slots: Vec<Option<T>>,
    dir: Direction,
    /// Flit-hops performed (hardware-utilization numerator).
    pub hops: u64,
}

impl<T> Ring<T> {
    /// A ring of `nodes` registers.
    pub fn new(nodes: usize, dir: Direction) -> Self {
        assert!(nodes >= 2, "a ring needs at least 2 nodes");
        Ring {
            slots: (0..nodes).map(|_| None).collect(),
            dir,
            hops: 0,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no flits are on the ring.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Occupied slot count.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Advance every flit one hop.
    pub fn rotate(&mut self) {
        let occ = self.occupancy() as u64;
        self.hops += occ;
        if occ == 0 {
            return;
        }
        match self.dir {
            Direction::Clockwise => self.slots.rotate_right(1),
            Direction::CounterClockwise => self.slots.rotate_left(1),
        }
    }

    /// The flit currently at `node`, if any.
    #[inline]
    pub fn at(&self, node: usize) -> Option<&T> {
        self.slots[node].as_ref()
    }

    /// Mutable access to the flit at `node`.
    #[inline]
    pub fn at_mut(&mut self, node: usize) -> &mut Option<T> {
        &mut self.slots[node]
    }

    /// Remove and return the flit at `node`.
    #[inline]
    pub fn take(&mut self, node: usize) -> Option<T> {
        self.slots[node].take()
    }

    /// Inject a flit at `node` if the register is empty.
    #[inline]
    pub fn inject(&mut self, node: usize, flit: T) -> Result<(), T> {
        if self.slots[node].is_some() {
            return Err(flit);
        }
        self.slots[node] = Some(flit);
        Ok(())
    }
}

impl fasda_ckpt::Persist for PosFlit {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        self.owner_chip.save(w);
        w.put_u16(self.owner_cbb);
        w.put_u16(self.slot);
        self.elem.save(w);
        self.offset.save(w);
        self.src_gcell.save(w);
        w.put_u64(self.local_mask);
        w.put_u32(self.remote_mask);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(PosFlit {
            owner_chip: fasda_ckpt::Persist::load(r)?,
            owner_cbb: r.get_u16()?,
            slot: r.get_u16()?,
            elem: fasda_ckpt::Persist::load(r)?,
            offset: fasda_ckpt::Persist::load(r)?,
            src_gcell: fasda_ckpt::Persist::load(r)?,
            local_mask: r.get_u64()?,
            remote_mask: r.get_u32()?,
        })
    }
}

impl fasda_ckpt::Persist for FrcFlit {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        self.owner_chip.save(w);
        w.put_u16(self.owner_cbb);
        w.put_u16(self.slot);
        self.force.save(w);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(FrcFlit {
            owner_chip: fasda_ckpt::Persist::load(r)?,
            owner_cbb: r.get_u16()?,
            slot: r.get_u16()?,
            force: fasda_ckpt::Persist::load(r)?,
        })
    }
}

impl fasda_ckpt::Persist for MigFlit {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        self.dest_gcell.save(w);
        w.put_u32(self.id);
        self.elem.save(w);
        self.offset.save(w);
        self.vel.save(w);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(MigFlit {
            dest_gcell: fasda_ckpt::Persist::load(r)?,
            id: r.get_u32()?,
            elem: fasda_ckpt::Persist::load(r)?,
            offset: fasda_ckpt::Persist::load(r)?,
            vel: fasda_ckpt::Persist::load(r)?,
        })
    }
}

/// Checkpointing: node count and direction are configuration; the flit
/// registers and the hop counter are state.
impl<T: fasda_ckpt::Persist> fasda_ckpt::Snapshot for Ring<T> {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        use fasda_ckpt::Persist;
        self.slots.save(w);
        w.put_u64(self.hops);
    }
    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        let slots: Vec<Option<T>> = fasda_ckpt::Persist::load(r)?;
        if slots.len() != self.slots.len() {
            return Err(r.malformed(format!(
                "ring size mismatch: snapshot has {} nodes, ring has {}",
                slots.len(),
                self.slots.len()
            )));
        }
        self.slots = slots;
        self.hops = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clockwise_moves_to_higher_index() {
        let mut r: Ring<u32> = Ring::new(4, Direction::Clockwise);
        r.inject(0, 7).unwrap();
        r.rotate();
        assert_eq!(r.at(1), Some(&7));
        r.rotate();
        assert_eq!(r.at(2), Some(&7));
        // wraps
        r.rotate();
        r.rotate();
        assert_eq!(r.at(0), Some(&7));
        assert_eq!(r.hops, 4);
    }

    #[test]
    fn counterclockwise_moves_to_lower_index() {
        let mut r: Ring<u32> = Ring::new(4, Direction::CounterClockwise);
        r.inject(1, 9).unwrap();
        r.rotate();
        assert_eq!(r.at(0), Some(&9));
        r.rotate();
        assert_eq!(r.at(3), Some(&9), "wraps downward");
    }

    #[test]
    fn inject_requires_empty_slot() {
        let mut r: Ring<u32> = Ring::new(3, Direction::Clockwise);
        r.inject(2, 1).unwrap();
        assert_eq!(r.inject(2, 2), Err(2));
        assert_eq!(r.occupancy(), 1);
        assert_eq!(r.take(2), Some(1));
        assert!(r.is_empty());
    }

    #[test]
    fn multiple_flits_keep_relative_order() {
        let mut r: Ring<u32> = Ring::new(4, Direction::Clockwise);
        r.inject(0, 0).unwrap();
        r.inject(1, 1).unwrap();
        r.rotate();
        assert_eq!(r.at(1), Some(&0));
        assert_eq!(r.at(2), Some(&1));
        assert_eq!(r.occupancy(), 2);
    }
}
