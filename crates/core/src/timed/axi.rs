//! AXI-Lite debug/result registers — artifact compatibility.
//!
//! The paper's artifact reads results from the FPGA over AXI-Lite:
//! "the AXI-lite signals including the overall execution cycles, the
//! execution cycles of each key component, and the communication
//! statistics ... Specifically, `out_traffic_packets_pos`,
//! `out_traffic_packets_frc`, `in_traffic_packets_pos`,
//! `in_traffic_packets_frc` give the communication workload in 512-bit
//! packets, `operation_cycle_cnt` shows the overall performance in
//! cycles, `PE_cycle_cnt` and other cycle counters show the number of
//! cycles a key component is active" (artifact appendix).
//!
//! [`AxiLiteRegs`] exposes exactly those registers from a
//! [`super::TimedChip`], so result post-processing written against the
//! artifact's register map works against this model unchanged.

use super::TimedChip;
use serde::{Deserialize, Serialize};

/// Flits per 512-bit packet on the wire (Fig. 10).
const FLITS_PER_PACKET: u64 = 4;

/// The artifact's AXI-Lite result register map, as read from one chip.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[allow(non_snake_case)]
pub struct AxiLiteRegs {
    /// Overall cycles since the stats window began.
    pub operation_cycle_cnt: u64,
    /// Cycles the PEs (force pipelines) were active, summed over PEs.
    pub PE_cycle_cnt: u64,
    /// Cycles the filters were active, summed over filter banks.
    pub filter_cycle_cnt: u64,
    /// Cycles the position rings carried data.
    pub PR_cycle_cnt: u64,
    /// Cycles the force rings carried data.
    pub FR_cycle_cnt: u64,
    /// Cycles the motion-update units were active.
    pub MU_cycle_cnt: u64,
    /// Outbound position traffic in 512-bit packets.
    pub out_traffic_packets_pos: u64,
    /// Outbound force traffic in 512-bit packets.
    pub out_traffic_packets_frc: u64,
    /// Inbound position traffic in 512-bit packets.
    pub in_traffic_packets_pos: u64,
    /// Inbound force traffic in 512-bit packets.
    pub in_traffic_packets_frc: u64,
}

impl AxiLiteRegs {
    /// Snapshot the register map from a chip. `window_cycles` is the
    /// cycles elapsed since `reset_stats` (the host tracks this, exactly
    /// as the artifact's `run.py` does).
    pub fn read(chip: &TimedChip, window_cycles: u64) -> Self {
        let report = chip.report(0, 0);
        let pkts = |flits: u64| flits.div_ceil(FLITS_PER_PACKET);
        let pos_out: u64 = chip.traffic.pos_sent.values().sum();
        let frc_out: u64 = chip.traffic.frc_sent.values().sum();
        let pos_in: u64 = chip.traffic.pos_recv.values().sum();
        let busy = |name: &str| {
            // StatSet folds replicas; busy cycles summed over replicas is
            // the hardware counter semantics (each component has its own
            // register, the artifact sums them host-side).
            (report.stats.time_util(name, window_cycles.max(1))
                * report.stats.replicas(name) as f64
                * window_cycles as f64)
                .round() as u64
        };
        AxiLiteRegs {
            operation_cycle_cnt: window_cycles,
            PE_cycle_cnt: busy("PE"),
            filter_cycle_cnt: busy("Filter"),
            PR_cycle_cnt: busy("PR"),
            FR_cycle_cnt: busy("FR"),
            MU_cycle_cnt: busy("MU"),
            out_traffic_packets_pos: pkts(pos_out),
            out_traffic_packets_frc: pkts(frc_out),
            in_traffic_packets_pos: pkts(pos_in),
            in_traffic_packets_frc: pkts(chip.traffic.frc_recv_remote),
        }
    }

    /// The artifact's conversion: overall cycles → µs/day simulation
    /// rate for `steps` timesteps of `dt_fs` at `clock_hz`.
    pub fn us_per_day(&self, steps: u64, dt_fs: f64, clock_hz: f64) -> f64 {
        let seconds_per_step = self.operation_cycle_cnt as f64 / steps as f64 / clock_hz;
        fasda_md::units::UnitSystem::us_per_day(dt_fs, seconds_per_step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipConfig;
    use crate::geometry::ChipGeometry;
    use fasda_md::space::SimulationSpace;
    use fasda_md::units::UnitSystem;
    use fasda_md::workload::WorkloadSpec;

    #[test]
    fn register_map_reflects_single_chip_run() {
        let space = SimulationSpace::cubic(3);
        let sys = WorkloadSpec {
            per_cell: 8,
            ..WorkloadSpec::paper(space, 61)
        }
        .generate();
        let mut chip = TimedChip::new(
            ChipConfig::baseline(),
            ChipGeometry::single_chip(space),
            UnitSystem::PAPER,
            2.0,
        );
        chip.load(&sys);
        let r = chip.run_timestep();
        let regs = AxiLiteRegs::read(&chip, r.total_cycles());
        assert_eq!(regs.operation_cycle_cnt, r.total_cycles());
        assert!(regs.PE_cycle_cnt > 0);
        assert!(regs.filter_cycle_cnt >= regs.PE_cycle_cnt / 2);
        assert!(regs.MU_cycle_cnt > 0);
        // single chip: no external traffic
        assert_eq!(regs.out_traffic_packets_pos, 0);
        assert_eq!(regs.in_traffic_packets_frc, 0);
        // rate conversion lands in the paper's weak-scaling regime
        let rate = regs.us_per_day(1, 2.0, 200.0e6);
        // 8 particles/cell runs much faster than the paper workload
        assert!((1.0..200.0).contains(&rate), "rate {rate}");
    }
}
