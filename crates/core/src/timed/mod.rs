//! The cycle-level FASDA chip model.
//!
//! [`TimedChip`] wires the CBBs of one FPGA onto per-SPE position and
//! force rings plus a motion-update ring, and steps the whole chip one
//! clock cycle at a time. Cycle counts convert to the paper's µs/day
//! metric via [`crate::config::HwParams::us_per_day`]; per-component
//! activity counters regenerate Fig. 17.
//!
//! Single-chip mode drives itself with [`TimedChip::run_timestep`].
//! In multi-chip mode `fasda-cluster` drives the phase transitions and
//! exchanges the EX-node queues ([`TimedChip::drain_pos_egress`] and
//! friends), implementing the packetization, cooldown, and chained
//! synchronization of §4.3–4.4 on top.

pub mod axi;
pub mod cbb;
pub mod pe;
pub mod ring;

use crate::config::ChipConfig;
use crate::datapath::ForceDatapath;
use crate::geometry::{ChipCoord, ChipGeometry};
use cbb::TimedCbb;
use fasda_md::element::{Element, PairTable};
use fasda_md::space::CellCoord;
use fasda_md::system::ParticleSystem;
use fasda_md::units::UnitSystem;
use fasda_md::vec3::Vec3;
use fasda_sim::{Activity, Cycle, StatSet};
use fasda_trace::{EventKind, NodeRecorder, NodeStream, TraceConfig, TraceLevel};
use pe::{NbrEntry, NbrKind};
use ring::{Direction, FrcFlit, MigFlit, PosFlit, Ring};
use std::collections::{HashMap, VecDeque};

/// Safety cap for self-driven phase loops; a healthy timestep is a few
/// thousand to a few hundred thousand cycles.
const MAX_PHASE_CYCLES: u64 = 200_000_000;

/// Report for one executed phase.
#[derive(Clone, Debug, Default)]
pub struct PhaseReport {
    /// Cycles the phase took on this chip.
    pub cycles: u64,
}

/// Report for one executed timestep on one chip.
#[derive(Clone, Debug, Default)]
pub struct TimestepReport {
    /// Force-evaluation phase cycles.
    pub force_cycles: u64,
    /// Motion-update phase cycles.
    pub mu_cycles: u64,
    /// Per-component utilization counters over the whole timestep window.
    pub stats: StatSet,
    /// Forces produced (valid pairs evaluated).
    pub valid_pairs: u64,
    /// Filter comparisons performed.
    pub comparisons: u64,
    /// Particles that migrated between cells.
    pub migrations: u64,
}

impl TimestepReport {
    /// Total cycles of the timestep.
    pub fn total_cycles(&self) -> u64 {
        self.force_cycles + self.mu_cycles
    }
}

/// Execution phase of a chip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Between timesteps.
    Idle,
    /// Force evaluation (black path of Fig. 4).
    Force,
    /// Motion update (red path of Fig. 4).
    MotionUpdate,
}

/// Per-peer traffic counters (flits; `fasda-net` packs them 4-per-packet).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficCounters {
    /// Position flits sent, per destination chip.
    pub pos_sent: HashMap<ChipCoord, u64>,
    /// Force flits sent, per destination chip.
    pub frc_sent: HashMap<ChipCoord, u64>,
    /// Position flits received, per origin chip.
    pub pos_recv: HashMap<ChipCoord, u64>,
    /// Force flits received back for local particles (local + remote
    /// rings combined).
    pub frc_recv: u64,
    /// Force flits ingested from remote chips (EX-node arrivals).
    pub frc_recv_remote: u64,
    /// Migration flits sent, per destination chip.
    pub mig_sent: HashMap<ChipCoord, u64>,
}

impl TrafficCounters {
    /// Fold another window's counters into this one (per-peer sums).
    pub fn merge_from(&mut self, other: &TrafficCounters) {
        for (k, v) in &other.pos_sent {
            *self.pos_sent.entry(*k).or_default() += v;
        }
        for (k, v) in &other.frc_sent {
            *self.frc_sent.entry(*k).or_default() += v;
        }
        for (k, v) in &other.pos_recv {
            *self.pos_recv.entry(*k).or_default() += v;
        }
        self.frc_recv += other.frc_recv;
        self.frc_recv_remote += other.frc_recv_remote;
        for (k, v) in &other.mig_sent {
            *self.mig_sent.entry(*k).or_default() += v;
        }
    }
}

impl fasda_ckpt::Persist for TrafficCounters {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        self.pos_sent.save(w);
        self.frc_sent.save(w);
        self.pos_recv.save(w);
        w.put_u64(self.frc_recv);
        w.put_u64(self.frc_recv_remote);
        self.mig_sent.save(w);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(TrafficCounters {
            pos_sent: fasda_ckpt::Persist::load(r)?,
            frc_sent: fasda_ckpt::Persist::load(r)?,
            pos_recv: fasda_ckpt::Persist::load(r)?,
            frc_recv: r.get_u64()?,
            frc_recv_remote: r.get_u64()?,
            mig_sent: fasda_ckpt::Persist::load(r)?,
        })
    }
}

/// The cycle-level model of one FASDA FPGA.
pub struct TimedChip {
    cfg: ChipConfig,
    geo: ChipGeometry,
    dp: ForceDatapath,
    units: UnitSystem,
    dt_fs: f64,
    acc_over_mass: [f32; Element::COUNT],
    /// The CBBs, indexed by local cell ID.
    pub cbbs: Vec<TimedCbb>,
    pos_rings: Vec<Ring<PosFlit>>,
    frc_rings: Vec<Ring<FrcFlit>>,
    mig_ring: Ring<MigFlit>,
    /// Current cycle (monotonic across phases and timesteps).
    pub cycle: Cycle,
    phase: Phase,
    /// Destination masks per CBB (all particles of a cell share them).
    local_masks: Vec<u64>,
    remote_masks: Vec<u32>,
    /// Peer chips this chip sends positions to; bit `b` of a remote mask
    /// refers to `send_chips[b]`.
    pub send_chips: Vec<ChipCoord>,
    /// Peer chips this chip receives positions from.
    pub recv_chips: Vec<ChipCoord>,
    // EX-node queues (multi-chip mode).
    pos_egress: VecDeque<(ChipCoord, PosFlit)>,
    frc_egress: VecDeque<(ChipCoord, FrcFlit)>,
    mig_egress: VecDeque<(ChipCoord, MigFlit)>,
    pos_ingress: VecDeque<PosFlit>,
    frc_ingress: VecDeque<FrcFlit>,
    mig_ingress: VecDeque<MigFlit>,
    /// Remote-origin neighbour evaluations ingested but not yet complete,
    /// per origin chip (chained-sync bookkeeping, §4.4).
    remote_pos_outstanding: HashMap<ChipCoord, i64>,
    /// Force flits issued toward each remote origin (eject-time count);
    /// compared with EX-captured counts to detect full force drain.
    frc_issued_to: HashMap<ChipCoord, u64>,
    /// Cached local destination masks for remote source cells.
    halo_mask_cache: HashMap<(i32, i32, i32), u64>,
    // Ring activity counters (capacity = ring nodes).
    pr_stats: Vec<Activity>,
    fr_stats: Vec<Activity>,
    mu_ring_stats: Activity,
    migrations: u64,
    /// Last broadcast-injection cycle per (CBB, SPE), for the PC
    /// broadcast cooldown.
    last_bcast: Vec<Vec<u64>>,
    /// Effective broadcast cooldown for the current force phase.
    bcast_cooldown: u64,
    /// Traffic counters since the last stats reset.
    pub traffic: TrafficCounters,
    completed_buf: Vec<(ChipCoord, u32, u32)>,
    /// Fan CBB force cycles out over the installed rayon pool. CBBs only
    /// touch their own state during [`TimedCbb::step_force_collect`];
    /// per-CBB completion records are merged in CBB index order, so the
    /// result is bit-identical to the serial walk.
    par_cbbs: bool,
    /// Per-CBB completion scratch for the parallel walk (reused across
    /// cycles — no steady-state allocation).
    cbb_scratch: Vec<Vec<(ChipCoord, u32, u32)>>,
    /// Flight recorder for this node's event stream (off by default).
    trace: NodeRecorder,
    /// Global cluster cycle to stamp chip-emitted events with. The chip's
    /// own `cycle` counter only advances while the chip is ticked, so the
    /// cluster driver keeps this field synced to the global clock.
    trace_now: u64,
    /// Last observed (dispatched, ejected) CBB counter sums, for per-cycle
    /// `PeActivity` diffs.
    pe_prev: (u64, u64),
}

/// What the chip's force-phase datapath is doing right now, as seen from
/// outside — the driver's stall-attribution probe for *ticked* chips.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForceActivity {
    /// At least one PE is evaluating pairs: the cycle is productive.
    PeBusy,
    /// PEs idle, but force/broadcast traffic is still draining through
    /// `frc_out`/`bcast` queues, the force rings, or the EX egress.
    OutputBackpressure,
    /// PEs idle with input work still in transit (position rings, EX
    /// ingress) — the filter banks are starved.
    InputStarved,
}


impl TimedChip {
    /// Build a chip for a block of the simulation space.
    pub fn new(cfg: ChipConfig, geo: ChipGeometry, units: UnitSystem, dt_fs: f64) -> Self {
        cfg.validate().expect("invalid chip config");
        let mut dp = ForceDatapath::new(&PairTable::new(units), cfg.hw.table);
        if let Some(params) = cfg.electrostatics {
            dp = dp.with_electrostatics(params);
        }
        if cfg.cutoff_cells < 1.0 {
            dp = dp.with_cutoff(cfg.cutoff_cells);
        }
        let n = geo.num_cbbs();
        let multi = geo.num_chips() > 1;
        let nodes = n + usize::from(multi);
        let send_chips = geo.send_chips();
        let recv_chips = geo.recv_chips();
        assert!(
            send_chips.len() <= 32,
            "remote destination mask is u32: at most 32 peer chips"
        );

        // Destination masks per CBB.
        let mut local_masks = vec![0u64; n];
        let mut remote_masks = vec![0u32; n];
        for cbb in 0..n as u16 {
            for d in geo.halfshell_dests(cbb) {
                if d.chip == geo.chip {
                    local_masks[cbb as usize] |= 1 << d.cbb;
                } else {
                    let b = send_chips
                        .iter()
                        .position(|c| *c == d.chip)
                        .expect("dest chip in send list");
                    remote_masks[cbb as usize] |= 1 << b;
                }
            }
        }

        let mut acc_over_mass = [0.0f32; Element::COUNT];
        for e in Element::ALL {
            acc_over_mass[e.index()] = (units.acc_factor() / e.mass()) as f32;
        }

        let spes = cfg.spes_per_cbb as usize;
        TimedChip {
            dp,
            units,
            dt_fs,
            acc_over_mass,
            cbbs: (0..n as u16)
                .map(|i| TimedCbb::new(&cfg, geo.cbb_gcell(i)))
                .collect(),
            pos_rings: (0..spes)
                .map(|_| Ring::new(nodes, Direction::Clockwise))
                .collect(),
            frc_rings: (0..spes)
                .map(|_| Ring::new(nodes, Direction::CounterClockwise))
                .collect(),
            mig_ring: Ring::new(nodes, Direction::Clockwise),
            cycle: 0,
            phase: Phase::Idle,
            local_masks,
            remote_masks,
            send_chips,
            recv_chips,
            pos_egress: VecDeque::new(),
            frc_egress: VecDeque::new(),
            mig_egress: VecDeque::new(),
            pos_ingress: VecDeque::new(),
            frc_ingress: VecDeque::new(),
            mig_ingress: VecDeque::new(),
            remote_pos_outstanding: HashMap::new(),
            frc_issued_to: HashMap::new(),
            halo_mask_cache: HashMap::new(),
            pr_stats: vec![Activity::with_capacity(nodes as u64); spes],
            fr_stats: vec![Activity::with_capacity(nodes as u64); spes],
            mu_ring_stats: Activity::with_capacity(nodes as u64),
            migrations: 0,
            last_bcast: vec![vec![0; spes]; n],
            bcast_cooldown: 0,
            traffic: TrafficCounters::default(),
            completed_buf: Vec::new(),
            par_cbbs: false,
            cbb_scratch: vec![Vec::new(); n],
            trace: NodeRecorder::off(),
            trace_now: 0,
            pe_prev: (0, 0),
            cfg,
            geo,
        }
    }

    /// Chip configuration.
    pub fn config(&self) -> &ChipConfig {
        &self.cfg
    }

    /// Chip geometry.
    pub fn geometry(&self) -> &ChipGeometry {
        &self.geo
    }

    /// Shared datapath.
    pub fn datapath(&self) -> &ForceDatapath {
        &self.dp
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// EX-node index on the rings (only meaningful multi-chip).
    fn ex_node(&self) -> usize {
        self.cbbs.len()
    }

    /// Load this chip's share of a particle system (the cells inside its
    /// block).
    pub fn load(&mut self, sys: &ParticleSystem) {
        assert_eq!(sys.space, self.geo.global, "system/geometry mismatch");
        for cbb in &mut self.cbbs {
            cbb.id.clear();
            cbb.elem.clear();
            cbb.offset.clear();
            cbb.vel.clear();
            cbb.force.clear();
        }
        for i in 0..sys.len() {
            let cc = sys.space.cell_of(sys.pos[i]);
            let Some(cbb_idx) = self.geo.cbb_of_gcell(cc) else {
                continue;
            };
            let off = sys.pos[i] - Vec3::new(cc.x as f64, cc.y as f64, cc.z as f64);
            let v = sys.vel[i];
            self.cbbs[cbb_idx as usize].push_particle(
                sys.id[i],
                sys.element[i],
                crate::functional::quantize_offset(off),
                [v.x as f32, v.y as f32, v.z as f32],
            );
        }
    }

    /// Install (or disable) the flight recorder on this chip. Resets the
    /// recorder and re-bases the `PeActivity` diff counters.
    pub fn set_trace(&mut self, cfg: TraceConfig) {
        self.trace = NodeRecorder::new(cfg);
        self.trace_now = 0;
        self.pe_prev = self.pe_counters();
    }

    /// Sync the global-cycle stamp used for chip-emitted events. The
    /// cluster driver calls this before every tick: the chip's own
    /// `cycle` counter only advances while the chip runs, so it diverges
    /// from the global clock on skipped cycles.
    #[inline]
    pub fn set_trace_now(&mut self, cycle: u64) {
        self.trace_now = cycle;
    }

    /// The chip's recorder (the driver appends its per-node events here
    /// so each node has exactly one ordered stream).
    pub fn trace_mut(&mut self) -> &mut NodeRecorder {
        &mut self.trace
    }

    /// Drain the captured event stream.
    pub fn take_trace(&mut self) -> NodeStream {
        self.trace.take()
    }

    fn pe_counters(&self) -> (u64, u64) {
        let mut dispatched = 0;
        let mut ejected = 0;
        for cbb in &self.cbbs {
            dispatched += cbb.dispatched;
            ejected += cbb.ejected;
        }
        (dispatched, ejected)
    }

    /// Classify what the force-phase datapath is doing (stall-attribution
    /// probe; see [`ForceActivity`]). Meaningful right after a force tick.
    pub fn force_activity(&self) -> ForceActivity {
        for cbb in &self.cbbs {
            for spe in &cbb.spes {
                if spe.pes.iter().any(|pe| !pe.is_idle()) {
                    return ForceActivity::PeBusy;
                }
            }
        }
        let output_live = self
            .cbbs
            .iter()
            .flat_map(|c| c.spes.iter())
            .any(|s| !s.frc_out.is_empty() || !s.bcast.is_empty())
            || self.frc_rings.iter().any(|r| !r.is_empty())
            || !self.frc_egress.is_empty()
            || !self.pos_egress.is_empty();
        if output_live {
            ForceActivity::OutputBackpressure
        } else {
            ForceActivity::InputStarved
        }
    }

    /// Fan CBB force cycles out over the installed rayon pool (call from
    /// inside `ThreadPool::install` to engage). Results are bit-identical
    /// to the serial walk for any thread count.
    pub fn set_parallel_cbbs(&mut self, on: bool) {
        self.par_cbbs = on;
    }

    /// Enable/disable the CBBs' fast-path execution (idle-SPE skipping,
    /// precomputed station scans). Bit-identical to the reference
    /// per-cycle walk; off by default so the plain interpretation stays
    /// the oracle the fast path is validated against.
    pub fn set_fast_path(&mut self, on: bool) {
        for cbb in &mut self.cbbs {
            cbb.set_fast_path(on);
        }
    }

    /// Enable/disable the SoA scan path on every CBB (see
    /// [`TimedCbb::set_soa_scan`]). Bit-identical to the scalar path.
    pub fn set_soa_scan(&mut self, on: bool) {
        for cbb in &mut self.cbbs {
            cbb.set_soa_scan(on);
        }
    }

    /// Burst window W for the force phase: the number of upcoming cycles
    /// provably free of chip-boundary events, during which
    /// [`TimedChip::step_force_cycle`] reduces to the CBB-internal walk
    /// alone. Returns 0 unless the chip's external interfaces are quiet
    /// (precondition *P*): every position/force ring empty, EX
    /// ingress/egress queues empty, and every SPE's `bcast`/`frc_out`
    /// queue empty. Under *P*, ring rotation records zero occupancy
    /// (`Activity::record(0, false)` is a no-op), no deliveries or
    /// captures can trigger, and the injection stage has nothing to
    /// inject — so the only live work is [`TimedCbb::step_force_collect`].
    ///
    /// W combines the CBBs' per-kind bounds
    /// ([`TimedCbb::force_burst_bound`]):
    ///
    /// * min over CBBs of the *boundary* bound — no `frc_out` push or
    ///   remote completion record for W cycles, keeping *P* invariant
    ///   across the whole window. Home-internal ejections (local FC
    ///   accumulations, recordless discards) are chip-internal and are
    ///   free to happen inside the window — the per-cycle walk the burst
    ///   replaces handles them in exactly the same place.
    /// * max over CBBs of the *completion* bound — while any CBB provably
    ///   still holds work, the chip cannot be `force_phase_local_idle`,
    ///   so the reference walk would have stepped it on every one of
    ///   these W cycles. This keeps the burst from running idle cycles
    ///   the per-cycle engines never execute (which would skew chip-local
    ///   cycle counts and stall ledgers). In the force-phase tail —
    ///   ring traffic drained, only home-internal `i < j` scans left —
    ///   this is the bound that actually opens wide windows.
    pub fn force_burst_window(&self) -> u64 {
        let quiet = self.pos_rings.iter().all(Ring::is_empty)
            && self.frc_rings.iter().all(Ring::is_empty)
            && self.pos_ingress.is_empty()
            && self.frc_ingress.is_empty()
            && self.pos_egress.is_empty()
            && self.frc_egress.is_empty()
            && self
                .cbbs
                .iter()
                .flat_map(|c| c.spes.iter())
                .all(|s| s.bcast.is_empty() && s.frc_out.is_empty());
        if !quiet {
            return 0;
        }
        let mut boundary = u64::MAX;
        let mut completion = 0u64;
        for cbb in &self.cbbs {
            let (b, c) = cbb.force_burst_bound();
            boundary = boundary.min(b);
            completion = completion.max(c);
        }
        boundary.min(completion)
    }

    /// Advance the force phase `w` cycles in one burst, `w ≤`
    /// [`TimedChip::force_burst_window`]. Equivalent to `w` calls of
    /// [`TimedChip::step_force_cycle`] by the window proof; the walk runs
    /// CBB-major (each CBB's `w` cycles in one tight inner loop) because
    /// CBBs don't interact below the (quiet) ring layer, which is the
    /// cache-friendly order the per-cycle interpreter can't use.
    pub fn run_force_burst(&mut self, w: u64) {
        debug_assert_eq!(self.phase, Phase::Force);
        debug_assert!(w <= self.force_burst_window());
        if self.trace.wants(TraceLevel::Full) {
            // Full-level tracing records per-cycle PE activity, so take
            // the reference per-cycle walk, advancing the global-cycle
            // stamp through the window.
            let base = self.trace_now;
            for i in 0..w {
                self.trace_now = base + i;
                self.step_force_cycle();
            }
            return;
        }
        let start = self.cycle;
        let dp = &self.dp;
        let run = |cbb: &mut TimedCbb, out: &mut Vec<(ChipCoord, u32, u32)>| {
            out.clear();
            for c in 0..w {
                cbb.step_force_collect(start + c, dp, out);
            }
            debug_assert!(out.is_empty(), "burst window must be event-free");
        };
        if self.par_cbbs {
            use rayon::prelude::*;
            type CbbJob<'a> = (&'a mut TimedCbb, &'a mut Vec<(ChipCoord, u32, u32)>);
            let mut jobs: Vec<CbbJob<'_>> =
                self.cbbs.iter_mut().zip(self.cbb_scratch.iter_mut()).collect();
            jobs.par_iter_mut().for_each(|(cbb, out)| run(cbb, out));
        } else {
            for (cbb, out) in self.cbbs.iter_mut().zip(self.cbb_scratch.iter_mut()) {
                run(cbb, out);
            }
        }
        self.cycle += w;
    }

    /// Total particles on this chip.
    pub fn num_particles(&self) -> usize {
        self.cbbs.iter().map(TimedCbb::len).sum()
    }

    /// Write this chip's particles back into `sys` by stable ID.
    pub fn store_into(&self, sys: &mut ParticleSystem) {
        for cbb in &self.cbbs {
            let base = Vec3::new(
                cbb.gcell.x as f64,
                cbb.gcell.y as f64,
                cbb.gcell.z as f64,
            );
            for i in 0..cbb.len() {
                let idx = cbb.id[i] as usize;
                let [ox, oy, oz] = cbb.offset[i].to_f64();
                sys.pos[idx] = base + Vec3::new(ox, oy, oz);
                sys.vel[idx] = Vec3::new(
                    cbb.vel[i][0] as f64,
                    cbb.vel[i][1] as f64,
                    cbb.vel[i][2] as f64,
                );
                sys.force[idx] = Vec3::new(
                    cbb.force[i][0].to_f64(),
                    cbb.force[i][1].to_f64(),
                    cbb.force[i][2].to_f64(),
                );
                sys.element[idx] = cbb.elem[i];
            }
        }
    }

    /// Reset all utilization and traffic counters (start of a measurement
    /// window).
    pub fn reset_stats(&mut self) {
        let nodes = (self.cbbs.len() + usize::from(self.geo.num_chips() > 1)) as u64;
        for a in self.pr_stats.iter_mut().chain(self.fr_stats.iter_mut()) {
            *a = Activity::with_capacity(nodes);
        }
        self.mu_ring_stats = Activity::with_capacity(nodes);
        for cbb in &mut self.cbbs {
            cbb.mu_stats = Activity::with_capacity(1);
            for spe in &mut cbb.spes {
                for pe in &mut spe.pes {
                    pe.filter_stats = Activity::with_capacity(self.cfg.hw.filters_per_pe as u64);
                    pe.pe_stats = Activity::with_capacity(1);
                }
            }
        }
        self.migrations = 0;
        self.traffic = TrafficCounters::default();
        self.frc_issued_to.clear();
    }

    /// Begin the force-evaluation phase.
    pub fn begin_force_phase(&mut self) {
        assert!(self.phase != Phase::Force, "already in force phase");
        self.phase = Phase::Force;
        for i in 0..self.cbbs.len() {
            let (lm, rm) = (self.local_masks[i], self.remote_masks[i]);
            self.cbbs[i].begin_force_phase(self.geo.chip, i as u16, lm, rm);
        }
        self.bcast_cooldown = if self.cfg.hw.bcast_cooldown > 0 {
            self.cfg.hw.bcast_cooldown as u64
        } else {
            // Auto: pace the PC to the rate its 13 receivers retire
            // positions (scan + pipeline-drain over the SPE filter bank).
            let total: usize = self.cbbs.iter().map(TimedCbb::len).sum();
            let avg_home = (total / self.cbbs.len().max(1)).max(1) as u64;
            let filters_per_spe =
                (self.cfg.hw.filters_per_pe * self.cfg.pes_per_spe) as u64;
            (13 * (avg_home + self.cfg.hw.force_pipe_latency as u64) / filters_per_spe).max(1)
        };
        for row in &mut self.last_bcast {
            row.iter_mut().for_each(|c| *c = 0);
        }
    }

    /// One force-phase cycle.
    pub fn step_force_cycle(&mut self) {
        debug_assert_eq!(self.phase, Phase::Force);
        let multi = self.geo.num_chips() > 1;
        let ex = self.ex_node();
        let n = self.cbbs.len();

        // 1. Rotate rings, recording activity.
        for k in 0..self.pos_rings.len() {
            let occ = self.pos_rings[k].occupancy() as u64;
            self.pr_stats[k].record(occ, occ > 0);
            self.pos_rings[k].rotate();
            let occ = self.frc_rings[k].occupancy() as u64;
            self.fr_stats[k].record(occ, occ > 0);
            self.frc_rings[k].rotate();
        }

        // 2. Ring-node processing.
        for k in 0..self.pos_rings.len() {
            // Position ring: PRN delivery at CBB nodes.
            for node in 0..n {
                let deliver = match self.pos_rings[k].at(node) {
                    Some(f) => f.local_mask & (1 << node) != 0,
                    None => false,
                };
                if deliver && !self.cbbs[node].spes[k].pos_in.is_full() {
                    let slot_ref = self.pos_rings[k].at_mut(node);
                    let flit_ref = slot_ref.as_mut().expect("checked");
                    flit_ref.local_mask &= !(1 << node);
                    let flit = *flit_ref;
                    if flit.exhausted() {
                        *slot_ref = None;
                    }
                    let rcid = self.geo.rcid(flit.src_gcell, self.cbbs[node].gcell);
                    let remote = flit.owner_chip != self.geo.chip;
                    let entry = NbrEntry {
                        concat: ForceDatapath::concat(rcid, flit.offset),
                        elem: flit.elem,
                        scan_from: 0,
                        kind: NbrKind::Ring {
                            owner_chip: flit.owner_chip,
                            owner_cbb: flit.owner_cbb,
                            slot: flit.slot,
                            remote,
                        },
                    };
                    self.cbbs[node].spes[k]
                        .pos_in
                        .push(entry).expect("room checked");
                }
                // else: flit keeps rotating and retries next lap
            }
            // EX capture of remote-destined positions.
            if multi {
                let capture = matches!(self.pos_rings[k].at(ex), Some(f) if f.remote_mask != 0);
                if capture {
                    let slot_ref = self.pos_rings[k].at_mut(ex);
                    let flit_ref = slot_ref.as_mut().expect("checked");
                    let mask = flit_ref.remote_mask;
                    flit_ref.remote_mask = 0;
                    let flit = *flit_ref;
                    if flit.exhausted() {
                        *slot_ref = None;
                    }
                    for b in 0..self.send_chips.len() {
                        if mask & (1 << b) != 0 {
                            let peer = self.send_chips[b];
                            *self.traffic.pos_sent.entry(peer).or_default() += 1;
                            self.pos_egress.push_back((peer, flit));
                        }
                    }
                }
            }

            // Force ring: owner delivery, EX capture of remote-owned.
            for node in 0..n {
                let deliver = matches!(
                    self.frc_rings[k].at(node),
                    Some(f) if f.owner_chip == self.geo.chip && f.owner_cbb as usize == node
                );
                if deliver {
                    let flit = self.frc_rings[k].take(node).expect("checked");
                    self.cbbs[node].accumulate_ring_force(&flit);
                    self.traffic.frc_recv += 1;
                }
            }
            if multi {
                let capture =
                    matches!(self.frc_rings[k].at(ex), Some(f) if f.owner_chip != self.geo.chip);
                if capture {
                    let flit = self.frc_rings[k].take(ex).expect("checked");
                    *self.traffic.frc_sent.entry(flit.owner_chip).or_default() += 1;
                    self.frc_egress.push_back((flit.owner_chip, flit));
                }
            }
        }

        // 3. CBB internals. Each CBB tick only touches its own state, so
        // the walk may fan out over a rayon pool; completion records are
        // merged in CBB index order either way.
        self.completed_buf.clear();
        let mut buf = std::mem::take(&mut self.completed_buf);
        if self.par_cbbs {
            use rayon::prelude::*;
            let cycle = self.cycle;
            let dp = &self.dp;
            type CbbJob<'a> = (&'a mut TimedCbb, &'a mut Vec<(ChipCoord, u32, u32)>);
            let mut jobs: Vec<CbbJob<'_>> =
                self.cbbs.iter_mut().zip(self.cbb_scratch.iter_mut()).collect();
            jobs.par_iter_mut().for_each(|(cbb, out)| {
                out.clear();
                cbb.step_force_collect(cycle, dp, out);
            });
            for out in &mut self.cbb_scratch {
                buf.append(out);
            }
        } else {
            for cbb in &mut self.cbbs {
                cbb.step_force_collect(self.cycle, &self.dp, &mut buf);
            }
        }
        for &(origin, completed, issued) in &buf {
            *self.remote_pos_outstanding.entry(origin).or_default() -= completed as i64;
            if issued > 0 {
                *self.frc_issued_to.entry(origin).or_default() += issued as u64;
            }
        }
        self.completed_buf = buf;

        // 4. Injections.
        for k in 0..self.pos_rings.len() {
            for (i, cbb) in self.cbbs.iter_mut().enumerate() {
                let spe = &mut cbb.spes[k];
                let cooled = self.cycle >= self.last_bcast[i][k] + self.bcast_cooldown
                    || self.last_bcast[i][k] == 0;
                if cooled {
                    if let Some(flit) = spe.bcast.front().copied() {
                        if self.pos_rings[k].inject(i, flit).is_ok() {
                            spe.bcast.pop_front();
                            self.last_bcast[i][k] = self.cycle.max(1);
                        }
                    }
                }
                if let Some(&flit) = spe.frc_out.peek() {
                    if self.frc_rings[k].inject(i, flit).is_ok() {
                        spe.frc_out.pop();
                    }
                }
            }
            if multi {
                // EX ingress: one flit per ring per cycle, ring chosen by
                // slot parity (the PC0/PC1 interleave of §4.6).
                if let Some(pos) = self.pos_ingress.front() {
                    if pos.slot as usize % self.pos_rings.len() == k {
                        let flit = *pos;
                        if self.pos_rings[k].inject(ex, flit).is_ok() {
                            self.pos_ingress.pop_front();
                        }
                    }
                }
                if let Some(frc) = self.frc_ingress.front() {
                    if frc.slot as usize % self.frc_rings.len() == k {
                        let flit = *frc;
                        if self.frc_rings[k].inject(ex, flit).is_ok() {
                            self.frc_ingress.pop_front();
                        }
                    }
                }
            }
        }

        if self.trace.wants(TraceLevel::Full) {
            let (dispatched, ejected) = self.pe_counters();
            let (pd, pj) = self.pe_prev;
            if dispatched != pd || ejected != pj {
                self.trace.push(
                    self.trace_now,
                    EventKind::PeActivity {
                        dispatched: (dispatched - pd) as u32,
                        ejected: (ejected - pj) as u32,
                    },
                );
                self.pe_prev = (dispatched, ejected);
            }
        }

        self.cycle += 1;
    }

    /// True when this chip has no local force-phase work left. In
    /// multi-chip mode remote work may still arrive; the cluster combines
    /// this with the chained-synchronization handshakes.
    pub fn force_phase_local_idle(&self) -> bool {
        self.cbbs.iter().all(TimedCbb::force_idle)
            && self.pos_rings.iter().all(Ring::is_empty)
            && self.frc_rings.iter().all(Ring::is_empty)
            && self.pos_ingress.is_empty()
            && self.frc_ingress.is_empty()
    }

    /// True when all positions destined to peer chips have left the chip
    /// (broadcast queues empty and no remote-masked flit on a ring).
    pub fn all_positions_departed(&self) -> bool {
        self.cbbs
            .iter()
            .flat_map(|c| c.spes.iter())
            .all(|s| s.bcast.is_empty())
            && self
                .pos_rings
                .iter()
                .all(|r| (0..r.len()).all(|i| r.at(i).is_none_or(|f| f.remote_mask == 0)))
            && self.pos_egress.is_empty()
    }

    /// Outstanding remote-origin work from one peer (ingested position
    /// deliveries not yet fully evaluated).
    pub fn outstanding_from(&self, origin: ChipCoord) -> i64 {
        self.remote_pos_outstanding
            .get(&origin)
            .copied()
            .unwrap_or(0)
    }

    /// True when force flits owed to peers have all left the EX queue.
    pub fn frc_egress_empty(&self) -> bool {
        self.frc_egress.is_empty()
    }

    /// True when every force flit this chip ever issued toward `origin`
    /// has been captured by the EX node (none remain in frc-out FIFOs or
    /// on the force rings).
    pub fn frc_drained_to(&self, origin: ChipCoord) -> bool {
        let issued = self.frc_issued_to.get(&origin).copied().unwrap_or(0);
        let captured = self.traffic.frc_sent.get(&origin).copied().unwrap_or(0);
        debug_assert!(captured <= issued);
        issued == captured
    }

    /// True when this chip's own MU streaming and remote-migrant
    /// dispatch are finished (sending side of the MU handshake).
    pub fn all_migrants_departed(&self) -> bool {
        self.cbbs.iter().all(|c| c.mu_idle()) && {
            // no remote-destined flit still on the MU ring
            (0..self.mig_ring.len()).all(|i| {
                self.mig_ring
                    .at(i)
                    .is_none_or(|m| self.geo.chip_of_gcell(m.dest_gcell) == self.geo.chip)
            })
        } && self.mig_egress.is_empty()
    }

    /// Begin the motion-update phase.
    pub fn begin_mu_phase(&mut self) {
        assert_eq!(self.phase, Phase::Force, "MU follows force evaluation");
        self.phase = Phase::MotionUpdate;
        for cbb in &mut self.cbbs {
            cbb.begin_mu_phase();
        }
    }

    /// One motion-update cycle.
    pub fn step_mu_cycle(&mut self) {
        debug_assert_eq!(self.phase, Phase::MotionUpdate);
        let multi = self.geo.num_chips() > 1;
        let ex = self.ex_node();
        let n = self.cbbs.len();

        let occ = self.mig_ring.occupancy() as u64;
        self.mu_ring_stats.record(occ, occ > 0);
        self.mig_ring.rotate();

        // deliveries
        for node in 0..n {
            let deliver = matches!(
                self.mig_ring.at(node),
                Some(m) if self.geo.cbb_of_gcell(m.dest_gcell) == Some(node as u16)
            );
            if deliver {
                let m = self.mig_ring.take(node).expect("checked");
                self.cbbs[node].receive_migrant(m);
            }
        }
        if multi {
            let capture = matches!(
                self.mig_ring.at(ex),
                Some(m) if self.geo.chip_of_gcell(m.dest_gcell) != self.geo.chip
            );
            if capture {
                let m = self.mig_ring.take(ex).expect("checked");
                let peer = self.geo.chip_of_gcell(m.dest_gcell);
                *self.traffic.mig_sent.entry(peer).or_default() += 1;
                self.mig_egress.push_back((peer, m));
            }
        }

        // MU units
        for cbb in &mut self.cbbs {
            cbb.step_mu(self.cycle, self.dt_fs, &self.acc_over_mass, &self.geo.global);
        }

        // injections
        for (i, cbb) in self.cbbs.iter_mut().enumerate() {
            if let Some(m) = cbb.mig_out.front().copied() {
                if self.mig_ring.inject(i, m).is_ok() {
                    cbb.mig_out.pop_front();
                    self.migrations += 1;
                }
            }
        }
        if multi {
            if let Some(m) = self.mig_ingress.front().copied() {
                if self.mig_ring.inject(ex, m).is_ok() {
                    self.mig_ingress.pop_front();
                }
            }
        }

        self.cycle += 1;
    }

    /// True when local MU work is finished (remote migrants may still be
    /// in flight cluster-wide).
    pub fn mu_phase_local_idle(&self) -> bool {
        self.cbbs.iter().all(TimedCbb::mu_idle)
            && self.mig_ring.is_empty()
            && self.mig_ingress.is_empty()
            && self.mig_egress.is_empty()
    }

    /// Finish the MU phase: compact cell arrays and return to idle.
    pub fn end_mu_phase(&mut self) {
        assert_eq!(self.phase, Phase::MotionUpdate);
        for cbb in &mut self.cbbs {
            cbb.end_mu_phase();
        }
        self.phase = Phase::Idle;
        // remote_pos_outstanding intentionally persists: a fast neighbour
        // may already have delivered next-step positions while this chip
        // was still in motion update (the chained-sync head start).
    }

    // ------------------------------------------------------------------
    // EX-node interfaces for the cluster driver.
    // ------------------------------------------------------------------

    /// Drain position flits departing to peer chips.
    pub fn drain_pos_egress(&mut self) -> Vec<(ChipCoord, PosFlit)> {
        self.pos_egress.drain(..).collect()
    }

    /// Drain force flits departing to peer chips.
    pub fn drain_frc_egress(&mut self) -> Vec<(ChipCoord, FrcFlit)> {
        self.frc_egress.drain(..).collect()
    }

    /// Drain migration flits departing to peer chips.
    pub fn drain_mig_egress(&mut self) -> Vec<(ChipCoord, MigFlit)> {
        self.mig_egress.drain(..).collect()
    }

    /// Ingest a position flit from a peer chip: compute its local
    /// destination mask (the GCID→LCID conversion point, §4.2) and queue
    /// it for EX-node injection.
    pub fn ingest_remote_pos(&mut self, mut flit: PosFlit) {
        let key = (flit.src_gcell.x, flit.src_gcell.y, flit.src_gcell.z);
        let mask = match self.halo_mask_cache.get(&key) {
            Some(&m) => m,
            None => {
                let m = self.local_mask_for_source(flit.src_gcell);
                self.halo_mask_cache.insert(key, m);
                m
            }
        };
        assert!(mask != 0, "received a position with no local destinations");
        flit.local_mask = mask;
        flit.remote_mask = 0;
        *self
            .remote_pos_outstanding
            .entry(flit.owner_chip)
            .or_default() += mask.count_ones() as i64;
        *self.traffic.pos_recv.entry(flit.owner_chip).or_default() += 1;
        self.pos_ingress.push_back(flit);
    }

    /// Ingest a force flit owned by this chip.
    pub fn ingest_remote_frc(&mut self, flit: FrcFlit) {
        debug_assert_eq!(flit.owner_chip, self.geo.chip);
        self.traffic.frc_recv_remote += 1;
        self.frc_ingress.push_back(flit);
    }

    /// Ingest a migrating particle owned by this chip's block.
    pub fn ingest_remote_mig(&mut self, flit: MigFlit) {
        debug_assert_eq!(self.geo.chip_of_gcell(flit.dest_gcell), self.geo.chip);
        self.mig_ingress.push_back(flit);
    }

    /// Local CBBs (as a mask) that must evaluate particles from a given
    /// source cell: the intersection of the source's half-shell
    /// destinations with this chip's block.
    fn local_mask_for_source(&self, src: CellCoord) -> u64 {
        let mut mask = 0u64;
        for off in fasda_md::celllist::HALF_SHELL_OFFSETS {
            let dest = self.geo.global.wrap_coord(src.offset(off));
            if let Some(cbb) = self.geo.cbb_of_gcell(dest) {
                mask |= 1 << cbb;
            }
        }
        mask
    }

    // ------------------------------------------------------------------
    // Single-chip convenience driver.
    // ------------------------------------------------------------------

    /// Run one complete timestep (single-chip mode only) and report.
    pub fn run_timestep(&mut self) -> TimestepReport {
        assert_eq!(
            self.geo.num_chips(),
            1,
            "run_timestep drives a single chip; use fasda-cluster for multi-chip"
        );
        self.reset_stats();
        self.begin_force_phase();
        let start = self.cycle;
        while !self.force_phase_local_idle() {
            self.step_force_cycle();
            assert!(
                self.cycle - start < MAX_PHASE_CYCLES,
                "force phase failed to converge"
            );
        }
        let force_cycles = self.cycle - start;

        self.begin_mu_phase();
        let mu_start = self.cycle;
        while !self.mu_phase_local_idle() {
            self.step_mu_cycle();
            assert!(
                self.cycle - mu_start < MAX_PHASE_CYCLES,
                "MU phase failed to converge"
            );
        }
        let mu_cycles = self.cycle - mu_start;
        self.end_mu_phase();

        self.report(force_cycles, mu_cycles)
    }

    /// Assemble the utilization report for a window of
    /// `force_cycles + mu_cycles` cycles.
    pub fn report(&self, force_cycles: u64, mu_cycles: u64) -> TimestepReport {
        let mut stats = StatSet::new();
        for a in &self.pr_stats {
            stats.add("PR", *a);
        }
        for a in &self.fr_stats {
            stats.add("FR", *a);
        }
        stats.add("MUR", self.mu_ring_stats);
        let mut valid_pairs = 0;
        let mut comparisons = 0;
        for cbb in &self.cbbs {
            stats.add("MU", cbb.mu_stats);
            for spe in &cbb.spes {
                for pe in &spe.pes {
                    stats.add("Filter", pe.filter_stats);
                    stats.add("PE", pe.pe_stats);
                    valid_pairs += pe.pe_stats.work;
                    comparisons += pe.filter_stats.work;
                }
            }
        }
        TimestepReport {
            force_cycles,
            mu_cycles,
            stats,
            valid_pairs,
            comparisons,
            migrations: self.migrations,
        }
    }

    /// The unit system in use.
    pub fn units(&self) -> UnitSystem {
        self.units
    }
}

/// Checkpointing: the configuration, geometry, datapath tables, and every
/// mask/peer list derived from them are rebuilt by [`TimedChip::new`].
/// Captured state is the CBBs, the three ring classes, the cycle counter
/// and phase, the EX-node queues, and the chained-sync outstanding-work
/// map (which intentionally survives phase boundaries — the head-start
/// bookkeeping of §4.4). *Not* captured, by design: utilization/traffic
/// counters and `frc_issued_to` (reset by [`TimedChip::reset_stats`] at
/// every measurement-window start, which is where checkpoints are cut),
/// the broadcast-cooldown clocks and phase-local caches (rebuilt by
/// [`TimedChip::begin_force_phase`]), the halo-mask cache (a pure
/// memoization), and the flight recorder (re-armed per window).
impl fasda_ckpt::Snapshot for TimedChip {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        use fasda_ckpt::Persist;
        fasda_ckpt::snapshot_slice(&self.cbbs, w);
        fasda_ckpt::snapshot_slice(&self.pos_rings, w);
        fasda_ckpt::snapshot_slice(&self.frc_rings, w);
        self.mig_ring.snapshot(w);
        w.put_u64(self.cycle);
        w.put_u8(match self.phase {
            Phase::Idle => 0,
            Phase::Force => 1,
            Phase::MotionUpdate => 2,
        });
        self.pos_egress.save(w);
        self.frc_egress.save(w);
        self.mig_egress.save(w);
        self.pos_ingress.save(w);
        self.frc_ingress.save(w);
        self.mig_ingress.save(w);
        self.remote_pos_outstanding.save(w);
    }
    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        use fasda_ckpt::Persist;
        fasda_ckpt::restore_slice(&mut self.cbbs, r)?;
        fasda_ckpt::restore_slice(&mut self.pos_rings, r)?;
        fasda_ckpt::restore_slice(&mut self.frc_rings, r)?;
        self.mig_ring.restore(r)?;
        self.cycle = r.get_u64()?;
        self.phase = match r.get_u8()? {
            0 => Phase::Idle,
            1 => Phase::Force,
            2 => Phase::MotionUpdate,
            t => return Err(r.malformed(format!("invalid phase tag {t}"))),
        };
        self.pos_egress = Persist::load(r)?;
        self.frc_egress = Persist::load(r)?;
        self.mig_egress = Persist::load(r)?;
        self.pos_ingress = Persist::load(r)?;
        self.frc_ingress = Persist::load(r)?;
        self.mig_ingress = Persist::load(r)?;
        self.remote_pos_outstanding = Persist::load(r)?;
        Ok(())
    }
}
