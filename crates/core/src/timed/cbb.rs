//! The Cell Building Block and Scalable CBB (paper §3.1, §4.5–4.6,
//! Figs. 5, 14, 15).
//!
//! A CBB owns one cell: its Position/Velocity/Force caches, its Motion
//! Update unit, and one or more SPEs. Each **SPE** groups `n` PEs with a
//! position-ring node, a force-ring node, its own share of the cell's
//! broadcast traffic, and `n + 1` force caches (modelled as capacity in
//! the resource model; functionally the banks combine through an adder
//! tree at motion-update time, which we fold into a single accumulator
//! array since each bank has an exclusive writer per cycle).
//!
//! With two SPEs the cell's *outgoing* broadcast is split by particle-slot
//! parity (PC0 even / PC1 odd, §4.6) and each SPE rides its own pair of
//! rings; the home side of pairing always scans the full cell via the
//! HPC.

// Componentwise `for k in 0..3` loops mirror the per-lane datapath.
#![allow(clippy::needless_range_loop)]
use crate::config::ChipConfig;
use crate::datapath::{ForceDatapath, HomeSoa};
use fasda_arith::fixed::{Fix, FixAcc, FixVec3};
use fasda_md::element::Element;
use fasda_md::space::CellCoord;
use fasda_sim::{Activity, Cycle, Fifo, Pipeline};
use std::collections::VecDeque;

use super::pe::{Ejection, NbrEntry, NbrKind, Pe};
use super::ring::{FrcFlit, MigFlit, PosFlit};

/// One SPE: PEs plus its ring-facing queues.
#[derive(Clone, Debug)]
pub struct Spe {
    /// The PEs of this SPE.
    pub pes: Vec<Pe>,
    /// Neighbour positions delivered by this SPE's PRN, awaiting a free
    /// filter station.
    pub pos_in: Fifo<NbrEntry>,
    /// Accumulated neighbour forces awaiting FRN injection.
    pub frc_out: Fifo<FrcFlit>,
    /// Home-particle broadcast flits not yet injected on this SPE's
    /// position ring.
    pub bcast: VecDeque<PosFlit>,
    /// Home-internal pair entries (slot index) not yet dispatched.
    pub home_src: VecDeque<u16>,
    rr_pe: usize,
}

impl Spe {
    fn new(cfg: &ChipConfig) -> Self {
        Spe {
            pes: (0..cfg.pes_per_spe)
                .map(|_| {
                    Pe::new(
                        cfg.hw.filters_per_pe,
                        cfg.hw.force_pipe_latency,
                        cfg.hw.pair_fifo_depth,
                    )
                })
                .collect(),
            pos_in: Fifo::new(cfg.hw.pos_in_fifo_depth),
            frc_out: Fifo::new(cfg.hw.frc_out_fifo_depth),
            bcast: VecDeque::new(),
            home_src: VecDeque::new(),
            rr_pe: 0,
        }
    }

    /// True when the SPE holds no outstanding force-phase work.
    pub fn is_idle(&self) -> bool {
        self.pos_in.is_empty()
            && self.frc_out.is_empty()
            && self.bcast.is_empty()
            && self.home_src.is_empty()
            && self.pes.iter().all(Pe::is_idle)
    }
}

/// A particle arriving by migration, staged until phase compaction.
#[derive(Clone, Copy, Debug)]
struct Arrival {
    id: u32,
    elem: Element,
    offset: FixVec3,
    vel: [f32; 3],
}

/// One Cell Building Block in the timed model.
#[derive(Clone, Debug)]
pub struct TimedCbb {
    /// Global coordinates of the cell this CBB serves.
    pub gcell: CellCoord,
    /// Stable particle IDs.
    pub id: Vec<u32>,
    /// Element types.
    pub elem: Vec<Element>,
    /// Position Cache contents: in-cell fixed-point offsets.
    pub offset: Vec<FixVec3>,
    /// Velocity Cache contents.
    pub vel: Vec<[f32; 3]>,
    /// Combined force accumulators (FC banks + adder tree). Fixed-point
    /// (`Q35.28`, [`FixAcc`]): contributions quantize once on arrival
    /// and integer-add, so the accumulated total is bit-identical no
    /// matter what order ring traffic, local ejections, and PE returns
    /// land in — the property the cluster's chaos guarantees rest on.
    pub force: Vec<[FixAcc; 3]>,
    /// Home coordinates concatenated at RCID (2,2,2), snapshot for the
    /// current force phase.
    pub home_concat: Vec<FixVec3>,
    /// The SPEs of this (S)CBB.
    pub spes: Vec<Spe>,
    /// MU pipeline (slot indices in flight).
    mu_pipe: Pipeline<u16>,
    mu_cursor: u16,
    /// Tombstones for particles that migrated away this MU phase.
    alive: Vec<bool>,
    /// Migrants staged for arrival at compaction.
    arrivals: Vec<Arrival>,
    /// Migration flits awaiting MURN injection.
    pub mig_out: VecDeque<MigFlit>,
    /// Motion-update activity (capacity 1/cycle).
    pub mu_stats: Activity,
    /// Lifetime neighbour-entry dispatches to filter stations
    /// (monotonic; the trace layer diffs it per cycle).
    pub dispatched: u64,
    /// Lifetime station ejections — ring, local, or discard (monotonic).
    pub ejected: u64,
    /// Fast-path execution (see [`TimedCbb::set_fast_path`]).
    fast_path: bool,
    /// SoA-scan execution (see [`TimedCbb::set_soa_scan`]).
    soa_scan: bool,
    /// Home-cell snapshot as structure-of-arrays fixed-point banks,
    /// rebuilt each force phase; feeds the SoA batch kernels.
    soa: HomeSoa,
    /// Scratch buffers reused across force cycles (avoid per-cycle
    /// allocation on the hot path).
    scratch_ej: Vec<Ejection>,
    scratch_ret: Vec<(u16, [f32; 3])>,
}

impl TimedCbb {
    /// Empty CBB for a cell.
    pub fn new(cfg: &ChipConfig, gcell: CellCoord) -> Self {
        TimedCbb {
            gcell,
            id: Vec::new(),
            elem: Vec::new(),
            offset: Vec::new(),
            vel: Vec::new(),
            force: Vec::new(),
            home_concat: Vec::new(),
            spes: (0..cfg.spes_per_cbb).map(|_| Spe::new(cfg)).collect(),
            mu_pipe: Pipeline::new(cfg.hw.mu_latency as u64),
            mu_cursor: 0,
            alive: Vec::new(),
            arrivals: Vec::new(),
            mig_out: VecDeque::new(),
            mu_stats: Activity::with_capacity(1),
            dispatched: 0,
            ejected: 0,
            fast_path: false,
            soa_scan: false,
            soa: HomeSoa::new(),
            scratch_ej: Vec::new(),
            scratch_ret: Vec::new(),
        }
    }

    /// Enable/disable fast-path execution: provably bit-identical
    /// shortcuts (idle-SPE cycle skipping) that the optimized cluster
    /// engine turns on. Off by default so the plain per-cycle
    /// interpretation stays the reference the fast path is validated
    /// against.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
    }

    /// Enable/disable the SoA scan path: neighbour entries are dispatched
    /// through [`Pe::dispatch_planned`], evaluating the whole scan against
    /// the [`HomeSoa`] banks up front while the per-cycle state machine
    /// consumes one comparison per cycle as before. Bit-identical to the
    /// scalar path; off by default so the plain interpretation stays the
    /// reference.
    pub fn set_soa_scan(&mut self, on: bool) {
        self.soa_scan = on;
    }

    /// Load one particle (initialization).
    pub fn push_particle(&mut self, id: u32, elem: Element, offset: FixVec3, vel: [f32; 3]) {
        self.id.push(id);
        self.elem.push(elem);
        self.offset.push(offset);
        self.vel.push(vel);
        self.force.push([FixAcc::ZERO; 3]);
        self.alive.push(true);
    }

    /// Particles currently stored.
    pub fn len(&self) -> usize {
        self.id.len()
    }

    /// True when the cell holds no particles.
    pub fn is_empty(&self) -> bool {
        self.id.is_empty()
    }

    /// Prepare the force phase: snapshot home concats, clear FCs, fill
    /// broadcast and home-internal queues. `local_mask`/`remote_mask` are
    /// the destination masks for this cell's broadcasts (identical for all
    /// its particles).
    pub fn begin_force_phase(&mut self, owner_chip: crate::geometry::ChipCoord, cbb_index: u16, local_mask: u64, remote_mask: u32) {
        let n = self.len();
        self.home_concat.clear();
        self.home_concat
            .extend(self.offset.iter().map(|&o| ForceDatapath::concat((2, 2, 2), o)));
        if self.soa_scan {
            self.soa.rebuild(&self.elem, &self.home_concat);
        }
        for f in &mut self.force {
            *f = [FixAcc::ZERO; 3];
        }
        let spes = self.spes.len();
        for spe in &mut self.spes {
            spe.bcast.clear();
            spe.home_src.clear();
        }
        for slot in 0..n {
            let k = slot % spes;
            if local_mask != 0 || remote_mask != 0 {
                self.spes[k].bcast.push_back(PosFlit {
                    owner_chip,
                    owner_cbb: cbb_index,
                    slot: slot as u16,
                    elem: self.elem[slot],
                    offset: self.offset[slot],
                    src_gcell: self.gcell,
                    local_mask,
                    remote_mask,
                });
            }
            // internal entries: slot i scans j > i; the last slot has none
            if slot + 1 < n {
                self.spes[k].home_src.push_back(slot as u16);
            }
        }
    }

    /// One force-phase cycle of this CBB's dispatchers and PEs.
    ///
    /// Dispatch policy: one neighbour entry per SPE per cycle, preferring
    /// ring deliveries (to relieve ring pressure) over home-internal
    /// entries. Completed *remote-origin* neighbour evaluations are
    /// appended to `completed` as `(origin_chip, completed, frc_issued)`
    /// records for the chained-synchronization bookkeeping — `frc_issued`
    /// is 1 when a force flit was actually emitted toward that origin
    /// (zero-force evaluations are discarded, §5.4).
    pub fn step_force_collect(
        &mut self,
        cycle: Cycle,
        dp: &ForceDatapath,
        completed: &mut Vec<(crate::geometry::ChipCoord, u32, u32)>,
    ) {
        let n_slots = self.len();
        debug_assert_eq!(self.home_concat.len(), n_slots);
        for spe in &mut self.spes {
            // Fast path: a drained SPE's cycle is a provable no-op —
            // nothing to dispatch and every PE records zero work
            // (`Activity::record(0, false)` leaves the counters
            // untouched). Skip the scans; in the force-phase tail most
            // cells sit in this state. (`bcast`/`frc_out` don't matter
            // here: this step never consumes them, the chip's injection
            // stage does.)
            if self.fast_path
                && spe.pos_in.is_empty()
                && spe.home_src.is_empty()
                && spe.pes.iter().all(Pe::is_idle)
            {
                continue;
            }
            // dispatch one entry to a free station (skip the free-station
            // probe when there is nothing to dispatch — the common state
            // once the queues drain and the PEs grind through their scans)
            let pe_count = spe.pes.len();
            let have_work = !spe.pos_in.is_empty() || !spe.home_src.is_empty();
            if let Some(pe_idx) = have_work
                .then(|| {
                    (0..pe_count)
                        .map(|k| (spe.rr_pe + k) % pe_count)
                        .find(|&i| spe.pes[i].has_free_station())
                })
                .flatten()
            {
                let entry = if let Some(e) = spe.pos_in.pop() {
                    Some(e)
                } else {
                    spe.home_src.pop_front().map(|slot| NbrEntry {
                        concat: self.home_concat[slot as usize],
                        elem: self.elem[slot as usize],
                        scan_from: slot + 1,
                        kind: NbrKind::Internal { slot },
                    })
                };
                if let Some(e) = entry {
                    if self.soa_scan {
                        spe.pes[pe_idx].dispatch_planned(e, dp, &self.soa);
                    } else {
                        spe.pes[pe_idx].dispatch(e);
                    }
                    spe.rr_pe = (pe_idx + 1) % pe_count;
                    self.dispatched += 1;
                }
            }

            // PE cycles
            let mut budget = if spe.frc_out.is_full() { 0 } else { 1u32 };
            self.scratch_ej.clear();
            self.scratch_ret.clear();
            for pe in &mut spe.pes {
                if let Some(r) = pe.step(
                    cycle,
                    dp,
                    &self.elem,
                    &self.home_concat,
                    &mut self.scratch_ej,
                    &mut budget,
                ) {
                    self.scratch_ret.push(r);
                }
            }
            for &(slot, f) in &self.scratch_ret {
                let fc = &mut self.force[slot as usize];
                for k in 0..3 {
                    fc[k] += FixAcc::from_f32(f[k]);
                }
            }
            for ej in &self.scratch_ej {
                match *ej {
                    Ejection::Ring(flit, remote) => {
                        spe.frc_out
                            .push(flit).expect("budget guaranteed frc_out space");
                        if remote {
                            completed.push((flit.owner_chip, 1, 1));
                        }
                    }
                    Ejection::Local { slot, force } => {
                        let fc = &mut self.force[slot as usize];
                        for k in 0..3 {
                            fc[k] += FixAcc::from_f32(force[k]);
                        }
                    }
                    Ejection::Discard { origin, remote } => {
                        if remote {
                            completed.push((origin, 1, 0));
                        }
                    }
                }
            }
            self.ejected += self.scratch_ej.len() as u64;
        }
    }

    /// Conservative burst bounds for this CBB, split by event kind (see
    /// [`Pe::burst_bound`]). Valid only while the CBB's external
    /// interfaces are quiet (`bcast`/`frc_out` empty, no ring deliveries
    /// pending) so no new work can arrive besides what the bounds already
    /// account for. Returns `(boundary, completion)`:
    ///
    /// * `boundary` — min cycles before any chip-boundary event (an
    ///   `frc_out` push or a remote completion record). Only
    ///   [`NbrKind::Ring`]-kind work counts: occupied Ring stations via
    ///   [`Pe::burst_bound`], and a pending `pos_in` entry (always
    ///   Ring-kind) that may dispatch next cycle and scan from 0, so it
    ///   can eject no sooner than `home_len − 1` cycles out. Home-internal
    ///   ejections (a local FC accumulation or a recordless discard) are
    ///   chip-internal — [`TimedCbb::step_force_collect`] handles them
    ///   identically inside a burst, so they do *not* close the window.
    /// * `completion` — max cycles before this CBB could possibly go
    ///   force-idle: every occupied station's drain bound, a pending
    ///   `pos_in` entry (`home_len − 1`), and the front home-internal
    ///   entry (slot `s` scans `s+1..home_len`, so `home_len − s − 2`;
    ///   later queue entries dispatch at least one cycle later each and
    ///   never finish sooner). `0` when the CBB holds no work — it is
    ///   already idle.
    pub fn force_burst_bound(&self) -> (u64, u64) {
        let hl = self.home_concat.len() as u64;
        let mut boundary = u64::MAX;
        let mut completion = 0u64;
        for spe in &self.spes {
            for pe in &spe.pes {
                let (b, c) = pe.burst_bound(hl as u16);
                boundary = boundary.min(b);
                completion = completion.max(c);
            }
            if !spe.pos_in.is_empty() {
                boundary = boundary.min(hl.saturating_sub(1));
                completion = completion.max(hl.saturating_sub(1));
            }
            if let Some(&s) = spe.home_src.front() {
                completion = completion.max(hl.saturating_sub(s as u64 + 2));
            }
        }
        (boundary, completion)
    }

    /// Accumulate an arriving neighbour force from the force ring into
    /// the FC (the "FC N" write port, one per cycle by ring construction).
    pub fn accumulate_ring_force(&mut self, flit: &FrcFlit) {
        let fc = &mut self.force[flit.slot as usize];
        for k in 0..3 {
            fc[k] += FixAcc::from_f32(flit.force[k]);
        }
    }

    /// True when this CBB has no outstanding force-phase work (its own
    /// broadcasts may still be travelling the rings — the chip checks
    /// those).
    pub fn force_idle(&self) -> bool {
        self.spes.iter().all(Spe::is_idle)
    }

    /// Prepare the motion-update phase.
    pub fn begin_mu_phase(&mut self) {
        self.mu_cursor = 0;
        self.alive.clear();
        self.alive.resize(self.len(), true);
        debug_assert!(self.arrivals.is_empty());
    }

    /// One MU cycle: stream one slot into the MU pipeline; retire at most
    /// one slot, applying the leapfrog update in the MU's arithmetic.
    /// Migrating particles are tombstoned and queued on the MURN.
    pub fn step_mu(
        &mut self,
        cycle: Cycle,
        dt_fs: f64,
        acc_over_mass: &[f32; Element::COUNT],
        global: &fasda_md::space::SimulationSpace,
    ) {
        let n = self.len() as u16;
        let mut active = false;
        // issue
        if self.mu_cursor < n && self.mu_pipe.can_issue(cycle) {
            self.mu_pipe
                .issue(cycle, self.mu_cursor).expect("can_issue checked");
            self.mu_cursor += 1;
            active = true;
        }
        // retire
        let mut work = 0;
        if let Some(slot) = self.mu_pipe.pop_ready(cycle) {
            let i = slot as usize;
            let aom = acc_over_mass[self.elem[i].index()];
            let mut v = self.vel[i];
            for k in 0..3 {
                v[k] += self.force[i][k].to_f32() * aom * dt_fs as f32;
            }
            self.vel[i] = v;
            let d = FixVec3::new(
                Fix::from_f64(v[0] as f64 * dt_fs),
                Fix::from_f64(v[1] as f64 * dt_fs),
                Fix::from_f64(v[2] as f64 * dt_fs),
            );
            let (wx, mx) = (self.offset[i].x + d.x).wrap_cell();
            let (wy, my) = (self.offset[i].y + d.y).wrap_cell();
            let (wz, mz) = (self.offset[i].z + d.z).wrap_cell();
            let new_off = FixVec3::new(wx, wy, wz);
            if (mx, my, mz) == (0, 0, 0) {
                self.offset[i] = new_off;
            } else {
                self.alive[i] = false;
                let dest = global.wrap_coord(self.gcell.offset((mx, my, mz)));
                self.mig_out.push_back(MigFlit {
                    dest_gcell: dest,
                    id: self.id[i],
                    elem: self.elem[i],
                    offset: new_off,
                    vel: v,
                });
            }
            work = 1;
            active = true;
        }
        self.mu_stats
            .record(work, active || !self.mu_pipe.is_empty());
    }

    /// Stage a migrant delivered by the motion-update ring.
    pub fn receive_migrant(&mut self, m: MigFlit) {
        debug_assert_eq!(m.dest_gcell, self.gcell);
        self.arrivals.push(Arrival {
            id: m.id,
            elem: m.elem,
            offset: m.offset,
            vel: m.vel,
        });
    }

    /// True when this CBB's own MU streaming is finished (migrants may
    /// still be in flight on the ring).
    pub fn mu_idle(&self) -> bool {
        self.mu_cursor as usize >= self.len() && self.mu_pipe.is_empty() && self.mig_out.is_empty()
    }

    /// End the MU phase: drop migrated-away particles and append
    /// arrivals.
    pub fn end_mu_phase(&mut self) {
        let mut w = 0;
        for r in 0..self.len() {
            if self.alive[r] {
                self.id.swap(w, r);
                self.elem.swap(w, r);
                self.offset.swap(w, r);
                self.vel.swap(w, r);
                w += 1;
            }
        }
        self.id.truncate(w);
        self.elem.truncate(w);
        self.offset.truncate(w);
        self.vel.truncate(w);
        for a in std::mem::take(&mut self.arrivals) {
            self.id.push(a.id);
            self.elem.push(a.elem);
            self.offset.push(a.offset);
            self.vel.push(a.vel);
        }
        let n = self.id.len();
        self.force.clear();
        self.force.resize(n, [FixAcc::ZERO; 3]);
        self.alive.clear();
        self.alive.resize(n, true);
    }
}

impl fasda_ckpt::Persist for Arrival {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u32(self.id);
        self.elem.save(w);
        self.offset.save(w);
        self.vel.save(w);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(Arrival {
            id: r.get_u32()?,
            elem: fasda_ckpt::Persist::load(r)?,
            offset: fasda_ckpt::Persist::load(r)?,
            vel: fasda_ckpt::Persist::load(r)?,
        })
    }
}

/// Checkpointing: PE shapes and FIFO depths are configuration; the queues
/// and the round-robin cursor are state.
impl fasda_ckpt::Snapshot for Spe {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        use fasda_ckpt::Persist;
        fasda_ckpt::snapshot_slice(&self.pes, w);
        self.pos_in.snapshot(w);
        self.frc_out.snapshot(w);
        self.bcast.save(w);
        self.home_src.save(w);
        w.put_usize(self.rr_pe);
    }
    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        use fasda_ckpt::Persist;
        fasda_ckpt::restore_slice(&mut self.pes, r)?;
        self.pos_in.restore(r)?;
        self.frc_out.restore(r)?;
        self.bcast = Persist::load(r)?;
        self.home_src = Persist::load(r)?;
        self.rr_pe = r.get_usize()?;
        if self.rr_pe >= self.pes.len().max(1) {
            return Err(r.malformed("round-robin PE cursor out of range"));
        }
        Ok(())
    }
}

/// Checkpointing: the cell assignment (`gcell`) and SPE/PE shapes are
/// configuration. Particle arrays, SPE queues, the MU pipeline and its
/// cursor, tombstones, staged arrivals, and the outbound migration queue
/// are state. Phase-local caches (`home_concat`, the SoA banks) are
/// rebuilt by [`TimedCbb::begin_force_phase`]; the activity counter is
/// reset by the driver at every measurement-window start; scratch buffers
/// carry no state across cycles.
impl fasda_ckpt::Snapshot for TimedCbb {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        use fasda_ckpt::Persist;
        self.id.save(w);
        self.elem.save(w);
        self.offset.save(w);
        self.vel.save(w);
        self.force.save(w);
        fasda_ckpt::snapshot_slice(&self.spes, w);
        self.mu_pipe.snapshot(w);
        w.put_u16(self.mu_cursor);
        self.alive.save(w);
        self.arrivals.save(w);
        self.mig_out.save(w);
        w.put_u64(self.dispatched);
        w.put_u64(self.ejected);
    }
    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        use fasda_ckpt::Persist;
        self.id = Persist::load(r)?;
        self.elem = Persist::load(r)?;
        self.offset = Persist::load(r)?;
        self.vel = Persist::load(r)?;
        self.force = Persist::load(r)?;
        let n = self.id.len();
        if self.elem.len() != n
            || self.offset.len() != n
            || self.vel.len() != n
            || self.force.len() != n
        {
            return Err(r.malformed("particle array lengths disagree"));
        }
        fasda_ckpt::restore_slice(&mut self.spes, r)?;
        self.mu_pipe.restore(r)?;
        self.mu_cursor = r.get_u16()?;
        self.alive = Persist::load(r)?;
        self.arrivals = Persist::load(r)?;
        self.mig_out = Persist::load(r)?;
        self.dispatched = r.get_u64()?;
        self.ejected = r.get_u64()?;
        // Phase-local caches are stale until the next phase begins.
        self.home_concat.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChipConfig;
    use crate::geometry::ChipCoord;
    use fasda_arith::interp::TableConfig;
    use fasda_md::element::PairTable;
    use fasda_md::space::SimulationSpace;
    use fasda_md::units::UnitSystem;

    fn dp() -> ForceDatapath {
        ForceDatapath::new(&PairTable::new(UnitSystem::PAPER), TableConfig::PAPER)
    }

    fn cbb_with(n: usize) -> TimedCbb {
        let cfg = ChipConfig::baseline();
        let mut cbb = TimedCbb::new(&cfg, CellCoord::new(1, 1, 1));
        for i in 0..n {
            let t = (i as f64 + 0.5) / n as f64;
            cbb.push_particle(
                i as u32,
                Element::Na,
                FixVec3::from_f64(t, 0.5, 0.4),
                [0.0; 3],
            );
        }
        cbb
    }

    #[test]
    fn internal_pairs_produce_symmetric_forces() {
        let dp = dp();
        let mut cbb = cbb_with(6);
        cbb.begin_force_phase(ChipCoord::new(0, 0, 0), 0, 0, 0);
        // no broadcasts (masks 0) — only internal entries
        let mut completed = Vec::new();
        for c in 0..2_000u64 {
            cbb.step_force_collect(c, &dp, &mut completed);
            if cbb.force_idle() {
                break;
            }
        }
        assert!(completed.is_empty(), "no remote origins in this test");
        assert!(cbb.force_idle(), "internal evaluation must converge");
        // The two directions of a pair are evaluated by different
        // stations with independent f32 rounding, so cancellation is
        // approximate even on the fixed-point accumulator grid.
        let net: [f64; 3] = cbb.force.iter().fold([0.0; 3], |mut a, f| {
            for k in 0..3 {
                a[k] += f[k].to_f64();
            }
            a
        });
        for k in 0..3 {
            assert!(net[k].abs() < 1e-3, "net force component {k} = {}", net[k]);
        }
    }

    #[test]
    fn broadcast_queue_split_by_parity() {
        let cfg = ChipConfig::variant(crate::config::DesignVariant::C);
        let mut cbb = TimedCbb::new(&cfg, CellCoord::new(0, 0, 0));
        for i in 0..8 {
            cbb.push_particle(i, Element::Na, FixVec3::from_f64(0.5, 0.5, 0.5), [0.0; 3]);
        }
        cbb.begin_force_phase(ChipCoord::new(0, 0, 0), 0, 0b10, 0);
        assert_eq!(cbb.spes.len(), 2);
        assert_eq!(cbb.spes[0].bcast.len(), 4, "even slots on SPE0");
        assert_eq!(cbb.spes[1].bcast.len(), 4, "odd slots on SPE1");
        assert!(cbb.spes[0].bcast.iter().all(|f| f.slot % 2 == 0));
        assert!(cbb.spes[1].bcast.iter().all(|f| f.slot % 2 == 1));
    }

    #[test]
    fn mu_updates_positions_and_velocities() {
        let mut cbb = cbb_with(4);
        let space = SimulationSpace::cubic(3);
        let aom = {
            let mut a = [0.0f32; Element::COUNT];
            for e in Element::ALL {
                a[e.index()] = (UnitSystem::PAPER.acc_factor() / e.mass()) as f32;
            }
            a
        };
        // constant force in +x
        cbb.begin_force_phase(ChipCoord::new(0, 0, 0), 0, 0, 0);
        for f in &mut cbb.force {
            *f = [FixAcc::from_f32(1.0), FixAcc::ZERO, FixAcc::ZERO];
        }
        let before = cbb.offset.clone();
        cbb.begin_mu_phase();
        for c in 0..200u64 {
            cbb.step_mu(c, 2.0, &aom, &space);
            if cbb.mu_idle() {
                break;
            }
        }
        cbb.end_mu_phase();
        for i in 0..cbb.len() {
            assert!(cbb.vel[i][0] > 0.0, "kicked in +x");
            assert!(cbb.offset[i].x > before[i].x, "drifted in +x");
        }
    }

    #[test]
    fn mu_migration_tombstones_and_flit() {
        let mut cbb = cbb_with(1);
        cbb.offset[0] = FixVec3::from_f64(0.999, 0.5, 0.5);
        cbb.vel[0] = [0.01, 0.0, 0.0]; // 0.02 cells per 2 fs step
        let space = SimulationSpace::cubic(3);
        let aom = [0.0f32; Element::COUNT];
        cbb.begin_force_phase(ChipCoord::new(0, 0, 0), 0, 0, 0);
        cbb.begin_mu_phase();
        for c in 0..200u64 {
            cbb.step_mu(c, 2.0, &aom, &space);
            if self_mu_done(&cbb) {
                break;
            }
        }
        assert_eq!(cbb.mig_out.len(), 1);
        let m = cbb.mig_out.pop_front().unwrap();
        assert_eq!(m.dest_gcell, CellCoord::new(2, 1, 1));
        assert_eq!(m.id, 0);
        cbb.end_mu_phase();
        assert_eq!(cbb.len(), 0, "migrant removed");
    }

    fn self_mu_done(cbb: &TimedCbb) -> bool {
        cbb.mu_cursor as usize >= cbb.len() && cbb.mu_pipe.is_empty()
    }

    #[test]
    fn end_mu_appends_arrivals() {
        let mut cbb = cbb_with(2);
        cbb.begin_mu_phase();
        cbb.receive_migrant(MigFlit {
            dest_gcell: cbb.gcell,
            id: 77,
            elem: Element::Ar,
            offset: FixVec3::from_f64(0.1, 0.2, 0.3),
            vel: [0.0; 3],
        });
        cbb.end_mu_phase();
        assert_eq!(cbb.len(), 3);
        assert_eq!(cbb.id[2], 77);
        assert_eq!(cbb.force.len(), 3);
    }
}
