//! The Processing Element: filter stations, pair arbiter, force pipeline
//! (paper §3.3, Fig. 6).
//!
//! A neighbour position arriving from the PRN is "dispatched to one of the
//! registers to pair with the positions from local PC being traversed
//! repeatedly". Each of the PE's filter stations holds one neighbour
//! position and streams the home cell's particles past it, one comparison
//! per cycle. Passing pairs are buffered per-station and arbitrated into
//! the force pipeline (one issue per cycle). Retired forces split two
//! ways: the home component accumulates into the local FC, the neighbour
//! component is negated and accumulated in the station register; when the
//! station's scan is complete **and** its pairs have drained from the
//! pipeline, the accumulated neighbour force is ejected toward the FRN —
//! or discarded if no pair passed ("zero force is simply discarded rather
//! than returned", §5.4).

// Componentwise `for k in 0..3` loops mirror the per-lane datapath.
#![allow(clippy::needless_range_loop)]
use crate::datapath::{FilteredPair, ForceDatapath};
use fasda_arith::fixed::FixVec3;
use fasda_md::element::Element;
use fasda_sim::{Activity, Cycle, Fifo, Pipeline};

use super::ring::FrcFlit;
use crate::geometry::ChipCoord;

/// Where an ejected neighbour force must go.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NbrKind {
    /// The neighbour came from another cell (possibly another chip): the
    /// force returns via the force ring.
    Ring {
        owner_chip: ChipCoord,
        owner_cbb: u16,
        slot: u16,
        /// Whether the owner is a remote chip (for per-origin sync
        /// accounting).
        remote: bool,
    },
    /// A home-internal entry (the half-shell's own-cell `i < j` pairs):
    /// the reaction force lands directly in the local FC at `slot`.
    Internal { slot: u16 },
}

/// A neighbour position occupying a filter station.
#[derive(Clone, Copy, Debug)]
pub struct NbrEntry {
    /// RCID-concatenated coordinates of the neighbour.
    pub concat: FixVec3,
    /// Element type.
    pub elem: Element,
    /// First home slot to scan (0 for ring neighbours; `slot + 1` for
    /// home-internal entries, giving the `i < j` rule).
    pub scan_from: u16,
    /// Force-return routing.
    pub kind: NbrKind,
}

/// A filtered pair in flight toward / inside the force pipeline.
#[derive(Clone, Copy, Debug)]
pub struct PipeJob {
    /// Station that produced the pair (for neighbour-force accumulation).
    pub station: u8,
    /// Home slot of the pair.
    pub home_slot: u16,
    /// Home element.
    pub home_elem: Element,
    /// Neighbour element.
    pub nbr_elem: Element,
    /// Filter output.
    pub pair: FilteredPair,
}

/// One filter station.
#[derive(Clone, Debug)]
struct Station {
    entry: Option<NbrEntry>,
    cursor: u16,
    in_flight: u32,
    had_pairs: bool,
    acc: [f32; 3],
    pair_fifo: Fifo<PipeJob>,
}

impl Station {
    fn new(fifo_depth: usize) -> Self {
        Station {
            entry: None,
            cursor: 0,
            in_flight: 0,
            had_pairs: false,
            acc: [0.0; 3],
            pair_fifo: Fifo::new(fifo_depth),
        }
    }

    fn scan_done(&self, home_len: u16) -> bool {
        self.cursor >= home_len
    }

    fn drained(&self, home_len: u16) -> bool {
        self.entry.is_some()
            && self.scan_done(home_len)
            && self.in_flight == 0
            && self.pair_fifo.is_empty()
    }

    fn load(&mut self, entry: NbrEntry) {
        self.cursor = entry.scan_from;
        self.in_flight = 0;
        self.had_pairs = false;
        self.acc = [0.0; 3];
        self.entry = Some(entry);
    }
}

/// The result of ejecting a completed neighbour entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Ejection {
    /// Send this flit along the force ring.
    Ring(FrcFlit, /*remote origin:*/ bool),
    /// Accumulate directly into the local FC (home-internal reaction).
    Local { slot: u16, force: [f32; 3] },
    /// Neighbour passed no filter: zero force, discarded (§5.4). The
    /// origin and `remote` flag still matter for per-origin sync
    /// accounting.
    Discard { origin: ChipCoord, remote: bool },
}

/// A Processing Element: `filters_per_pe` stations + one force pipeline.
#[derive(Clone, Debug)]
pub struct Pe {
    stations: Vec<Station>,
    pipe: Pipeline<PipeJob>,
    rr: usize,
    /// Filter activity (capacity = stations).
    pub filter_stats: Activity,
    /// Force-pipeline activity (capacity = 1/cycle).
    pub pe_stats: Activity,
}

impl Pe {
    /// Build a PE.
    pub fn new(filters: u32, pipe_latency: u32, pair_fifo_depth: usize) -> Self {
        Pe {
            stations: (0..filters).map(|_| Station::new(pair_fifo_depth)).collect(),
            pipe: Pipeline::new(pipe_latency as u64),
            rr: 0,
            filter_stats: Activity::with_capacity(filters as u64),
            pe_stats: Activity::with_capacity(1),
        }
    }

    /// True if some station is free to accept a neighbour entry.
    pub fn has_free_station(&self) -> bool {
        self.stations.iter().any(|s| s.entry.is_none())
    }

    /// Load a neighbour entry into a free station. Panics if none free —
    /// guard with [`Pe::has_free_station`].
    pub fn dispatch(&mut self, entry: NbrEntry) {
        let s = self
            .stations
            .iter_mut()
            .find(|s| s.entry.is_none())
            .expect("dispatch requires a free station");
        s.load(entry);
    }

    /// True when the PE holds no work at all.
    pub fn is_idle(&self) -> bool {
        self.pipe.is_empty() && self.stations.iter().all(|s| s.entry.is_none())
    }

    /// One cycle of PE operation against the home cell's snapshot.
    ///
    /// `home` is (elements, concatenated home coordinates). Returns
    /// `(retired_force, ejections)`: at most one retired pipeline result
    /// `(home_slot, force_on_home)` this cycle, and any station ejections.
    ///
    /// `ring_eject_budget` models the SPE's single arbitrated injection
    /// path into the FRN (§4.5): a station whose force must travel the
    /// force ring can only eject while the budget is positive; local
    /// reactions and zero-force discards are port-free.
    #[allow(clippy::type_complexity)]
    pub fn step(
        &mut self,
        cycle: Cycle,
        dp: &ForceDatapath,
        home_elem: &[Element],
        home_concat: &[FixVec3],
        ejections: &mut Vec<Ejection>,
        ring_eject_budget: &mut u32,
    ) -> Option<(u16, [f32; 3])> {
        let home_len = home_elem.len() as u16;

        // 1. Retire a pipeline result: home force to FC, reaction into
        //    the producing station's accumulator.
        let mut retired = None;
        if let Some(job) = self.pipe.pop_ready(cycle) {
            let f = dp.force(job.home_elem, job.nbr_elem, job.pair);
            let st = &mut self.stations[job.station as usize];
            for k in 0..3 {
                st.acc[k] -= f[k];
            }
            st.in_flight -= 1;
            retired = Some((job.home_slot, f));
        }

        // 2. Arbitrate one buffered pair into the pipeline (round-robin).
        if self.pipe.can_issue(cycle) {
            let n = self.stations.len();
            for k in 0..n {
                let idx = (self.rr + k) % n;
                if let Some(job) = self.stations[idx].pair_fifo.pop() {
                    self.pipe
                        .issue(cycle, job).expect("can_issue checked");
                    self.rr = (idx + 1) % n;
                    break;
                }
            }
        }

        // 3. Filters: each occupied, unfinished station compares one home
        //    particle per cycle (stalling only on a full pair FIFO).
        let mut comparisons = 0u64;
        let mut any_station_active = false;
        for (si, st) in self.stations.iter_mut().enumerate() {
            let Some(entry) = st.entry else { continue };
            any_station_active = true;
            if st.scan_done(home_len) || st.pair_fifo.is_full() {
                continue;
            }
            let hi = st.cursor as usize;
            comparisons += 1;
            if let Some(pair) = dp.filter(home_concat[hi], entry.concat) {
                let job = PipeJob {
                    station: si as u8,
                    home_slot: st.cursor,
                    home_elem: home_elem[hi],
                    nbr_elem: entry.elem,
                    pair,
                };
                st.pair_fifo.push(job).expect("fullness checked");
                st.in_flight += 1;
                st.had_pairs = true;
            }
            st.cursor += 1;
        }

        // 4. Eject at most one drained station per cycle. Ring ejections
        //    additionally need the SPE's FRN injection budget.
        for st in &mut self.stations {
            if !st.drained(home_len) {
                continue;
            }
            let entry = st.entry.expect("drained implies occupied");
            let needs_ring = matches!(entry.kind, NbrKind::Ring { .. }) && st.had_pairs;
            if needs_ring && *ring_eject_budget == 0 {
                continue; // retry next cycle
            }
            st.entry = None;
            let ej = match entry.kind {
                NbrKind::Internal { slot } => {
                    if st.had_pairs {
                        Ejection::Local {
                            slot,
                            force: st.acc,
                        }
                    } else {
                        Ejection::Discard {
                            origin: ChipCoord::new(0, 0, 0),
                            remote: false,
                        }
                    }
                }
                NbrKind::Ring {
                    owner_chip,
                    owner_cbb,
                    slot,
                    remote,
                } => {
                    if st.had_pairs {
                        *ring_eject_budget -= 1;
                        Ejection::Ring(
                            FrcFlit {
                                owner_chip,
                                owner_cbb,
                                slot,
                                force: st.acc,
                            },
                            remote,
                        )
                    } else {
                        Ejection::Discard {
                            origin: owner_chip,
                            remote,
                        }
                    }
                }
            };
            ejections.push(ej);
            break;
        }

        // 5. Stats.
        self.filter_stats.record(comparisons, any_station_active);
        self.pe_stats
            .record(u64::from(retired.is_some()), !self.pipe.is_empty() || retired.is_some());

        retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasda_arith::interp::TableConfig;
    use fasda_md::element::PairTable;
    use fasda_md::units::UnitSystem;

    fn budget() -> u32 {
        1
    }

    fn dp() -> ForceDatapath {
        ForceDatapath::new(&PairTable::new(UnitSystem::PAPER), TableConfig::PAPER)
    }

    fn home(n: usize) -> (Vec<Element>, Vec<FixVec3>) {
        // n home particles along x in the home cell (RCID 2)
        let elems = vec![Element::Na; n];
        let concat = (0..n)
            .map(|i| {
                ForceDatapath::concat(
                    (2, 2, 2),
                    FixVec3::from_f64(0.1 + 0.8 * i as f64 / n.max(1) as f64, 0.5, 0.5),
                )
            })
            .collect();
        (elems, concat)
    }

    fn nbr_at(x: f64) -> NbrEntry {
        NbrEntry {
            concat: ForceDatapath::concat((2, 2, 2), FixVec3::from_f64(x, 0.5, 0.5)),
            elem: Element::Na,
            scan_from: 0,
            kind: NbrKind::Ring {
                owner_chip: ChipCoord::new(0, 0, 0),
                owner_cbb: 3,
                slot: 9,
                remote: false,
            },
        }
    }

    #[test]
    fn scan_filter_retire_eject_cycle() {
        let dp = dp();
        let (he, hc) = home(4);
        let mut pe = Pe::new(2, 5, 8);
        pe.dispatch(nbr_at(0.45));
        let mut ej = Vec::new();
        let mut retired = Vec::new();
        for c in 0..60u64 {
            if let Some(r) = pe.step(c, &dp, &he, &hc, &mut ej, &mut budget()) {
                retired.push(r);
            }
            if pe.is_idle() {
                break;
            }
        }
        assert!(!retired.is_empty(), "some pairs must pass");
        assert_eq!(ej.len(), 1);
        match ej[0] {
            Ejection::Ring(f, remote) => {
                assert!(!remote);
                assert_eq!((f.owner_cbb, f.slot), (3, 9));
                // reaction = -(sum of home forces), up to f32 rounding
                let sum: f64 = retired.iter().map(|(_, f)| f[0] as f64).sum();
                let tol = retired
                    .iter()
                    .map(|(_, f)| f[0].abs() as f64)
                    .sum::<f64>()
                    .max(1.0)
                    * 1e-5;
                assert!(
                    (f.force[0] as f64 + sum).abs() < tol,
                    "{} vs {sum}",
                    f.force[0]
                );
            }
            ref other => panic!("expected ring ejection, got {other:?}"),
        }
    }

    #[test]
    fn zero_force_discarded() {
        let dp = dp();
        // home particles clustered at x≈0.1; neighbour at RCID 3 far side
        let (he, hc) = home(3);
        let mut pe = Pe::new(1, 3, 4);
        pe.dispatch(NbrEntry {
            concat: ForceDatapath::concat((3, 2, 2), FixVec3::from_f64(0.99, 0.5, 0.5)),
            elem: Element::Na,
            scan_from: 0,
            kind: NbrKind::Ring {
                owner_chip: ChipCoord::new(1, 0, 0),
                owner_cbb: 0,
                slot: 0,
                remote: true,
            },
        });
        let mut ej = Vec::new();
        for c in 0..40u64 {
            pe.step(c, &dp, &he, &hc, &mut ej, &mut budget());
            if pe.is_idle() {
                break;
            }
        }
        assert_eq!(
            ej,
            vec![Ejection::Discard {
                origin: ChipCoord::new(1, 0, 0),
                remote: true
            }]
        );
    }

    #[test]
    fn internal_entry_scans_only_upper_slots() {
        let dp = dp();
        let (he, hc) = home(5);
        let mut pe = Pe::new(1, 3, 4);
        pe.dispatch(NbrEntry {
            concat: hc[2],
            elem: Element::Na,
            scan_from: 3, // i = 2, scan j in 3..5
            kind: NbrKind::Internal { slot: 2 },
        });
        let mut ej = Vec::new();
        let mut retired = Vec::new();
        for c in 0..40u64 {
            if let Some(r) = pe.step(c, &dp, &he, &hc, &mut ej, &mut budget()) {
                retired.push(r.0);
            }
            if pe.is_idle() {
                break;
            }
        }
        assert!(retired.iter().all(|&s| s >= 3), "scanned slots {retired:?}");
        // comparisons = 2 (slots 3 and 4)
        assert_eq!(pe.filter_stats.work, 2);
    }

    #[test]
    fn initiation_interval_limits_throughput() {
        let dp = dp();
        // 6 stations all loaded with close neighbours → filters produce up
        // to 6 valid pairs/cycle but the pipeline retires at most 1/cycle.
        let (he, hc) = home(16);
        let mut pe = Pe::new(6, 10, 8);
        for _ in 0..6 {
            pe.dispatch(nbr_at(0.48));
        }
        let mut ej = Vec::new();
        let mut retired = 0;
        let mut last_cycle_with_two = false;
        let mut prev = false;
        for c in 0..400u64 {
            let r = pe.step(c, &dp, &he, &hc, &mut ej, &mut budget());
            if r.is_some() && prev {
                last_cycle_with_two = true; // consecutive retires are fine; >1/cycle impossible by API
            }
            prev = r.is_some();
            retired += u64::from(r.is_some());
            if pe.is_idle() {
                break;
            }
        }
        let _ = last_cycle_with_two;
        assert!(retired > 0);
        assert_eq!(pe.pe_stats.work, retired);
        assert_eq!(ej.len(), 6);
    }

    #[test]
    fn dispatch_requires_free_station() {
        let mut pe = Pe::new(1, 3, 4);
        assert!(pe.has_free_station());
        pe.dispatch(nbr_at(0.5));
        assert!(!pe.has_free_station());
    }
}
