//! The Processing Element: filter stations, pair arbiter, force pipeline
//! (paper §3.3, Fig. 6).
//!
//! A neighbour position arriving from the PRN is "dispatched to one of the
//! registers to pair with the positions from local PC being traversed
//! repeatedly". Each of the PE's filter stations holds one neighbour
//! position and streams the home cell's particles past it, one comparison
//! per cycle. Passing pairs are buffered per-station and arbitrated into
//! the force pipeline (one issue per cycle). Retired forces split two
//! ways: the home component accumulates into the local FC, the neighbour
//! component is negated and accumulated in the station register; when the
//! station's scan is complete **and** its pairs have drained from the
//! pipeline, the accumulated neighbour force is ejected toward the FRN —
//! or discarded if no pair passed ("zero force is simply discarded rather
//! than returned", §5.4).

// Componentwise `for k in 0..3` loops mirror the per-lane datapath.
#![allow(clippy::needless_range_loop)]
use crate::datapath::{ForceDatapath, HomeSoa, ScanHit};
use fasda_arith::fixed::FixVec3;
use fasda_md::element::Element;
use fasda_sim::{Activity, Cycle, Fifo, Pipeline};

use super::ring::FrcFlit;
use crate::geometry::ChipCoord;

/// Where an ejected neighbour force must go.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NbrKind {
    /// The neighbour came from another cell (possibly another chip): the
    /// force returns via the force ring.
    Ring {
        owner_chip: ChipCoord,
        owner_cbb: u16,
        slot: u16,
        /// Whether the owner is a remote chip (for per-origin sync
        /// accounting).
        remote: bool,
    },
    /// A home-internal entry (the half-shell's own-cell `i < j` pairs):
    /// the reaction force lands directly in the local FC at `slot`.
    Internal { slot: u16 },
}

/// A neighbour position occupying a filter station.
#[derive(Clone, Copy, Debug)]
pub struct NbrEntry {
    /// RCID-concatenated coordinates of the neighbour.
    pub concat: FixVec3,
    /// Element type.
    pub elem: Element,
    /// First home slot to scan (0 for ring neighbours; `slot + 1` for
    /// home-internal entries, giving the `i < j` rule).
    pub scan_from: u16,
    /// Force-return routing.
    pub kind: NbrKind,
}

/// A filtered pair in flight toward / inside the force pipeline. The
/// force-pipeline arithmetic is a pure function of the pair, so the model
/// evaluates it when the pair passes the filter and lets the job carry
/// the finished words through the latency pipe — retiring is then a pure
/// accumulation, on both the scalar and the batch-kernel path.
#[derive(Clone, Copy, Debug)]
pub struct PipeJob {
    /// Station that produced the pair (for neighbour-force accumulation).
    pub station: u8,
    /// Home slot of the pair.
    pub home_slot: u16,
    /// Force on the home particle (the neighbour gets the negation).
    pub force: [f32; 3],
}

/// One filter station — the wide, *cold* half of its state.
///
/// The scan-control fields the per-cycle loops touch every cycle
/// (cursor, occupancy, FIFO fullness, next planned hit) live in the
/// [`Pe`]'s packed parallel arrays and bitmasks instead; this struct is
/// only loaded on the rarer events: a passing pair, a retire, an
/// ejection, a dispatch.
#[derive(Clone, Debug)]
struct Station {
    entry: Option<NbrEntry>,
    in_flight: u32,
    had_pairs: bool,
    acc: [f32; 3],
    pair_fifo: Fifo<PipeJob>,
    /// Precomputed scan results (ascending slot) when the entry was
    /// dispatched through the fused SoA kernel; the scalar per-cycle
    /// filter path leaves it empty.
    plan: Vec<ScanHit>,
    plan_next: usize,
}

impl Station {
    fn new(fifo_depth: usize) -> Self {
        Station {
            entry: None,
            in_flight: 0,
            had_pairs: false,
            acc: [0.0; 3],
            pair_fifo: Fifo::new(fifo_depth),
            plan: Vec::new(),
            plan_next: 0,
        }
    }
}

/// The result of ejecting a completed neighbour entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Ejection {
    /// Send this flit along the force ring.
    Ring(FrcFlit, /*remote origin:*/ bool),
    /// Accumulate directly into the local FC (home-internal reaction).
    Local { slot: u16, force: [f32; 3] },
    /// Neighbour passed no filter: zero force, discarded (§5.4). The
    /// origin and `remote` flag still matter for per-origin sync
    /// accounting.
    Discard { origin: ChipCoord, remote: bool },
}

/// A Processing Element: `filters_per_pe` stations + one force pipeline.
///
/// The per-cycle scan control lives in packed parallel arrays and `u32`
/// occupancy bitmasks rather than inside the [`Station`] structs: the
/// cycle loop is memory-bound when it chases six wide station structs per
/// PE per cycle, so the every-cycle state (cursors, next planned hit,
/// occupied / scan-done / FIFO masks) is kept inside a couple of cache
/// lines and the wide structs are touched only on hits, retires and
/// ejections.
#[derive(Clone, Debug)]
pub struct Pe {
    stations: Vec<Station>,
    pipe: Pipeline<PipeJob>,
    rr: usize,
    /// Per-station scan cursor: next home slot to compare.
    cursors: Vec<u16>,
    /// Per-station slot of the next planned hit (`u16::MAX`: none
    /// pending, or the station was dispatched on the scalar path).
    next_hit: Vec<u16>,
    /// Stations holding a neighbour entry.
    occupied: u32,
    /// Stations dispatched through the SoA batch kernels.
    planned: u32,
    /// Occupied stations whose scan has finished (maintained lazily by
    /// the filter stage, which is the only place `home_len` is known).
    done: u32,
    /// Stations whose pair FIFO is full (filter stage stalls on these).
    fifo_full: u32,
    /// Stations whose pair FIFO holds at least one job (arbiter input).
    fifo_nonempty: u32,
    /// Filter activity (capacity = stations).
    pub filter_stats: Activity,
    /// Force-pipeline activity (capacity = 1/cycle).
    pub pe_stats: Activity,
}

impl Pe {
    /// Build a PE.
    pub fn new(filters: u32, pipe_latency: u32, pair_fifo_depth: usize) -> Self {
        assert!(filters <= 32, "station state is tracked in u32 bitmasks");
        Pe {
            stations: (0..filters).map(|_| Station::new(pair_fifo_depth)).collect(),
            pipe: Pipeline::new(pipe_latency as u64),
            rr: 0,
            cursors: vec![0; filters as usize],
            next_hit: vec![u16::MAX; filters as usize],
            occupied: 0,
            planned: 0,
            done: 0,
            fifo_full: 0,
            fifo_nonempty: 0,
            filter_stats: Activity::with_capacity(filters as u64),
            pe_stats: Activity::with_capacity(1),
        }
    }

    /// True if some station is free to accept a neighbour entry.
    pub fn has_free_station(&self) -> bool {
        (self.occupied.count_ones() as usize) < self.stations.len()
    }

    /// Index of the lowest free station, mirroring the original
    /// first-free linear scan.
    fn free_station(&self) -> Option<usize> {
        let free = !self.occupied & ((1u32 << self.stations.len()) - 1);
        (free != 0).then(|| free.trailing_zeros() as usize)
    }

    /// Reset station `si` around a fresh entry and raise its mask bits.
    fn load_station(&mut self, si: usize, entry: NbrEntry) {
        let bit = 1u32 << si;
        let st = &mut self.stations[si];
        debug_assert!(
            st.entry.is_none() && st.in_flight == 0 && st.pair_fifo.is_empty(),
            "station must be drained before reload"
        );
        st.entry = Some(entry);
        st.had_pairs = false;
        st.acc = [0.0; 3];
        st.plan.clear();
        st.plan_next = 0;
        self.cursors[si] = entry.scan_from;
        self.next_hit[si] = u16::MAX;
        self.occupied |= bit;
        self.planned &= !bit;
        self.done &= !bit;
        self.fifo_full &= !bit;
        self.fifo_nonempty &= !bit;
    }

    /// Load a neighbour entry into a free station. Panics if none free —
    /// guard with [`Pe::has_free_station`].
    pub fn dispatch(&mut self, entry: NbrEntry) {
        let si = self.free_station().expect("dispatch requires a free station");
        self.load_station(si, entry);
    }

    /// [`Pe::dispatch`] through the fused SoA kernel: run the station's
    /// whole scan against the home banks now
    /// ([`ForceDatapath::fused_scan_into`]) and store the finished
    /// [`ScanHit`]s — written *directly* into the station's plan, no
    /// intermediate `FilteredPair` buffer — as a plan the per-cycle state
    /// machine consumes one comparison at a time. Cycle-for-cycle and
    /// bit-for-bit identical to the scalar path: the station still
    /// advances one home slot per cycle, stalls on a full pair FIFO, and
    /// pushes the same jobs on the same cycles — only the arithmetic is
    /// hoisted out of the cycle loop.
    pub fn dispatch_planned(&mut self, entry: NbrEntry, dp: &ForceDatapath, home: &HomeSoa) {
        let si = self.free_station().expect("dispatch requires a free station");
        self.load_station(si, entry);
        let st = &mut self.stations[si];
        dp.fused_scan_into(home, entry.concat, entry.elem, entry.scan_from, &mut st.plan);
        self.next_hit[si] = st.plan.first().map_or(u16::MAX, |h| h.slot);
        self.planned |= 1u32 << si;
    }

    /// Conservative per-station drain bound for the burst window
    /// computation: a station whose scan is unfinished needs at least
    /// `home_len − cursor` more comparison cycles before it can drain
    /// (the ejection can land on the final comparison's cycle, hence
    /// `− 1`); a finished station still needs its `in_flight` pairs to
    /// retire at one per cycle.
    fn station_bound(&self, si: usize, hl: u64) -> u64 {
        let c = self.cursors[si] as u64;
        if c < hl {
            hl - c - 1
        } else {
            (self.stations[si].in_flight as u64).saturating_sub(1)
        }
    }

    /// Burst bounds of this PE, split by what the eventual ejection does
    /// to the chip's external interfaces:
    ///
    /// * `boundary` — min drain bound over stations whose ejection is a
    ///   chip-boundary event: [`NbrKind::Ring`] entries push a force flit
    ///   into `frc_out` (or emit a completion record when the origin is
    ///   remote), so the window must close strictly before the earliest
    ///   one. `u64::MAX` when no such station is occupied.
    /// * `completion` — max drain bound over *all* occupied stations: a
    ///   lower bound on when this PE (and therefore its chip) can next go
    ///   force-idle. [`NbrKind::Internal`] ejections (a local FC
    ///   accumulation, or a discard with no sync record) are chip-internal
    ///   and may happen *inside* a burst — they only matter through this
    ///   completion bound, which keeps the window from running past the
    ///   cycle where the reference walk would have stopped stepping an
    ///   idle chip. `0` when no station is occupied.
    pub fn burst_bound(&self, home_len: u16) -> (u64, u64) {
        let hl = home_len as u64;
        let mut boundary = u64::MAX;
        let mut completion = 0u64;
        let mut m = self.occupied;
        while m != 0 {
            let si = m.trailing_zeros() as usize;
            m &= m - 1;
            let b = self.station_bound(si, hl);
            let entry = self.stations[si].entry.expect("occupied bit tracks entries");
            if matches!(entry.kind, NbrKind::Ring { .. }) {
                boundary = boundary.min(b);
            }
            completion = completion.max(b);
        }
        (boundary, completion)
    }

    /// True when the PE holds no work at all.
    pub fn is_idle(&self) -> bool {
        self.pipe.is_empty() && self.occupied == 0
    }

    /// One cycle of PE operation against the home cell's snapshot.
    ///
    /// `home` is (elements, concatenated home coordinates). Returns
    /// `(retired_force, ejections)`: at most one retired pipeline result
    /// `(home_slot, force_on_home)` this cycle, and any station ejections.
    ///
    /// `ring_eject_budget` models the SPE's single arbitrated injection
    /// path into the FRN (§4.5): a station whose force must travel the
    /// force ring can only eject while the budget is positive; local
    /// reactions and zero-force discards are port-free.
    #[allow(clippy::type_complexity)]
    pub fn step(
        &mut self,
        cycle: Cycle,
        dp: &ForceDatapath,
        home_elem: &[Element],
        home_concat: &[FixVec3],
        ejections: &mut Vec<Ejection>,
        ring_eject_budget: &mut u32,
    ) -> Option<(u16, [f32; 3])> {
        let home_len = home_elem.len() as u16;

        // 1. Retire a pipeline result: home force to FC, reaction into
        //    the producing station's accumulator.
        let mut retired = None;
        if let Some(job) = self.pipe.pop_ready(cycle) {
            let f = job.force;
            let st = &mut self.stations[job.station as usize];
            for k in 0..3 {
                st.acc[k] -= f[k];
            }
            st.in_flight -= 1;
            retired = Some((job.home_slot, f));
        }

        // 2. Arbitrate one buffered pair into the pipeline (round-robin).
        //    The non-empty mask makes the losing probes register tests
        //    instead of FIFO loads.
        if self.fifo_nonempty != 0 && self.pipe.can_issue(cycle) {
            let n = self.stations.len();
            for k in 0..n {
                let idx = (self.rr + k) % n;
                let bit = 1u32 << idx;
                if self.fifo_nonempty & bit == 0 {
                    continue;
                }
                let st = &mut self.stations[idx];
                let job = st.pair_fifo.pop().expect("mask tracks non-empty FIFOs");
                if st.pair_fifo.is_empty() {
                    self.fifo_nonempty &= !bit;
                }
                self.fifo_full &= !bit;
                self.pipe.issue(cycle, job).expect("can_issue checked");
                self.rr = (idx + 1) % n;
                break;
            }
        }

        // 3. Filters: each occupied, unfinished station compares one home
        //    particle per cycle (stalling only on a full pair FIFO). The
        //    mask walk touches only the packed cursor / next-hit arrays on
        //    a miss; the wide station struct is loaded on hits alone.
        let mut comparisons = 0u64;
        let mut m = self.occupied & !self.done & !self.fifo_full;
        while m != 0 {
            let si = m.trailing_zeros() as usize;
            let bit = m & m.wrapping_neg();
            m &= m - 1;
            let cur = self.cursors[si];
            if cur >= home_len {
                // Scan finished (or dispatched past the end): record it
                // and stop probing this station.
                self.done |= bit;
                continue;
            }
            comparisons += 1;
            let hit = if self.planned & bit != 0 {
                // SoA fast path: the scan was evaluated at dispatch; the
                // comparison this cycle hits iff the next planned slot is
                // the cursor.
                if self.next_hit[si] == cur {
                    let st = &self.stations[si];
                    Some(st.plan[st.plan_next].force)
                } else {
                    None
                }
            } else {
                let entry = self.stations[si].entry.expect("occupied bit tracks entries");
                let hi = cur as usize;
                dp.filter(home_concat[hi], entry.concat)
                    .map(|pair| dp.force(home_elem[hi], entry.elem, pair))
            };
            if let Some(force) = hit {
                let st = &mut self.stations[si];
                if self.planned & bit != 0 {
                    st.plan_next += 1;
                    self.next_hit[si] = st.plan.get(st.plan_next).map_or(u16::MAX, |h| h.slot);
                }
                let job = PipeJob {
                    station: si as u8,
                    home_slot: cur,
                    force,
                };
                st.pair_fifo.push(job).expect("fullness checked");
                st.in_flight += 1;
                st.had_pairs = true;
                self.fifo_nonempty |= bit;
                if st.pair_fifo.is_full() {
                    self.fifo_full |= bit;
                }
            }
            let next = cur + 1;
            self.cursors[si] = next;
            if next >= home_len {
                self.done |= bit;
            }
        }
        let any_station_active = self.occupied != 0;

        // 4. Eject at most one drained station per cycle. Ring ejections
        //    additionally need the SPE's FRN injection budget. Only
        //    scan-done stations (the `done` mask) can be drained; the
        //    walk preserves the original ascending-index order.
        let mut dm = self.done;
        while dm != 0 {
            let si = dm.trailing_zeros() as usize;
            let bit = dm & dm.wrapping_neg();
            dm &= dm - 1;
            let st = &mut self.stations[si];
            if st.in_flight != 0 {
                continue;
            }
            debug_assert!(st.pair_fifo.is_empty(), "in_flight counts FIFO jobs");
            let entry = st.entry.expect("done implies occupied");
            let needs_ring = matches!(entry.kind, NbrKind::Ring { .. }) && st.had_pairs;
            if needs_ring && *ring_eject_budget == 0 {
                continue; // retry next cycle
            }
            st.entry = None;
            self.occupied &= !bit;
            self.done &= !bit;
            self.planned &= !bit;
            let ej = match entry.kind {
                NbrKind::Internal { slot } => {
                    if st.had_pairs {
                        Ejection::Local {
                            slot,
                            force: st.acc,
                        }
                    } else {
                        Ejection::Discard {
                            origin: ChipCoord::new(0, 0, 0),
                            remote: false,
                        }
                    }
                }
                NbrKind::Ring {
                    owner_chip,
                    owner_cbb,
                    slot,
                    remote,
                } => {
                    if st.had_pairs {
                        *ring_eject_budget -= 1;
                        Ejection::Ring(
                            FrcFlit {
                                owner_chip,
                                owner_cbb,
                                slot,
                                force: st.acc,
                            },
                            remote,
                        )
                    } else {
                        Ejection::Discard {
                            origin: owner_chip,
                            remote,
                        }
                    }
                }
            };
            ejections.push(ej);
            break;
        }

        // 5. Stats.
        self.filter_stats.record(comparisons, any_station_active);
        self.pe_stats
            .record(u64::from(retired.is_some()), !self.pipe.is_empty() || retired.is_some());

        retired
    }
}

impl fasda_ckpt::Persist for NbrKind {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        match *self {
            NbrKind::Ring {
                owner_chip,
                owner_cbb,
                slot,
                remote,
            } => {
                w.put_u8(0);
                owner_chip.save(w);
                w.put_u16(owner_cbb);
                w.put_u16(slot);
                w.put_bool(remote);
            }
            NbrKind::Internal { slot } => {
                w.put_u8(1);
                w.put_u16(slot);
            }
        }
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        match r.get_u8()? {
            0 => Ok(NbrKind::Ring {
                owner_chip: fasda_ckpt::Persist::load(r)?,
                owner_cbb: r.get_u16()?,
                slot: r.get_u16()?,
                remote: r.get_bool()?,
            }),
            1 => Ok(NbrKind::Internal { slot: r.get_u16()? }),
            t => Err(r.malformed(format!("invalid neighbour kind tag {t}"))),
        }
    }
}

impl fasda_ckpt::Persist for NbrEntry {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        self.concat.save(w);
        self.elem.save(w);
        w.put_u16(self.scan_from);
        self.kind.save(w);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(NbrEntry {
            concat: fasda_ckpt::Persist::load(r)?,
            elem: fasda_ckpt::Persist::load(r)?,
            scan_from: r.get_u16()?,
            kind: fasda_ckpt::Persist::load(r)?,
        })
    }
}

impl fasda_ckpt::Persist for PipeJob {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u8(self.station);
        w.put_u16(self.home_slot);
        self.force.save(w);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(PipeJob {
            station: r.get_u8()?,
            home_slot: r.get_u16()?,
            force: fasda_ckpt::Persist::load(r)?,
        })
    }
}

impl fasda_ckpt::Persist for ScanHit {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u16(self.slot);
        self.force.save(w);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(ScanHit {
            slot: r.get_u16()?,
            force: fasda_ckpt::Persist::load(r)?,
        })
    }
}

impl fasda_ckpt::Snapshot for Station {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        use fasda_ckpt::Persist;
        self.entry.save(w);
        w.put_u32(self.in_flight);
        w.put_bool(self.had_pairs);
        self.acc.save(w);
        self.pair_fifo.snapshot(w);
        self.plan.save(w);
        w.put_usize(self.plan_next);
    }
    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        use fasda_ckpt::Persist;
        self.entry = Persist::load(r)?;
        self.in_flight = r.get_u32()?;
        self.had_pairs = r.get_bool()?;
        self.acc = Persist::load(r)?;
        self.pair_fifo.restore(r)?;
        self.plan = Persist::load(r)?;
        self.plan_next = r.get_usize()?;
        if self.plan_next > self.plan.len() {
            return Err(r.malformed("plan cursor past the end of the plan"));
        }
        Ok(())
    }
}

/// Checkpointing: station count, pipeline latency, and FIFO depths are
/// configuration; the scan-control arrays, bitmasks, and station/pipeline
/// contents are state. The activity counters ([`Pe::filter_stats`],
/// [`Pe::pe_stats`]) are *not* captured — the driver resets every
/// utilization counter at the start of a measurement window, which is
/// where checkpoints are cut.
impl fasda_ckpt::Snapshot for Pe {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        use fasda_ckpt::Persist;
        fasda_ckpt::snapshot_slice(&self.stations, w);
        self.pipe.snapshot(w);
        w.put_usize(self.rr);
        self.cursors.save(w);
        self.next_hit.save(w);
        w.put_u32(self.occupied);
        w.put_u32(self.planned);
        w.put_u32(self.done);
        w.put_u32(self.fifo_full);
        w.put_u32(self.fifo_nonempty);
    }
    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        use fasda_ckpt::Persist;
        fasda_ckpt::restore_slice(&mut self.stations, r)?;
        self.pipe.restore(r)?;
        self.rr = r.get_usize()?;
        let cursors: Vec<u16> = Persist::load(r)?;
        let next_hit: Vec<u16> = Persist::load(r)?;
        if cursors.len() != self.stations.len() || next_hit.len() != self.stations.len() {
            return Err(r.malformed("scan-control array length disagrees with station count"));
        }
        self.cursors = cursors;
        self.next_hit = next_hit;
        self.occupied = r.get_u32()?;
        self.planned = r.get_u32()?;
        self.done = r.get_u32()?;
        self.fifo_full = r.get_u32()?;
        self.fifo_nonempty = r.get_u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasda_arith::interp::TableConfig;
    use fasda_md::element::PairTable;
    use fasda_md::units::UnitSystem;

    fn dp() -> ForceDatapath {
        ForceDatapath::new(&PairTable::new(UnitSystem::PAPER), TableConfig::PAPER)
    }

    fn home(n: usize) -> (Vec<Element>, Vec<FixVec3>) {
        // n home particles along x in the home cell (RCID 2)
        let elems = vec![Element::Na; n];
        let concat = (0..n)
            .map(|i| {
                ForceDatapath::concat(
                    (2, 2, 2),
                    FixVec3::from_f64(0.1 + 0.8 * i as f64 / n.max(1) as f64, 0.5, 0.5),
                )
            })
            .collect();
        (elems, concat)
    }

    fn nbr_at(x: f64) -> NbrEntry {
        NbrEntry {
            concat: ForceDatapath::concat((2, 2, 2), FixVec3::from_f64(x, 0.5, 0.5)),
            elem: Element::Na,
            scan_from: 0,
            kind: NbrKind::Ring {
                owner_chip: ChipCoord::new(0, 0, 0),
                owner_cbb: 3,
                slot: 9,
                remote: false,
            },
        }
    }

    #[test]
    fn scan_filter_retire_eject_cycle() {
        let dp = dp();
        let (he, hc) = home(4);
        let mut pe = Pe::new(2, 5, 8);
        pe.dispatch(nbr_at(0.45));
        let mut ej = Vec::new();
        let mut retired = Vec::new();
        for c in 0..60u64 {
            // The SPE refreshes the FRN injection budget each cycle
            // (mirrors the per-cycle recreation in `TimedCbb`); keep it a
            // named binding so the &mut actually refers to this cycle's
            // budget rather than a fresh temporary per call site.
            let mut budget = 1u32;
            if let Some(r) = pe.step(c, &dp, &he, &hc, &mut ej, &mut budget) {
                retired.push(r);
            }
            if pe.is_idle() {
                break;
            }
        }
        assert!(!retired.is_empty(), "some pairs must pass");
        assert_eq!(ej.len(), 1);
        match ej[0] {
            Ejection::Ring(f, remote) => {
                assert!(!remote);
                assert_eq!((f.owner_cbb, f.slot), (3, 9));
                // reaction = -(sum of home forces), up to f32 rounding
                let sum: f64 = retired.iter().map(|(_, f)| f[0] as f64).sum();
                let tol = retired
                    .iter()
                    .map(|(_, f)| f[0].abs() as f64)
                    .sum::<f64>()
                    .max(1.0)
                    * 1e-5;
                assert!(
                    (f.force[0] as f64 + sum).abs() < tol,
                    "{} vs {sum}",
                    f.force[0]
                );
            }
            ref other => panic!("expected ring ejection, got {other:?}"),
        }
    }

    #[test]
    fn zero_force_discarded() {
        let dp = dp();
        // home particles clustered at x≈0.1; neighbour at RCID 3 far side
        let (he, hc) = home(3);
        let mut pe = Pe::new(1, 3, 4);
        pe.dispatch(NbrEntry {
            concat: ForceDatapath::concat((3, 2, 2), FixVec3::from_f64(0.99, 0.5, 0.5)),
            elem: Element::Na,
            scan_from: 0,
            kind: NbrKind::Ring {
                owner_chip: ChipCoord::new(1, 0, 0),
                owner_cbb: 0,
                slot: 0,
                remote: true,
            },
        });
        let mut ej = Vec::new();
        for c in 0..40u64 {
            let mut budget = 1u32;
            pe.step(c, &dp, &he, &hc, &mut ej, &mut budget);
            if pe.is_idle() {
                break;
            }
        }
        assert_eq!(
            ej,
            vec![Ejection::Discard {
                origin: ChipCoord::new(1, 0, 0),
                remote: true
            }]
        );
    }

    #[test]
    fn internal_entry_scans_only_upper_slots() {
        let dp = dp();
        let (he, hc) = home(5);
        let mut pe = Pe::new(1, 3, 4);
        pe.dispatch(NbrEntry {
            concat: hc[2],
            elem: Element::Na,
            scan_from: 3, // i = 2, scan j in 3..5
            kind: NbrKind::Internal { slot: 2 },
        });
        let mut ej = Vec::new();
        let mut retired = Vec::new();
        for c in 0..40u64 {
            let mut budget = 1u32;
            if let Some(r) = pe.step(c, &dp, &he, &hc, &mut ej, &mut budget) {
                retired.push(r.0);
            }
            if pe.is_idle() {
                break;
            }
        }
        assert!(retired.iter().all(|&s| s >= 3), "scanned slots {retired:?}");
        // comparisons = 2 (slots 3 and 4)
        assert_eq!(pe.filter_stats.work, 2);
    }

    #[test]
    fn initiation_interval_limits_throughput() {
        let dp = dp();
        // 6 stations all loaded with close neighbours → filters produce up
        // to 6 valid pairs/cycle but the pipeline retires at most 1/cycle.
        let (he, hc) = home(16);
        let mut pe = Pe::new(6, 10, 8);
        for _ in 0..6 {
            pe.dispatch(nbr_at(0.48));
        }
        let mut ej = Vec::new();
        let mut retired = 0;
        for c in 0..400u64 {
            let mut budget = 1u32;
            let r = pe.step(c, &dp, &he, &hc, &mut ej, &mut budget);
            retired += u64::from(r.is_some());
            if pe.is_idle() {
                break;
            }
        }
        assert!(retired > 0);
        assert_eq!(pe.pe_stats.work, retired);
        assert_eq!(ej.len(), 6);
    }

    #[test]
    fn zero_budget_stalls_ring_ejection() {
        let dp = dp();
        let (he, hc) = home(4);
        let mut pe = Pe::new(1, 3, 8);
        pe.dispatch(nbr_at(0.45));
        let mut ej = Vec::new();
        // With a zero FRN budget every cycle, the drained station must
        // retry forever and never eject its ring-bound force.
        for c in 0..80u64 {
            let mut budget = 0u32;
            pe.step(c, &dp, &he, &hc, &mut ej, &mut budget);
        }
        assert!(ej.is_empty(), "ring ejection must stall at budget 0");
        assert!(!pe.is_idle(), "station stays occupied while stalled");
        // Restoring a budget of 1 releases it on the next cycle.
        let mut budget = 1u32;
        pe.step(80, &dp, &he, &hc, &mut ej, &mut budget);
        assert_eq!(ej.len(), 1);
        assert_eq!(budget, 0, "ring ejection consumes the budget");
        assert!(matches!(ej[0], Ejection::Ring(..)));
    }

    #[test]
    fn planned_dispatch_matches_scalar_bitwise() {
        let dp = dp();
        let (he, hc) = home(12);
        let mut soa = HomeSoa::new();
        soa.rebuild(&he, &hc);

        let entries = [nbr_at(0.45), nbr_at(0.12), nbr_at(0.93)];
        let mut scalar = Pe::new(3, 7, 4);
        let mut planned = Pe::new(3, 7, 4);
        for e in entries {
            scalar.dispatch(e);
            planned.dispatch_planned(e, &dp, &soa);
        }
        let (mut ej_s, mut ej_p) = (Vec::new(), Vec::new());
        for c in 0..200u64 {
            let mut bs = 1u32;
            let mut bp = 1u32;
            let rs = scalar.step(c, &dp, &he, &hc, &mut ej_s, &mut bs);
            let rp = planned.step(c, &dp, &he, &hc, &mut ej_p, &mut bp);
            assert_eq!(
                rs.map(|(s, f)| (s, f.map(f32::to_bits))),
                rp.map(|(s, f)| (s, f.map(f32::to_bits))),
                "cycle {c}: retire mismatch"
            );
            assert_eq!(bs, bp, "cycle {c}: budget mismatch");
            if scalar.is_idle() && planned.is_idle() {
                break;
            }
        }
        assert!(scalar.is_idle() && planned.is_idle());
        assert_eq!(ej_s.len(), ej_p.len());
        for (a, b) in ej_s.iter().zip(&ej_p) {
            assert_eq!(a, b);
        }
        assert_eq!(scalar.filter_stats.work, planned.filter_stats.work);
        assert_eq!(scalar.filter_stats.busy_cycles, planned.filter_stats.busy_cycles);
        assert_eq!(scalar.pe_stats.work, planned.pe_stats.work);
    }

    #[test]
    fn dispatch_requires_free_station() {
        let mut pe = Pe::new(1, 3, 4);
        assert!(pe.has_free_station());
        pe.dispatch(nbr_at(0.5));
        assert!(!pe.has_free_station());
    }
}
