//! Analytic FPGA resource model (paper Table 1).
//!
//! We have no synthesis tool in this reproduction, so Table 1 is
//! regenerated from a **calibrated linear composition model**: each
//! architectural component contributes a fixed LUT/FF/BRAM/URAM/DSP cost,
//! and a design point is the sum over its component inventory. The
//! per-component costs below were calibrated once against the seven rows
//! of Table 1 (see `DESIGN.md`); they are estimates, not synthesis
//! results, and the `table1` harness prints model-vs-paper side by side.
//!
//! The model reproduces the paper's qualitative structure:
//!
//! * DSPs scale with force pipelines (PEs) — near-zero for variant A,
//!   tripling A→B and doubling B→C;
//! * LUT/FF are dominated by PEs plus a large static shell;
//! * going multi-chip adds a network stack (EX nodes, P2R/F2R chains,
//!   UDP/AXI-Stream glue) visible as the 3³→6·3·3 jump;
//! * URAM holds bulk position/velocity state and the remote halo buffers,
//!   which grow with the number of neighbour directions until saturation.
//!
//! What it cannot reproduce is the authors' manual rebalancing between
//! BRAM/URAM/LUT on the larger configurations (§5.5 notes resources "can
//! be balanced by trading off LUT, BRAM, and URAM"), so BRAM on variants
//! B/C is underestimated.

use crate::config::ChipConfig;
use crate::geometry::ChipGeometry;
use serde::{Deserialize, Serialize};

/// Absolute resource counts of one Alveo U280 (paper §5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceCapacity {
    /// Lookup tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// 36-Kb block RAMs.
    pub bram: u64,
    /// 288-Kb Ultra RAMs.
    pub uram: u64,
    /// DSP slices.
    pub dsp: u64,
}

/// The Alveo U280 of the paper's testbed.
pub const ALVEO_U280: DeviceCapacity = DeviceCapacity {
    lut: 1_303_000,
    ff: 2_607_000,
    bram: 2016,
    uram: 960,
    dsp: 9024,
};

/// Absolute resource usage of one design point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceUsage {
    pub lut: f64,
    pub ff: f64,
    pub bram: f64,
    pub uram: f64,
    pub dsp: f64,
}

impl ResourceUsage {
    /// Usage as percentages of a device.
    pub fn percent_of(&self, dev: DeviceCapacity) -> ResourcePercent {
        ResourcePercent {
            lut: 100.0 * self.lut / dev.lut as f64,
            ff: 100.0 * self.ff / dev.ff as f64,
            bram: 100.0 * self.bram / dev.bram as f64,
            uram: 100.0 * self.uram / dev.uram as f64,
            dsp: 100.0 * self.dsp / dev.dsp as f64,
        }
    }
}

/// Percent-of-device view (the format of Table 1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourcePercent {
    pub lut: f64,
    pub ff: f64,
    pub bram: f64,
    pub uram: f64,
    pub dsp: f64,
}

/// Calibrated per-component costs (see module docs).
mod cost {
    /// Static shell: host/HBM interface, clocking, control.
    pub const CHIP_BASE: [f64; 5] = [120_000.0, 150_000.0, 18.0, 0.0, 0.0];
    /// Per CBB: caches control, MU, three ring nodes.
    pub const PER_CBB: [f64; 5] = [4_500.0, 5_000.0, 1.0, 6.0, 14.0];
    /// Per PE: force pipeline + 6 filters + pair FIFOs + arbiter.
    pub const PER_PE: [f64; 5] = [9_500.0, 9_000.0, 10.0, 0.3, 52.0];
    /// Per SPE beyond its PEs: PRN/FRN, PC bank, eject arbitration.
    pub const PER_SPE: [f64; 5] = [1_500.0, 2_000.0, 2.0, 1.0, 0.0];
    /// Per force cache (SPEs × (PEs/SPE + 1) per CBB, §4.5).
    pub const PER_FC: [f64; 5] = [300.0, 400.0, 5.0, 0.0, 0.0];
    /// Network stack when multi-chip: EX nodes, packetizers, UDP.
    pub const NET_BASE: [f64; 5] = [45_000.0, 60_000.0, 120.0, 60.0, 0.0];
    /// Per neighbour-chip direction (P2R/F2R encapsulator chain links),
    /// saturating at [`NEIGHBOR_CAP`].
    pub const PER_NEIGHBOR: [f64; 5] = [8_000.0, 6_000.0, 20.0, 0.0, 0.0];
    /// Halo URAM per neighbour direction is proportional to the average
    /// block face area (cells), this many URAMs per face cell.
    pub const HALO_URAM_PER_FACE_CELL: f64 = 5.5;
    /// Neighbour-direction saturation for link logic and halo buffers.
    pub const NEIGHBOR_CAP: u32 = 3;
}

fn add(into: &mut ResourceUsage, c: [f64; 5], n: f64) {
    into.lut += c[0] * n;
    into.ff += c[1] * n;
    into.bram += c[2] * n;
    into.uram += c[3] * n;
    into.dsp += c[4] * n;
}

/// Estimate per-FPGA resource usage for a chip configuration and
/// geometry.
pub fn estimate(config: &ChipConfig, geometry: &ChipGeometry) -> ResourceUsage {
    let cbbs = geometry.num_cbbs() as f64;
    let spes = cbbs * config.spes_per_cbb as f64;
    let pes = cbbs * config.pes_per_cbb() as f64;
    let fcs = cbbs * (config.spes_per_cbb * (config.pes_per_spe + 1)) as f64;

    let mut u = ResourceUsage::default();
    add(&mut u, cost::CHIP_BASE, 1.0);
    add(&mut u, cost::PER_CBB, cbbs);
    add(&mut u, cost::PER_SPE, spes);
    add(&mut u, cost::PER_PE, pes);
    add(&mut u, cost::PER_FC, fcs);

    if geometry.num_chips() > 1 {
        let nbrs = geometry.send_chips().len() as u32;
        let capped = nbrs.min(cost::NEIGHBOR_CAP) as f64;
        add(&mut u, cost::NET_BASE, 1.0);
        add(&mut u, cost::PER_NEIGHBOR, capped);
        let (bx, by, bz) = geometry.block;
        let avg_face = (bx * by + by * bz + bx * bz) as f64 / 3.0;
        u.uram += cost::HALO_URAM_PER_FACE_CELL * avg_face * capped;
    }
    u
}

/// Paper Table 1, for side-by-side reporting. Rows:
/// `(label, fpgas, lut%, ff%, bram%, uram%, dsp%)`.
pub const PAPER_TABLE1: [(&str, u32, f64, f64, f64, f64, f64); 7] = [
    ("3x3x3", 1, 40.0, 22.0, 29.0, 20.0, 20.0),
    ("6x3x3", 2, 44.0, 24.0, 38.0, 31.0, 20.0),
    ("6x6x3", 4, 46.0, 24.0, 33.0, 42.0, 20.0),
    ("6x6x6", 8, 46.0, 24.0, 33.0, 42.0, 20.0),
    ("4x4x4-A", 8, 23.0, 16.0, 31.0, 13.0, 6.0),
    ("4x4x4-B", 8, 35.0, 20.0, 51.0, 18.0, 14.0),
    ("4x4x4-C", 8, 52.0, 26.0, 76.0, 28.0, 27.0),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DesignVariant;
    use crate::geometry::ChipCoord;
    use fasda_md::space::SimulationSpace;

    fn pct(cfg: ChipConfig, geo: ChipGeometry) -> ResourcePercent {
        estimate(&cfg, &geo).percent_of(ALVEO_U280)
    }

    fn single_3cube() -> ResourcePercent {
        pct(
            ChipConfig::baseline(),
            ChipGeometry::single_chip(SimulationSpace::cubic(3)),
        )
    }

    fn variant_4cube(v: DesignVariant) -> ResourcePercent {
        pct(
            ChipConfig::variant(v),
            ChipGeometry::new(SimulationSpace::cubic(4), (2, 2, 2), ChipCoord::new(0, 0, 0)),
        )
    }

    #[test]
    fn single_chip_3cube_near_paper_row() {
        let p = single_3cube();
        assert!((p.lut - 40.0).abs() < 6.0, "LUT {:.1}%", p.lut);
        assert!((p.ff - 22.0).abs() < 5.0, "FF {:.1}%", p.ff);
        assert!((p.dsp - 20.0).abs() < 3.0, "DSP {:.1}%", p.dsp);
        assert!((p.bram - 29.0).abs() < 8.0, "BRAM {:.1}%", p.bram);
        assert!((p.uram - 20.0).abs() < 6.0, "URAM {:.1}%", p.uram);
    }

    #[test]
    fn dsp_scales_with_pes() {
        let a = variant_4cube(DesignVariant::A);
        let b = variant_4cube(DesignVariant::B);
        let c = variant_4cube(DesignVariant::C);
        assert!((a.dsp - 6.0).abs() < 2.0, "A DSP {:.1}", a.dsp);
        assert!((b.dsp - 14.0).abs() < 3.0, "B DSP {:.1}", b.dsp);
        assert!((c.dsp - 27.0).abs() < 4.0, "C DSP {:.1}", c.dsp);
        assert!(a.dsp < b.dsp && b.dsp < c.dsp);
    }

    #[test]
    fn multi_chip_adds_network_resources() {
        let single = single_3cube();
        let multi = pct(
            ChipConfig::baseline(),
            ChipGeometry::new(
                SimulationSpace::new(6, 3, 3),
                (3, 3, 3),
                ChipCoord::new(0, 0, 0),
            ),
        );
        assert!(multi.lut > single.lut, "network stack costs LUTs");
        assert!(multi.uram > single.uram, "halo buffers cost URAM");
        assert!((multi.lut - 44.0).abs() < 6.0, "6x3x3 LUT {:.1}", multi.lut);
        assert!((multi.uram - 31.0).abs() < 12.0, "6x3x3 URAM {:.1}", multi.uram);
    }

    #[test]
    fn neighbor_cost_saturates() {
        // 6x6x3 (3 peers after cap) and 6x6x6 (7 peers, capped) identical
        // per-chip network cost — matching Table 1's identical rows.
        let g4 = ChipGeometry::new(
            SimulationSpace::new(6, 6, 3),
            (3, 3, 3),
            ChipCoord::new(0, 0, 0),
        );
        let g8 = ChipGeometry::new(SimulationSpace::cubic(6), (3, 3, 3), ChipCoord::new(0, 0, 0));
        let cfg = ChipConfig::baseline();
        let p4 = pct(cfg, g4);
        let p8 = pct(cfg, g8);
        assert!((p4.lut - p8.lut).abs() < 1.0);
        assert!((p4.uram - p8.uram).abs() < 1.0);
    }

    #[test]
    fn variants_monotone_in_every_resource() {
        let a = variant_4cube(DesignVariant::A);
        let b = variant_4cube(DesignVariant::B);
        let c = variant_4cube(DesignVariant::C);
        for (x, y) in [(&a, &b), (&b, &c)] {
            assert!(x.lut < y.lut);
            assert!(x.ff < y.ff);
            assert!(x.bram < y.bram);
            assert!(x.dsp < y.dsp);
        }
    }
}
