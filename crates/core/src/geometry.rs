//! Cell↔CBB↔chip geometry and the two-level cell-ID conversion
//! (paper §3.1 Eq. 7, §4.2 Fig. 9).
//!
//! A simulation space of `Dx × Dy × Dz` cells is partitioned into equal
//! blocks of `Bx × By × Bz` cells, one block per FPGA; the FPGAs form a
//! logical 3-D torus (Fig. 8). On a chip, each local cell is served by one
//! CBB whose index is the *local* Eq. 7 ID over the block dimensions.
//!
//! To keep every node and every CBB identical ("homogeneous"), cell IDs
//! are converted in two steps on arrival (§4.2):
//!
//! 1. **GCID → LCID**: the global cell coordinate is re-expressed relative
//!    to the *destination node's origin*, modulo the global dimensions —
//!    as if the destination node were node (0,0,0). See
//!    [`ChipGeometry::gcid_to_lcid`] and the Fig. 9 examples in the tests.
//! 2. **LCID → RCID**: at the destination CBB the cell becomes a relative
//!    ID in `{1,2,3}` per axis (home = 2), which is concatenated with the
//!    fixed-point in-cell offset so the filter's distance computation is a
//!    direct subtraction.

use fasda_md::space::{CellCoord, CellId, SimulationSpace};
use serde::{Deserialize, Serialize};

/// Coordinates of a chip (FPGA node) in the logical torus.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChipCoord {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl ChipCoord {
    /// Construct from components.
    pub const fn new(x: u32, y: u32, z: u32) -> Self {
        ChipCoord { x, y, z }
    }
}

impl fasda_ckpt::Persist for ChipCoord {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u32(self.x);
        w.put_u32(self.y);
        w.put_u32(self.z);
    }
    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(ChipCoord {
            x: r.get_u32()?,
            y: r.get_u32()?,
            z: r.get_u32()?,
        })
    }
}

/// One half-shell destination of a local cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dest {
    /// Global coordinates of the destination cell.
    pub gcell: CellCoord,
    /// Chip that owns the destination cell.
    pub chip: ChipCoord,
    /// CBB index on that chip.
    pub cbb: u16,
}

/// Geometry of one chip's slice of the simulation space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChipGeometry {
    /// The whole periodic simulation space.
    pub global: SimulationSpace,
    /// Cells per chip along each axis.
    pub block: (u32, u32, u32),
    /// This chip's coordinates in the node grid.
    pub chip: ChipCoord,
}

impl ChipGeometry {
    /// Geometry for a single chip covering the entire space.
    pub fn single_chip(global: SimulationSpace) -> Self {
        ChipGeometry {
            global,
            block: (global.dx, global.dy, global.dz),
            chip: ChipCoord::new(0, 0, 0),
        }
    }

    /// Geometry of chip `chip` in a grid of blocks.
    ///
    /// # Panics
    /// If the block does not evenly divide the global space, the chip
    /// coordinate is out of range, or a chip would own more than 64 cells
    /// (the position-flit destination mask is a `u64`).
    pub fn new(global: SimulationSpace, block: (u32, u32, u32), chip: ChipCoord) -> Self {
        assert!(
            global.dx.is_multiple_of(block.0) && global.dy.is_multiple_of(block.1) && global.dz.is_multiple_of(block.2),
            "block {block:?} does not divide global {global:?}"
        );
        let g = ChipGeometry {
            global,
            block,
            chip,
        };
        let grid = g.grid();
        assert!(
            chip.x < grid.0 && chip.y < grid.1 && chip.z < grid.2,
            "chip {chip:?} outside grid {grid:?}"
        );
        assert!(
            g.num_cbbs() <= 64,
            "at most 64 cells per chip supported (destination masks are u64)"
        );
        g
    }

    /// Node-grid dimensions.
    pub fn grid(&self) -> (u32, u32, u32) {
        (
            self.global.dx / self.block.0,
            self.global.dy / self.block.1,
            self.global.dz / self.block.2,
        )
    }

    /// Total chips in the grid.
    pub fn num_chips(&self) -> u32 {
        let g = self.grid();
        g.0 * g.1 * g.2
    }

    /// Global coordinates of this chip's first (lowest-coordinate) cell.
    pub fn origin(&self) -> CellCoord {
        CellCoord::new(
            (self.chip.x * self.block.0) as i32,
            (self.chip.y * self.block.1) as i32,
            (self.chip.z * self.block.2) as i32,
        )
    }

    /// CBBs (= local cells) on this chip.
    pub fn num_cbbs(&self) -> usize {
        (self.block.0 * self.block.1 * self.block.2) as usize
    }

    /// Local CBB index of a local cell coordinate (Eq. 7 over the block).
    pub fn cbb_index(&self, local: CellCoord) -> u16 {
        debug_assert!(
            (0..self.block.0 as i32).contains(&local.x)
                && (0..self.block.1 as i32).contains(&local.y)
                && (0..self.block.2 as i32).contains(&local.z)
        );
        (self.block.1 * self.block.2 * local.x as u32
            + self.block.2 * local.y as u32
            + local.z as u32) as u16
    }

    /// Local cell coordinate of a CBB index.
    pub fn cbb_local(&self, cbb: u16) -> CellCoord {
        let id = cbb as u32;
        let z = id % self.block.2;
        let y = (id / self.block.2) % self.block.1;
        let x = id / (self.block.1 * self.block.2);
        CellCoord::new(x as i32, y as i32, z as i32)
    }

    /// Global cell coordinate served by a CBB.
    pub fn cbb_gcell(&self, cbb: u16) -> CellCoord {
        let o = self.origin();
        let l = self.cbb_local(cbb);
        CellCoord::new(o.x + l.x, o.y + l.y, o.z + l.z)
    }

    /// CBB index of a global cell if this chip owns it.
    pub fn cbb_of_gcell(&self, gcell: CellCoord) -> Option<u16> {
        let o = self.origin();
        let l = CellCoord::new(gcell.x - o.x, gcell.y - o.y, gcell.z - o.z);
        if (0..self.block.0 as i32).contains(&l.x)
            && (0..self.block.1 as i32).contains(&l.y)
            && (0..self.block.2 as i32).contains(&l.z)
        {
            Some(self.cbb_index(l))
        } else {
            None
        }
    }

    /// Chip that owns a (wrapped) global cell.
    pub fn chip_of_gcell(&self, gcell: CellCoord) -> ChipCoord {
        let w = self.global.wrap_coord(gcell);
        ChipCoord::new(
            w.x as u32 / self.block.0,
            w.y as u32 / self.block.1,
            w.z as u32 / self.block.2,
        )
    }

    /// The 13 half-shell destinations of a CBB's cell, across chips.
    pub fn halfshell_dests(&self, cbb: u16) -> Vec<Dest> {
        let gcell = self.cbb_gcell(cbb);
        fasda_md::celllist::HALF_SHELL_OFFSETS
            .iter()
            .map(|&off| {
                let gdest = self.global.wrap_coord(gcell.offset(off));
                let chip = self.chip_of_gcell(gdest);
                let peer = ChipGeometry {
                    chip,
                    ..*self
                };
                Dest {
                    gcell: gdest,
                    chip,
                    cbb: peer.cbb_of_gcell(gdest).expect("owner chip owns its cell"),
                }
            })
            .collect()
    }

    /// The distinct peer chips this chip sends positions to (half-shell
    /// direction), excluding itself. Order is deterministic.
    pub fn send_chips(&self) -> Vec<ChipCoord> {
        let mut out = Vec::new();
        for cbb in 0..self.num_cbbs() as u16 {
            for d in self.halfshell_dests(cbb) {
                if d.chip != self.chip && !out.contains(&d.chip) {
                    out.push(d.chip);
                }
            }
        }
        out
    }

    /// The distinct peer chips this chip *receives* positions from (the
    /// mirrored half-shell), excluding itself.
    pub fn recv_chips(&self) -> Vec<ChipCoord> {
        let mut out = Vec::new();
        for cbb in 0..self.num_cbbs() as u16 {
            let gcell = self.cbb_gcell(cbb);
            for &(x, y, z) in fasda_md::celllist::HALF_SHELL_OFFSETS.iter() {
                let gsrc = self.global.wrap_coord(gcell.offset((-x, -y, -z)));
                let chip = self.chip_of_gcell(gsrc);
                if chip != self.chip && !out.contains(&chip) {
                    out.push(chip);
                }
            }
        }
        out
    }

    /// GCID of a global cell (Eq. 7 over the global space).
    pub fn gcid(&self, gcell: CellCoord) -> CellId {
        self.global.cell_id(gcell)
    }

    /// First level of ID conversion (§4.2): express a global cell
    /// coordinate relative to *this* chip's origin, modulo the global
    /// dimensions — "as if [all cells] are from node (0,0)". The result
    /// is a coordinate in `[0, D)` per axis whose block-interior part
    /// `[0, B)` is this chip's own cells.
    pub fn gcid_to_lcid(&self, gcell: CellCoord) -> CellCoord {
        let o = self.origin();
        self.global
            .wrap_coord(CellCoord::new(gcell.x - o.x, gcell.y - o.y, gcell.z - o.z))
    }

    /// Second level of ID conversion (§4.2): the relative cell ID of a
    /// source cell as seen from a destination cell, in `{1,2,3}` per axis
    /// with the destination's own cell at `(2,2,2)`.
    ///
    /// # Panics
    /// If the cells are not within one cell of each other (they must be
    /// neighbours for a range-limited interaction).
    pub fn rcid(&self, src_gcell: CellCoord, dest_gcell: CellCoord) -> (u8, u8, u8) {
        let wrap_delta = |s: i32, d: i32, dim: u32| -> i32 {
            let mut delta = (s - d).rem_euclid(dim as i32);
            if delta > dim as i32 / 2 {
                delta -= dim as i32;
            }
            assert!(
                (-1..=1).contains(&delta),
                "cells {src_gcell:?} and {dest_gcell:?} are not neighbours"
            );
            delta
        };
        let dx = wrap_delta(src_gcell.x, dest_gcell.x, self.global.dx);
        let dy = wrap_delta(src_gcell.y, dest_gcell.y, self.global.dy);
        let dz = wrap_delta(src_gcell.z, dest_gcell.z, self.global.dz);
        ((dx + 2) as u8, (dy + 2) as u8, (dz + 2) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eight_chip_6cube(chip: ChipCoord) -> ChipGeometry {
        ChipGeometry::new(SimulationSpace::cubic(6), (3, 3, 3), chip)
    }

    #[test]
    fn single_chip_owns_everything() {
        let g = ChipGeometry::single_chip(SimulationSpace::cubic(3));
        assert_eq!(g.num_chips(), 1);
        assert_eq!(g.num_cbbs(), 27);
        for cbb in 0..27u16 {
            assert_eq!(g.cbb_of_gcell(g.cbb_gcell(cbb)), Some(cbb));
            for d in g.halfshell_dests(cbb) {
                assert_eq!(d.chip, g.chip);
            }
        }
        assert!(g.send_chips().is_empty());
    }

    #[test]
    fn grid_partition_8_chips() {
        let g = eight_chip_6cube(ChipCoord::new(1, 0, 1));
        assert_eq!(g.grid(), (2, 2, 2));
        assert_eq!(g.num_chips(), 8);
        assert_eq!(g.origin(), CellCoord::new(3, 0, 3));
        assert_eq!(g.num_cbbs(), 27);
        // cell (4,1,5) is local
        assert!(g.cbb_of_gcell(CellCoord::new(4, 1, 5)).is_some());
        // cell (4,4,5) belongs to chip (1,1,1)
        assert_eq!(g.cbb_of_gcell(CellCoord::new(4, 4, 5)), None);
        assert_eq!(
            g.chip_of_gcell(CellCoord::new(4, 4, 5)),
            ChipCoord::new(1, 1, 1)
        );
    }

    #[test]
    fn cbb_index_roundtrip() {
        let g = ChipGeometry::new(
            SimulationSpace::new(4, 4, 4),
            (2, 2, 2),
            ChipCoord::new(1, 1, 0),
        );
        for cbb in 0..g.num_cbbs() as u16 {
            assert_eq!(g.cbb_index(g.cbb_local(cbb)), cbb);
        }
    }

    #[test]
    fn halfshell_dests_cover_13_distinct() {
        let g = eight_chip_6cube(ChipCoord::new(0, 0, 0));
        for cbb in 0..g.num_cbbs() as u16 {
            let d = g.halfshell_dests(cbb);
            assert_eq!(d.len(), 13);
            let mut cells: Vec<_> = d.iter().map(|x| x.gcell).collect();
            cells.sort_by_key(|c| (c.x, c.y, c.z));
            cells.dedup();
            assert_eq!(cells.len(), 13);
            // each dest's owner chip really owns the cell
            for dest in &d {
                let peer = ChipGeometry {
                    chip: dest.chip,
                    ..g
                };
                assert_eq!(peer.cbb_of_gcell(dest.gcell), Some(dest.cbb));
            }
        }
    }

    #[test]
    fn eight_chip_torus_neighbours() {
        // In a 2×2×2 node grid every other chip is adjacent: 7 send peers.
        let g = eight_chip_6cube(ChipCoord::new(0, 0, 0));
        assert_eq!(g.send_chips().len(), 7);
        assert_eq!(g.recv_chips().len(), 7);
    }

    /// Fig. 9 left example, mapped to our 3-D API on a 6×3×3 space with
    /// 3×3×3 blocks (nodes (0,0,0) and (1,0,0)): a particle from GCID
    /// (5,2) in node (1,0) sent to node (0,0) keeps its LCID.
    #[test]
    fn fig9_left_lcid_unchanged_at_node_zero() {
        let global = SimulationSpace::new(6, 3, 3);
        let node00 = ChipGeometry::new(global, (3, 3, 3), ChipCoord::new(0, 0, 0));
        let src = CellCoord::new(5, 2, 0);
        assert_eq!(node00.gcid_to_lcid(src), src, "node (0,0) needs no conversion");
    }

    /// Fig. 9 right example: a particle from GCID (2,1) in node (0,0)
    /// sent to node (1,0) gets LCID (5,1); the destination cell GCID
    /// (3,0) appears as (0,0) locally.
    #[test]
    fn fig9_right_lcid_relative_to_destination() {
        let global = SimulationSpace::new(6, 3, 3);
        let node10 = ChipGeometry::new(global, (3, 3, 3), ChipCoord::new(1, 0, 0));
        assert_eq!(
            node10.gcid_to_lcid(CellCoord::new(2, 1, 0)),
            CellCoord::new(5, 1, 0)
        );
        assert_eq!(
            node10.gcid_to_lcid(CellCoord::new(3, 0, 0)),
            CellCoord::new(0, 0, 0),
            "destination cell appears as (0,0) in its local node"
        );
    }

    #[test]
    fn rcid_home_is_222() {
        let g = eight_chip_6cube(ChipCoord::new(0, 0, 0));
        let c = CellCoord::new(1, 1, 1);
        assert_eq!(g.rcid(c, c), (2, 2, 2));
    }

    #[test]
    fn rcid_neighbours_in_123() {
        let g = eight_chip_6cube(ChipCoord::new(0, 0, 0));
        let home = CellCoord::new(0, 0, 0);
        // wrapped neighbour at (5,5,5) is (-1,-1,-1) relative → RCID (1,1,1)
        assert_eq!(g.rcid(CellCoord::new(5, 5, 5), home), (1, 1, 1));
        assert_eq!(g.rcid(CellCoord::new(1, 0, 5), home), (3, 2, 1));
    }

    #[test]
    #[should_panic(expected = "not neighbours")]
    fn rcid_rejects_distant_cells() {
        let g = eight_chip_6cube(ChipCoord::new(0, 0, 0));
        g.rcid(CellCoord::new(0, 0, 0), CellCoord::new(3, 0, 0));
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn rejects_nondividing_block() {
        ChipGeometry::new(SimulationSpace::cubic(5), (2, 2, 2), ChipCoord::new(0, 0, 0));
    }
}
