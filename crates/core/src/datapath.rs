//! The shared numerical datapath: filter + force pipeline arithmetic
//! (paper §3.3–3.4, Fig. 6–7).
//!
//! Both execution models (functional and timed) evaluate pairs with
//! exactly this arithmetic:
//!
//! 1. **Filter** — fixed-point: subtract the RCID-concatenated positions,
//!    square and sum in `Q5.26`, compare against `Rc² = 1` and against the
//!    excluded-region threshold `2^-n_sections`. Pass ⇒ the pair enters
//!    the force pipeline.
//! 2. **Force pipeline** — floating point: convert `r²` to `f32`, look up
//!    `r⁻¹⁴` and `r⁻⁸` by linear interpolation (Eq. 8), combine with the
//!    element-pair coefficients (Eq. 2) and scale the fixed-point
//!    displacement converted to `f32`.
//!
//! Forces accumulate in `f32` (the Force Cache stores "32-bit floating
//! point forces", §3.1).

use fasda_arith::fixed::{Fix, FixVec3};
use fasda_arith::interp::{InterpTable, LjForceTable, LjPotentialTable, TableConfig};
use fasda_md::element::{Element, PairTable};
use fasda_md::ewald::EwaldParams;

/// A filtered pair ready for force evaluation: fixed-point displacement
/// and squared distance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FilteredPair {
    /// `r_home − r_neighbour` in concatenated fixed point.
    pub delta: FixVec3,
    /// `|delta|²` in fixed point, guaranteed inside the table domain.
    pub r2: Fix,
}

/// The electrostatic extension of the datapath: the real-space PME
/// kernel tabulated through the same section/bin mechanism as the LJ
/// terms ("the RL force pipelines are nearly identical", §2.1), plus the
/// per-element charge ROM.
#[derive(Clone, Debug)]
struct CoulombPath {
    force_table: InterpTable,
    pot_table: InterpTable,
    charge: [f32; Element::COUNT],
}

/// The bit-faithful filter + force-pipeline arithmetic.
#[derive(Clone, Debug)]
pub struct ForceDatapath {
    force_table: LjForceTable,
    pot_table: LjPotentialTable,
    coulomb: Option<CoulombPath>,
    /// `[a][b] → (c14, c8)` force coefficients as the `f32` words the
    /// element-indexed coefficient BRAM holds (§3.4).
    force_coeff: [[(f32, f32); Element::COUNT]; Element::COUNT],
    /// `[a][b] → (c12, c6)` potential coefficients (validation path).
    pot_coeff: [[(f32, f32); Element::COUNT]; Element::COUNT],
    /// Inclusive lower bound of the covered `r²` domain in fixed point.
    min_r2: Fix,
    /// Exclusive upper bound: `Rc² = 1`.
    cutoff_r2: Fix,
}

impl ForceDatapath {
    /// Build the datapath from the physical pair table and a table
    /// geometry.
    pub fn new(pairs: &PairTable, table: TableConfig) -> Self {
        let mut force_coeff = [[(0.0f32, 0.0f32); Element::COUNT]; Element::COUNT];
        let mut pot_coeff = [[(0.0f32, 0.0f32); Element::COUNT]; Element::COUNT];
        for a in Element::ALL {
            for b in Element::ALL {
                let c = pairs.get(a, b);
                force_coeff[a.index()][b.index()] = (c.c14 as f32, c.c8 as f32);
                pot_coeff[a.index()][b.index()] = (c.c12 as f32, c.c6 as f32);
            }
        }
        ForceDatapath {
            force_table: LjForceTable::new(table),
            pot_table: LjPotentialTable::new(table),
            coulomb: None,
            force_coeff,
            pot_coeff,
            min_r2: Fix::from_f64(table.domain_min()),
            cutoff_r2: Fix::ONE,
        }
    }

    /// Extend the pipeline with the real-space PME electrostatic term
    /// (§2.1). The Ewald kernel is tabulated with the *same* section/bin
    /// interpolation as the LJ terms — the "trivial modification" that
    /// retargets the force pipeline to a different model (§3.4).
    pub fn with_electrostatics(mut self, params: EwaldParams) -> Self {
        let cfg = self.force_table.config();
        let mut charge = [0.0f32; Element::COUNT];
        for e in Element::ALL {
            charge[e.index()] = e.charge() as f32;
        }
        self.coulomb = Some(CoulombPath {
            force_table: InterpTable::build_fn(cfg, params.force_kernel()),
            pot_table: InterpTable::build_fn(cfg, params.potential_kernel()),
            charge,
        });
        self
    }

    /// True when the electrostatic path is configured.
    pub fn has_electrostatics(&self) -> bool {
        self.coulomb.is_some()
    }

    /// Set the filter's cutoff radius in cell units (`0 < c ≤ 1`).
    /// The paper fixes `Rc = cell edge` (Fig. 3: the largest value that
    /// keeps only 26 neighbour cells); smaller values model a cell edge
    /// *larger* than the cutoff, where "unnecessary margins" make the
    /// filters reject more candidates.
    pub fn with_cutoff(mut self, cells: f64) -> Self {
        assert!(
            cells > 0.0 && cells <= 1.0,
            "cutoff must be in (0, 1] cell units"
        );
        self.cutoff_r2 = Fix::from_f64(cells * cells);
        self
    }

    /// The active squared cutoff in cell units.
    pub fn cutoff_sq(&self) -> f64 {
        self.cutoff_r2.to_f64()
    }

    /// Table geometry in use.
    pub fn table_config(&self) -> TableConfig {
        self.force_table.config()
    }

    /// The fixed-point pair filter: pass iff
    /// `min_r2 ≤ |a−b|² < Rc²`. `a` and `b` are RCID-concatenated
    /// coordinates. Returns the filtered pair on pass.
    #[inline]
    pub fn filter(&self, home: FixVec3, neighbour: FixVec3) -> Option<FilteredPair> {
        let delta = home.delta(neighbour);
        let r2 = delta.norm_sq();
        if r2 < self.cutoff_r2 && r2 >= self.min_r2 {
            Some(FilteredPair { delta, r2 })
        } else {
            None
        }
    }

    /// Convert a filtered fixed-point `r²` to the force pipeline's `f32`.
    /// The filter guarantees `r² < Rc²` on the `Q5.26` grid, but `f32` has
    /// only a 24-bit mantissa, so a passing value within `2⁻²⁶` of the
    /// cutoff can round *up* to exactly `Rc²` — outside the table domain.
    /// Clamp such pairs into the last interpolation bin, as the hardware's
    /// table addressing does.
    #[inline]
    fn r2_to_f32(&self, r2: Fix) -> f32 {
        const BELOW_ONE: f32 = 0.999_999_94; // largest f32 < 1.0
        let v = r2.to_f32();
        if v >= 1.0 {
            BELOW_ONE
        } else {
            v
        }
    }

    /// Force-pipeline body: force **on the home particle** of the pair,
    /// in kcal/mol/cell as `f32`. The neighbour receives the negation
    /// (Newton's third law, applied by the caller).
    #[inline]
    pub fn force(&self, home_elem: Element, nbr_elem: Element, pair: FilteredPair) -> [f32; 3] {
        let r2 = self.r2_to_f32(pair.r2);
        let (r14, r8) = self.force_table.eval(r2);
        let (c14, c8) = self.force_coeff[home_elem.index()][nbr_elem.index()];
        let mut scale = c14 * r14 - c8 * r8;
        if let Some(c) = &self.coulomb {
            let qq = c.charge[home_elem.index()] * c.charge[nbr_elem.index()];
            if qq != 0.0 {
                scale += qq * c.force_table.eval_filtered(r2);
            }
        }
        let [dx, dy, dz] = pair.delta.to_f32();
        [scale * dx, scale * dy, scale * dz]
    }

    /// Pair potential energy via the interpolated `r⁻¹²`/`r⁻⁶` tables,
    /// kcal/mol as `f32` (validation/diagnostic path).
    #[inline]
    pub fn potential(&self, a: Element, b: Element, pair: FilteredPair) -> f32 {
        let r2 = self.r2_to_f32(pair.r2);
        let (r12, r6) = self.pot_table.eval(r2);
        let (c12, c6) = self.pot_coeff[a.index()][b.index()];
        let mut v = c12 * r12 - c6 * r6;
        if let Some(c) = &self.coulomb {
            let qq = c.charge[a.index()] * c.charge[b.index()];
            if qq != 0.0 {
                v += qq * c.pot_table.eval_filtered(r2);
            }
        }
        v
    }

    /// Concatenate an RCID with an in-cell offset (§4.2): coordinate
    /// value `rcid + offset`, RCID ∈ {1,2,3}.
    #[inline]
    pub fn concat(rcid: (u8, u8, u8), offset: FixVec3) -> FixVec3 {
        debug_assert!(offset.x.is_cell_offset() && offset.y.is_cell_offset() && offset.z.is_cell_offset());
        let f = |r: u8, o: Fix| -> Fix {
            debug_assert!((1..=3).contains(&r), "RCID component {r} out of range");
            Fix::from_bits((r as i32) << fasda_arith::fixed::FRAC_BITS) + o
        };
        FixVec3::new(
            f(rcid.0, offset.x),
            f(rcid.1, offset.y),
            f(rcid.2, offset.z),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasda_md::units::UnitSystem;

    fn dp() -> ForceDatapath {
        ForceDatapath::new(&PairTable::new(UnitSystem::PAPER), TableConfig::PAPER)
    }

    fn concat_home(off: [f64; 3]) -> FixVec3 {
        ForceDatapath::concat(
            (2, 2, 2),
            FixVec3::from_f64(off[0], off[1], off[2]),
        )
    }

    #[test]
    fn filter_passes_within_cutoff() {
        let d = dp();
        let a = concat_home([0.5, 0.5, 0.5]);
        let b = concat_home([0.9, 0.5, 0.5]);
        let p = d.filter(a, b).expect("r=0.4 passes");
        assert!((p.r2.to_f64() - 0.16).abs() < 1e-6);
        assert!((p.delta.x.to_f64() + 0.4).abs() < 1e-6);
    }

    #[test]
    fn filter_rejects_at_and_beyond_cutoff() {
        let d = dp();
        let a = concat_home([0.0, 0.0, 0.0]);
        // neighbour cell at +x: rcid (3,2,2), offset 0 → distance exactly 1
        let b = ForceDatapath::concat((3, 2, 2), FixVec3::ZERO);
        assert!(d.filter(a, b).is_none(), "r = Rc must be rejected");
        let c = ForceDatapath::concat((3, 2, 2), FixVec3::from_f64(0.5, 0.0, 0.0));
        assert!(d.filter(a, c).is_none(), "r = 1.5 rejected");
    }

    #[test]
    fn filter_rejects_excluded_region() {
        let d = dp();
        let a = concat_home([0.5, 0.5, 0.5]);
        let b = concat_home([0.5 + 1e-4, 0.5, 0.5]);
        assert!(d.filter(a, b).is_none(), "r=1e-4 is in the excluded region");
        // self-pair distance 0 is also excluded
        assert!(d.filter(a, a).is_none());
    }

    #[test]
    fn force_matches_exact_lj_within_table_error() {
        let d = dp();
        let pairs = PairTable::new(UnitSystem::PAPER);
        for r in [0.3f64, 0.35, 0.45, 0.6, 0.8, 0.95] {
            let a = concat_home([0.0, 0.2, 0.2]);
            let off_b = [r, 0.2, 0.2];
            let b = concat_home(off_b);
            let p = d.filter(a, b).unwrap();
            let f = d.force(Element::Na, Element::Na, p);
            // exact: force on home = s·(r_home − r_nbr); home at x=0, nbr at x=r
            let s = pairs.force_scale(Element::Na, Element::Na, r * r);
            let want = s * (0.0 - r);
            let got = f[0] as f64;
            let tol = want.abs().max(1e-6) * 5e-3;
            assert!(
                (got - want).abs() < tol,
                "r={r}: got {got}, want {want}"
            );
            assert!(f[1].abs() < 1e-9 && f[2].abs() < 1e-9);
        }
    }

    #[test]
    fn force_antisymmetric_under_swap() {
        let d = dp();
        let a = concat_home([0.1, 0.6, 0.3]);
        let b = concat_home([0.5, 0.4, 0.8]);
        let pab = d.filter(a, b).unwrap();
        let pba = d.filter(b, a).unwrap();
        let fab = d.force(Element::Na, Element::Na, pab);
        let fba = d.force(Element::Na, Element::Na, pba);
        for k in 0..3 {
            assert_eq!(fab[k], -fba[k], "component {k}");
        }
    }

    #[test]
    fn potential_matches_exact_within_table_error() {
        let d = dp();
        let pairs = PairTable::new(UnitSystem::PAPER);
        let a = concat_home([0.0, 0.0, 0.0]);
        let b = concat_home([0.4, 0.1, 0.0]);
        let p = d.filter(a, b).unwrap();
        let got = d.potential(Element::Na, Element::Na, p) as f64;
        let r2 = p.r2.to_f64();
        let want = pairs.potential(Element::Na, Element::Na, r2);
        assert!(
            (got - want).abs() < want.abs().max(1e-6) * 5e-3,
            "{got} vs {want}"
        );
    }

    #[test]
    fn concat_rejects_bad_rcid_in_debug() {
        // Valid construction with all three RCID extremes.
        let v = ForceDatapath::concat((1, 2, 3), FixVec3::from_f64(0.25, 0.5, 0.75));
        assert_eq!(v.to_f64(), [1.25, 2.5, 3.75]);
    }

    #[test]
    fn electrostatic_path_adds_coulomb_force() {
        use fasda_md::ewald::EwaldParams;
        use fasda_md::units::UnitSystem;
        let params = EwaldParams::standard(UnitSystem::PAPER);
        let d = ForceDatapath::new(&PairTable::new(UnitSystem::PAPER), TableConfig::PAPER)
            .with_electrostatics(params);
        assert!(d.has_electrostatics());
        let a = concat_home([0.0, 0.0, 0.0]);
        let b = concat_home([0.4, 0.0, 0.0]);
        let p = d.filter(a, b).unwrap();
        // like charges add repulsion relative to neutral LJ
        let f_neutral = d.force(Element::Na, Element::Na, p)[0];
        let f_like = d.force(Element::NaPlus, Element::NaPlus, p)[0];
        let f_unlike = d.force(Element::NaPlus, Element::ClMinus, p)[0];
        // home at x=0, neighbour at x=0.4 → repulsion pushes home in -x
        assert!(f_like < f_neutral, "like charges more repulsive");
        assert!(f_unlike > f_neutral - 1.0 && f_unlike > f_like, "opposite charges attract");
        // magnitude matches the exact Ewald term within table error
        let exact = params.force_scale_unit(p.r2.to_f64()) * (0.0 - 0.4);
        let got = f_like as f64 - f_neutral as f64;
        assert!(
            ((got - exact) / exact).abs() < 5e-3,
            "coulomb term {got} vs exact {exact}"
        );
    }

    #[test]
    fn cross_element_uses_mixed_coefficients() {
        let d = dp();
        let a = concat_home([0.0, 0.0, 0.0]);
        let b = concat_home([0.45, 0.0, 0.0]);
        let p = d.filter(a, b).unwrap();
        let f_na_na = d.force(Element::Na, Element::Na, p)[0];
        let f_na_ar = d.force(Element::Na, Element::Ar, p)[0];
        assert_ne!(f_na_na, f_na_ar, "element lookup must differentiate pairs");
    }
}
