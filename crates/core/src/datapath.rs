//! The shared numerical datapath: filter + force pipeline arithmetic
//! (paper §3.3–3.4, Fig. 6–7).
//!
//! Both execution models (functional and timed) evaluate pairs with
//! exactly this arithmetic:
//!
//! 1. **Filter** — fixed-point: subtract the RCID-concatenated positions,
//!    square and sum in `Q5.26`, compare against `Rc² = 1` and against the
//!    excluded-region threshold `2^-n_sections`. Pass ⇒ the pair enters
//!    the force pipeline.
//! 2. **Force pipeline** — floating point: convert `r²` to `f32`, look up
//!    `r⁻¹⁴` and `r⁻⁸` by linear interpolation (Eq. 8), combine with the
//!    element-pair coefficients (Eq. 2) and scale the fixed-point
//!    displacement converted to `f32`.
//!
//! Forces accumulate in `f32` (the Force Cache stores "32-bit floating
//! point forces", §3.1).

use fasda_arith::fixed::{Fix, FixVec3, FRAC_BITS};
use fasda_arith::float_bits::{fused_index, section_bin, SectionBin};
use fasda_arith::interp::{InterpTable, LjForceTable, LjPotentialTable, TableConfig};
use fasda_md::element::{Element, PairTable};
use fasda_md::ewald::EwaldParams;

/// A filtered pair ready for force evaluation: fixed-point displacement
/// and squared distance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FilteredPair {
    /// `r_home − r_neighbour` in concatenated fixed point.
    pub delta: FixVec3,
    /// `|delta|²` in fixed point, guaranteed inside the table domain.
    pub r2: Fix,
}

/// One survivor of a fused filter→force scan: the home slot the
/// comparison landed on and the finished force words, ready to retire.
/// This is the *only* per-hit state the fused kernel
/// ([`ForceDatapath::fused_scan_into`]) materializes — no intermediate
/// [`FilteredPair`] vector exists on that path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScanHit {
    /// Home slot of the passing pair.
    pub slot: u16,
    /// Force on the home particle (neighbour gets the negation),
    /// bit-identical to the scalar [`ForceDatapath::force`] result.
    pub force: [f32; 3],
}

/// Structure-of-arrays snapshot of one cell's home particles: the
/// RCID-concatenated coordinates split into per-axis `Q5.26` bit banks
/// plus a dense element array. This is the memory layout the batch filter
/// kernel ([`ForceDatapath::filter_scan_into`]) streams through — three
/// contiguous `i32` lanes instead of an array of `FixVec3` structs — so
/// one station's whole scan runs as a tight, auto-vectorizable loop.
#[derive(Clone, Debug, Default)]
pub struct HomeSoa {
    /// `x` coordinates as raw `Q5.26` bits.
    pub x: Vec<i32>,
    /// `y` coordinates as raw `Q5.26` bits.
    pub y: Vec<i32>,
    /// `z` coordinates as raw `Q5.26` bits.
    pub z: Vec<i32>,
    /// Element of each slot (coefficient-BRAM index source).
    pub elem: Vec<Element>,
}

impl HomeSoa {
    /// Empty banks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild the banks from a cell's concatenated snapshot (reuses the
    /// existing allocations; called once per force phase).
    pub fn rebuild(&mut self, elems: &[Element], concat: &[FixVec3]) {
        debug_assert_eq!(elems.len(), concat.len());
        self.x.clear();
        self.y.clear();
        self.z.clear();
        self.elem.clear();
        self.x.extend(concat.iter().map(|c| c.x.to_bits()));
        self.y.extend(concat.iter().map(|c| c.y.to_bits()));
        self.z.extend(concat.iter().map(|c| c.z.to_bits()));
        self.elem.extend_from_slice(elems);
    }

    /// Slots stored.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when no slots are stored.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

/// The electrostatic extension of the datapath: the real-space PME
/// kernel tabulated through the same section/bin mechanism as the LJ
/// terms ("the RL force pipelines are nearly identical", §2.1), plus the
/// per-element charge ROM.
#[derive(Clone, Debug)]
struct CoulombPath {
    force_table: InterpTable,
    pot_table: InterpTable,
    charge: [f32; Element::COUNT],
}

/// Largest `f32` below `1.0`: the clamp target for filtered `r²` that
/// the 24-bit mantissa rounds up to exactly `Rc² = 1` (see
/// [`ForceDatapath::r2_to_f32`]).
const BELOW_ONE: f32 = 0.999_999_94;

/// The bit-faithful filter + force-pipeline arithmetic.
#[derive(Clone, Debug)]
pub struct ForceDatapath {
    force_table: LjForceTable,
    /// The `r⁻¹⁴` and `r⁻⁸` coefficient words of `force_table`
    /// interleaved as `[a14, b14, a8, b8]` per `(section, bin)`: both
    /// terms share one index, so the hot path fetches one 16-byte record
    /// instead of touching two separate tables. Same words, same
    /// arithmetic — a pure memory-layout change.
    fused_force: Vec<[f32; 4]>,
    pot_table: LjPotentialTable,
    coulomb: Option<CoulombPath>,
    /// `[a][b] → (c14, c8)` force coefficients as the `f32` words the
    /// element-indexed coefficient BRAM holds (§3.4).
    force_coeff: [[(f32, f32); Element::COUNT]; Element::COUNT],
    /// `[a][b] → (c12, c6)` potential coefficients (validation path).
    pot_coeff: [[(f32, f32); Element::COUNT]; Element::COUNT],
    /// Inclusive lower bound of the covered `r²` domain in fixed point.
    min_r2: Fix,
    /// Exclusive upper bound: `Rc² = 1`.
    cutoff_r2: Fix,
}

impl ForceDatapath {
    /// Build the datapath from the physical pair table and a table
    /// geometry.
    pub fn new(pairs: &PairTable, table: TableConfig) -> Self {
        let mut force_coeff = [[(0.0f32, 0.0f32); Element::COUNT]; Element::COUNT];
        let mut pot_coeff = [[(0.0f32, 0.0f32); Element::COUNT]; Element::COUNT];
        for a in Element::ALL {
            for b in Element::ALL {
                let c = pairs.get(a, b);
                force_coeff[a.index()][b.index()] = (c.c14 as f32, c.c8 as f32);
                pot_coeff[a.index()][b.index()] = (c.c12 as f32, c.c6 as f32);
            }
        }
        let force_table = LjForceTable::new(table);
        let fused_force = force_table
            .r14
            .coeffs()
            .iter()
            .zip(force_table.r8.coeffs())
            .map(|(&(a14, b14), &(a8, b8))| [a14, b14, a8, b8])
            .collect();
        ForceDatapath {
            force_table,
            fused_force,
            pot_table: LjPotentialTable::new(table),
            coulomb: None,
            force_coeff,
            pot_coeff,
            min_r2: Fix::from_f64(table.domain_min()),
            cutoff_r2: Fix::ONE,
        }
    }

    /// Extend the pipeline with the real-space PME electrostatic term
    /// (§2.1). The Ewald kernel is tabulated with the *same* section/bin
    /// interpolation as the LJ terms — the "trivial modification" that
    /// retargets the force pipeline to a different model (§3.4).
    pub fn with_electrostatics(mut self, params: EwaldParams) -> Self {
        let cfg = self.force_table.config();
        let mut charge = [0.0f32; Element::COUNT];
        for e in Element::ALL {
            charge[e.index()] = e.charge() as f32;
        }
        self.coulomb = Some(CoulombPath {
            force_table: InterpTable::build_fn(cfg, params.force_kernel()),
            pot_table: InterpTable::build_fn(cfg, params.potential_kernel()),
            charge,
        });
        self
    }

    /// True when the electrostatic path is configured.
    pub fn has_electrostatics(&self) -> bool {
        self.coulomb.is_some()
    }

    /// Set the filter's cutoff radius in cell units (`0 < c ≤ 1`).
    /// The paper fixes `Rc = cell edge` (Fig. 3: the largest value that
    /// keeps only 26 neighbour cells); smaller values model a cell edge
    /// *larger* than the cutoff, where "unnecessary margins" make the
    /// filters reject more candidates.
    pub fn with_cutoff(mut self, cells: f64) -> Self {
        assert!(
            cells > 0.0 && cells <= 1.0,
            "cutoff must be in (0, 1] cell units"
        );
        self.cutoff_r2 = Fix::from_f64(cells * cells);
        self
    }

    /// The active squared cutoff in cell units.
    pub fn cutoff_sq(&self) -> f64 {
        self.cutoff_r2.to_f64()
    }

    /// Table geometry in use.
    pub fn table_config(&self) -> TableConfig {
        self.force_table.config()
    }

    /// The fixed-point pair filter: pass iff
    /// `min_r2 ≤ |a−b|² < Rc²`. `a` and `b` are RCID-concatenated
    /// coordinates. Returns the filtered pair on pass.
    #[inline]
    pub fn filter(&self, home: FixVec3, neighbour: FixVec3) -> Option<FilteredPair> {
        let delta = home.delta(neighbour);
        let r2 = delta.norm_sq();
        if r2 < self.cutoff_r2 && r2 >= self.min_r2 {
            Some(FilteredPair { delta, r2 })
        } else {
            None
        }
    }

    /// Batch form of [`ForceDatapath::filter`]: scan home slots
    /// `scan_from..` of the SoA banks against one neighbour position and
    /// append every passing `(slot, pair)` to `hits`. Returns the number
    /// of comparisons performed (`len − scan_from`).
    ///
    /// Bit-identical to calling `filter` per slot: the kernel performs the
    /// same `Q5.26` wrapping subtract, DSP-truncating square (`(a·a) >>
    /// FRAC_BITS`) and wrapping sum on the raw bits, and the same
    /// inclusive/exclusive threshold compares — just on contiguous `i32`
    /// lanes with the per-call dispatch hoisted out of the loop.
    pub fn filter_scan_into(
        &self,
        home: &HomeSoa,
        nbr: FixVec3,
        scan_from: u16,
        hits: &mut Vec<(u16, FilteredPair)>,
    ) -> u64 {
        // Two passes per chunk: the r² reduction runs branchless over a
        // stack buffer (no data-dependent push in the loop, so it unrolls
        // and vectorizes), then a sparse predicate scan re-derives the
        // deltas for the few slots that pass. Same subtractions, same
        // wrapping squares — bit-identical hits in the same order.
        const CHUNK: usize = 64;
        let n = home.len();
        let from = (scan_from as usize).min(n);
        let (nx, ny, nz) = (nbr.x.to_bits(), nbr.y.to_bits(), nbr.z.to_bits());
        let lo = self.min_r2.to_bits();
        let hi = self.cutoff_r2.to_bits();
        let sq = |d: i32| (((d as i64) * (d as i64)) >> FRAC_BITS) as i32;
        let mut r2s = [0i32; CHUNK];
        let mut base = from;
        while base < n {
            let len = (n - base).min(CHUNK);
            let xs = &home.x[base..base + len];
            let ys = &home.y[base..base + len];
            let zs = &home.z[base..base + len];
            for i in 0..len {
                r2s[i] = sq(xs[i].wrapping_sub(nx))
                    .wrapping_add(sq(ys[i].wrapping_sub(ny)))
                    .wrapping_add(sq(zs[i].wrapping_sub(nz)));
            }
            for i in 0..len {
                let r2 = r2s[i];
                if r2 >= lo && r2 < hi {
                    hits.push((
                        (base + i) as u16,
                        FilteredPair {
                            delta: FixVec3::new(
                                Fix::from_bits(xs[i].wrapping_sub(nx)),
                                Fix::from_bits(ys[i].wrapping_sub(ny)),
                                Fix::from_bits(zs[i].wrapping_sub(nz)),
                            ),
                            r2: Fix::from_bits(r2),
                        },
                    ));
                }
            }
            base += len;
        }
        (n - from) as u64
    }

    /// Batch form of [`ForceDatapath::force`]: evaluate the force on the
    /// home particle for every filtered hit of one station's scan (the
    /// neighbour element is fixed for the whole batch) and append the
    /// results to `out` in hit order. Each entry is bit-identical to the
    /// scalar `force` call for the same pair.
    pub fn force_batch(
        &self,
        home_elem: &[Element],
        nbr_elem: Element,
        hits: &[(u16, FilteredPair)],
        out: &mut Vec<[f32; 3]>,
    ) {
        out.reserve(hits.len());
        for &(slot, pair) in hits {
            out.push(self.force(home_elem[slot as usize], nbr_elem, pair));
        }
    }

    /// The fused filter→force kernel: scan home slots `scan_from..` of
    /// the SoA banks against one neighbour and append a finished
    /// [`ScanHit`] — slot *and* force words — for every passing pair.
    /// Returns the number of comparisons performed (`len − scan_from`).
    ///
    /// This is the streaming-pipeline shape of the paper's hardware
    /// (filter bank feeding the force pipeline with no buffered
    /// intermediate): the `r²` reduction runs branchless over fixed-point
    /// lanes in chunks of 64 (LLVM vectorizes the `i64` squares 8 wide),
    /// the pass predicate is compressed into one `u64` mask per chunk,
    /// and survivors — extracted by bit-iteration, so the dense lane loop
    /// never branches — flow straight into the interpolation: branchless
    /// section/bin decode ([`fused_index`]) into the `[a14, b14, a8, b8]`
    /// fused coefficient record, two interpolation FMAs, element
    /// coefficients, delta scaling. Nothing is materialized between the
    /// stages: no [`FilteredPair`] vector, no second pass over hits.
    ///
    /// Bit-identical to the scalar `filter()` + `force()` composition:
    /// the same wrapping subtracts, DSP-truncating squares and wrapping
    /// sums on the raw `Q5.26` bits, the same threshold compares, and the
    /// same `f32` operations in the same order as [`ForceDatapath::force`]
    /// (pinned by the `soa_kernels` property tests).
    pub fn fused_scan_into(
        &self,
        home: &HomeSoa,
        nbr: FixVec3,
        nbr_elem: Element,
        scan_from: u16,
        hits: &mut Vec<ScanHit>,
    ) -> u64 {
        const CHUNK: usize = 64;
        let n = home.len();
        let from = (scan_from as usize).min(n);
        let (nx, ny, nz) = (nbr.x.to_bits(), nbr.y.to_bits(), nbr.z.to_bits());
        let lo = self.min_r2.to_bits();
        let hi = self.cutoff_r2.to_bits();
        let cfg = self.force_table.config();
        let (n_sections, log2_bins) = (cfg.n_sections, cfg.log2_bins);
        let sq = |d: i32| (((d as i64) * (d as i64)) >> FRAC_BITS) as i32;
        let mut r2s = [0i32; CHUNK];
        let mut base = from;
        while base < n {
            let len = (n - base).min(CHUNK);
            let xs = &home.x[base..base + len];
            let ys = &home.y[base..base + len];
            let zs = &home.z[base..base + len];
            // Stage 1: branchless r² lanes + compressed pass mask. The
            // predicate is folded into the mask instead of a conditional
            // push, so the loop has no data-dependent control flow.
            let mut mask = 0u64;
            for i in 0..len {
                let r2 = sq(xs[i].wrapping_sub(nx))
                    .wrapping_add(sq(ys[i].wrapping_sub(ny)))
                    .wrapping_add(sq(zs[i].wrapping_sub(nz)));
                r2s[i] = r2;
                mask |= u64::from(r2 >= lo && r2 < hi) << i;
            }
            if mask == 0 {
                base += len;
                continue;
            }
            // Stage 2a, dense chunks on the LJ-only pipeline: evaluate
            // the force on **every** lane unconditionally — clamp,
            // branchless section/bin decode, coefficient gather, the two
            // interpolation FMAs, element coefficients, delta scaling —
            // then compress through the pass mask. The lane loop has no
            // data-dependent control flow at all, so it vectorizes like
            // the r² pass; discarded lanes compute garbage that the mask
            // walk never reads (their table index is clamped into range
            // purely for memory safety). Surviving lanes execute exactly
            // the scalar op sequence of [`ForceDatapath::force`], so the
            // words pushed are bit-identical to the survivor walk below.
            //
            // Below ~1/4 occupancy the unconditional evaluation wastes
            // more than the mask walk's serial chain costs, so sparse
            // chunks (and the electrostatic pipeline, whose `eval_filtered`
            // call does not flatten into lanes) keep the survivor walk.
            // Both paths produce identical bits; the choice is pure
            // throughput and depends only on deterministic state.
            if self.coulomb.is_none() && mask.count_ones() as usize * 4 >= len {
                let mut rfs = [0.0f32; CHUNK];
                let mut idxs = [0u32; CHUNK];
                let mut scales = [0.0f32; CHUNK];
                let bin_mask = (1u32 << log2_bins) - 1;
                let top = (self.fused_force.len() - 1) as u32;
                let nbr_col = nbr_elem.index();
                let elems = &home.elem[base..base + len];
                // Clamp + branchless section/bin decode, pure int/float
                // lane ops (no loads beyond the lane arrays).
                for i in 0..len {
                    let v = Fix::from_bits(r2s[i]).to_f32();
                    let rf = if v >= 1.0 { BELOW_ONE } else { v };
                    let bits = rf.to_bits();
                    // Inline [`fused_index`]: identical bit-slicing for
                    // in-domain lanes, wrapping + clamped for the
                    // discarded ones (whose r² can be anything).
                    let section = (((bits >> 23) & 0xff) as i32)
                        .wrapping_sub(127)
                        .wrapping_add(n_sections as i32) as u32;
                    let bin = (bits >> (23 - log2_bins)) & bin_mask;
                    rfs[i] = rf;
                    idxs[i] = ((section << log2_bins) | bin).min(top);
                }
                // The two table gathers + interpolation FMAs, isolated so
                // the indexed loads don't stop the other loops from
                // vectorizing.
                for i in 0..len {
                    let c = self.fused_force[idxs[i] as usize];
                    let (r14, r8) = (c[0] * rfs[i] + c[1], c[2] * rfs[i] + c[3]);
                    let (c14, c8) = self.force_coeff[elems[i].index()][nbr_col];
                    scales[i] = c14 * r14 - c8 * r8;
                }
                // Delta scaling: subtract/convert/multiply lanes.
                let (fx, fy, fz) = (&mut rfs, &mut [0.0f32; CHUNK], &mut [0.0f32; CHUNK]);
                for i in 0..len {
                    fx[i] = scales[i] * Fix::from_bits(xs[i].wrapping_sub(nx)).to_f32();
                    fy[i] = scales[i] * Fix::from_bits(ys[i].wrapping_sub(ny)).to_f32();
                    fz[i] = scales[i] * Fix::from_bits(zs[i].wrapping_sub(nz)).to_f32();
                }
                while mask != 0 {
                    let i = mask.trailing_zeros() as usize;
                    mask &= mask - 1;
                    hits.push(ScanHit {
                        slot: (base + i) as u16,
                        force: [fx[i], fy[i], fz[i]],
                    });
                }
                base += len;
                continue;
            }
            // Stage 2b: survivors only, straight into the interpolation.
            while mask != 0 {
                let i = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let slot = base + i;
                let r2 = self.r2_to_f32(Fix::from_bits(r2s[i]));
                let c = self.fused_force[fused_index(r2, n_sections, log2_bins) as usize];
                let (r14, r8) = (c[0] * r2 + c[1], c[2] * r2 + c[3]);
                let (c14, c8) = self.force_coeff[home.elem[slot].index()][nbr_elem.index()];
                let mut scale = c14 * r14 - c8 * r8;
                if let Some(cl) = &self.coulomb {
                    let qq = cl.charge[home.elem[slot].index()] * cl.charge[nbr_elem.index()];
                    if qq != 0.0 {
                        scale += qq * cl.force_table.eval_filtered(r2);
                    }
                }
                let dx = Fix::from_bits(xs[i].wrapping_sub(nx)).to_f32();
                let dy = Fix::from_bits(ys[i].wrapping_sub(ny)).to_f32();
                let dz = Fix::from_bits(zs[i].wrapping_sub(nz)).to_f32();
                hits.push(ScanHit {
                    slot: slot as u16,
                    force: [scale * dx, scale * dy, scale * dz],
                });
            }
            base += len;
        }
        (n - from) as u64
    }

    /// Convert a filtered fixed-point `r²` to the force pipeline's `f32`.
    /// The filter guarantees `r² < Rc²` on the `Q5.26` grid, but `f32` has
    /// only a 24-bit mantissa, so a passing value within `2⁻²⁶` of the
    /// cutoff can round *up* to exactly `Rc²` — outside the table domain.
    /// Clamp such pairs into the last interpolation bin, as the hardware's
    /// table addressing does.
    #[inline]
    fn r2_to_f32(&self, r2: Fix) -> f32 {
        let v = r2.to_f32();
        if v >= 1.0 {
            BELOW_ONE
        } else {
            v
        }
    }

    /// Force-pipeline body: force **on the home particle** of the pair,
    /// in kcal/mol/cell as `f32`. The neighbour receives the negation
    /// (Newton's third law, applied by the caller).
    #[inline]
    pub fn force(&self, home_elem: Element, nbr_elem: Element, pair: FilteredPair) -> [f32; 3] {
        let r2 = self.r2_to_f32(pair.r2);
        let cfg = self.force_table.config();
        let (r14, r8) = match section_bin(r2, cfg.n_sections, cfg.log2_bins) {
            SectionBin::In { section, bin } => {
                let c = self.fused_force[(section << cfg.log2_bins | bin) as usize];
                (c[0] * r2 + c[1], c[2] * r2 + c[3])
            }
            out => {
                debug_assert!(false, "unfiltered r²={r2} reached force pipeline: {out:?}");
                (0.0, 0.0)
            }
        };
        let (c14, c8) = self.force_coeff[home_elem.index()][nbr_elem.index()];
        let mut scale = c14 * r14 - c8 * r8;
        if let Some(c) = &self.coulomb {
            let qq = c.charge[home_elem.index()] * c.charge[nbr_elem.index()];
            if qq != 0.0 {
                scale += qq * c.force_table.eval_filtered(r2);
            }
        }
        let [dx, dy, dz] = pair.delta.to_f32();
        [scale * dx, scale * dy, scale * dz]
    }

    /// Pair potential energy via the interpolated `r⁻¹²`/`r⁻⁶` tables,
    /// kcal/mol as `f32` (validation/diagnostic path).
    #[inline]
    pub fn potential(&self, a: Element, b: Element, pair: FilteredPair) -> f32 {
        let r2 = self.r2_to_f32(pair.r2);
        let (r12, r6) = self.pot_table.eval(r2);
        let (c12, c6) = self.pot_coeff[a.index()][b.index()];
        let mut v = c12 * r12 - c6 * r6;
        if let Some(c) = &self.coulomb {
            let qq = c.charge[a.index()] * c.charge[b.index()];
            if qq != 0.0 {
                v += qq * c.pot_table.eval_filtered(r2);
            }
        }
        v
    }

    /// Concatenate an RCID with an in-cell offset (§4.2): coordinate
    /// value `rcid + offset`, RCID ∈ {1,2,3}.
    #[inline]
    pub fn concat(rcid: (u8, u8, u8), offset: FixVec3) -> FixVec3 {
        debug_assert!(offset.x.is_cell_offset() && offset.y.is_cell_offset() && offset.z.is_cell_offset());
        let f = |r: u8, o: Fix| -> Fix {
            debug_assert!((1..=3).contains(&r), "RCID component {r} out of range");
            Fix::from_bits((r as i32) << fasda_arith::fixed::FRAC_BITS) + o
        };
        FixVec3::new(
            f(rcid.0, offset.x),
            f(rcid.1, offset.y),
            f(rcid.2, offset.z),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fasda_md::units::UnitSystem;

    fn dp() -> ForceDatapath {
        ForceDatapath::new(&PairTable::new(UnitSystem::PAPER), TableConfig::PAPER)
    }

    fn concat_home(off: [f64; 3]) -> FixVec3 {
        ForceDatapath::concat(
            (2, 2, 2),
            FixVec3::from_f64(off[0], off[1], off[2]),
        )
    }

    #[test]
    fn filter_passes_within_cutoff() {
        let d = dp();
        let a = concat_home([0.5, 0.5, 0.5]);
        let b = concat_home([0.9, 0.5, 0.5]);
        let p = d.filter(a, b).expect("r=0.4 passes");
        assert!((p.r2.to_f64() - 0.16).abs() < 1e-6);
        assert!((p.delta.x.to_f64() + 0.4).abs() < 1e-6);
    }

    #[test]
    fn filter_rejects_at_and_beyond_cutoff() {
        let d = dp();
        let a = concat_home([0.0, 0.0, 0.0]);
        // neighbour cell at +x: rcid (3,2,2), offset 0 → distance exactly 1
        let b = ForceDatapath::concat((3, 2, 2), FixVec3::ZERO);
        assert!(d.filter(a, b).is_none(), "r = Rc must be rejected");
        let c = ForceDatapath::concat((3, 2, 2), FixVec3::from_f64(0.5, 0.0, 0.0));
        assert!(d.filter(a, c).is_none(), "r = 1.5 rejected");
    }

    #[test]
    fn filter_rejects_excluded_region() {
        let d = dp();
        let a = concat_home([0.5, 0.5, 0.5]);
        let b = concat_home([0.5 + 1e-4, 0.5, 0.5]);
        assert!(d.filter(a, b).is_none(), "r=1e-4 is in the excluded region");
        // self-pair distance 0 is also excluded
        assert!(d.filter(a, a).is_none());
    }

    #[test]
    fn force_matches_exact_lj_within_table_error() {
        let d = dp();
        let pairs = PairTable::new(UnitSystem::PAPER);
        for r in [0.3f64, 0.35, 0.45, 0.6, 0.8, 0.95] {
            let a = concat_home([0.0, 0.2, 0.2]);
            let off_b = [r, 0.2, 0.2];
            let b = concat_home(off_b);
            let p = d.filter(a, b).unwrap();
            let f = d.force(Element::Na, Element::Na, p);
            // exact: force on home = s·(r_home − r_nbr); home at x=0, nbr at x=r
            let s = pairs.force_scale(Element::Na, Element::Na, r * r);
            let want = s * (0.0 - r);
            let got = f[0] as f64;
            let tol = want.abs().max(1e-6) * 5e-3;
            assert!(
                (got - want).abs() < tol,
                "r={r}: got {got}, want {want}"
            );
            assert!(f[1].abs() < 1e-9 && f[2].abs() < 1e-9);
        }
    }

    #[test]
    fn force_antisymmetric_under_swap() {
        let d = dp();
        let a = concat_home([0.1, 0.6, 0.3]);
        let b = concat_home([0.5, 0.4, 0.8]);
        let pab = d.filter(a, b).unwrap();
        let pba = d.filter(b, a).unwrap();
        let fab = d.force(Element::Na, Element::Na, pab);
        let fba = d.force(Element::Na, Element::Na, pba);
        for k in 0..3 {
            assert_eq!(fab[k], -fba[k], "component {k}");
        }
    }

    #[test]
    fn potential_matches_exact_within_table_error() {
        let d = dp();
        let pairs = PairTable::new(UnitSystem::PAPER);
        let a = concat_home([0.0, 0.0, 0.0]);
        let b = concat_home([0.4, 0.1, 0.0]);
        let p = d.filter(a, b).unwrap();
        let got = d.potential(Element::Na, Element::Na, p) as f64;
        let r2 = p.r2.to_f64();
        let want = pairs.potential(Element::Na, Element::Na, r2);
        assert!(
            (got - want).abs() < want.abs().max(1e-6) * 5e-3,
            "{got} vs {want}"
        );
    }

    #[test]
    fn concat_rejects_bad_rcid_in_debug() {
        // Valid construction with all three RCID extremes.
        let v = ForceDatapath::concat((1, 2, 3), FixVec3::from_f64(0.25, 0.5, 0.75));
        assert_eq!(v.to_f64(), [1.25, 2.5, 3.75]);
    }

    #[test]
    fn electrostatic_path_adds_coulomb_force() {
        use fasda_md::ewald::EwaldParams;
        use fasda_md::units::UnitSystem;
        let params = EwaldParams::standard(UnitSystem::PAPER);
        let d = ForceDatapath::new(&PairTable::new(UnitSystem::PAPER), TableConfig::PAPER)
            .with_electrostatics(params);
        assert!(d.has_electrostatics());
        let a = concat_home([0.0, 0.0, 0.0]);
        let b = concat_home([0.4, 0.0, 0.0]);
        let p = d.filter(a, b).unwrap();
        // like charges add repulsion relative to neutral LJ
        let f_neutral = d.force(Element::Na, Element::Na, p)[0];
        let f_like = d.force(Element::NaPlus, Element::NaPlus, p)[0];
        let f_unlike = d.force(Element::NaPlus, Element::ClMinus, p)[0];
        // home at x=0, neighbour at x=0.4 → repulsion pushes home in -x
        assert!(f_like < f_neutral, "like charges more repulsive");
        assert!(f_unlike > f_neutral - 1.0 && f_unlike > f_like, "opposite charges attract");
        // magnitude matches the exact Ewald term within table error
        let exact = params.force_scale_unit(p.r2.to_f64()) * (0.0 - 0.4);
        let got = f_like as f64 - f_neutral as f64;
        assert!(
            ((got - exact) / exact).abs() < 5e-3,
            "coulomb term {got} vs exact {exact}"
        );
    }

    #[test]
    fn cross_element_uses_mixed_coefficients() {
        let d = dp();
        let a = concat_home([0.0, 0.0, 0.0]);
        let b = concat_home([0.45, 0.0, 0.0]);
        let p = d.filter(a, b).unwrap();
        let f_na_na = d.force(Element::Na, Element::Na, p)[0];
        let f_na_ar = d.force(Element::Na, Element::Ar, p)[0];
        assert_ne!(f_na_na, f_na_ar, "element lookup must differentiate pairs");
    }
}
