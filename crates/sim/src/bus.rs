//! Timestamped message delivery between independently-stepped nodes.
//!
//! Multi-FPGA FASDA couples chips through a switch whose latency is many
//! cycles. That physical latency is simulation headroom: a node can safely
//! advance `min_link_latency` cycles without seeing messages its peers
//! emit in the same window (conservative lookahead). [`MessageQueue`]
//! holds in-flight messages ordered by delivery cycle so each node drains
//! exactly the messages due in the window it is stepping.

use crate::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A message annotated with its delivery cycle.
#[derive(Clone, Debug)]
pub struct TimedMsg<M> {
    /// Cycle at which the message becomes visible to the receiver.
    pub deliver_at: Cycle,
    /// Monotonic sequence number breaking ties so same-cycle messages
    /// keep their send order (FIFO links).
    pub seq: u64,
    /// Payload.
    pub msg: M,
}

impl<M> PartialEq for TimedMsg<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}

impl<M> Eq for TimedMsg<M> {}

impl<M> Ord for TimedMsg<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

impl<M> PartialOrd for TimedMsg<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An inbox of in-flight messages for one node.
#[derive(Debug)]
pub struct MessageQueue<M> {
    heap: BinaryHeap<Reverse<TimedMsg<M>>>,
    next_seq: u64,
}

impl<M> Default for MessageQueue<M> {
    fn default() -> Self {
        MessageQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<M> MessageQueue<M> {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule a message for delivery.
    pub fn send(&mut self, deliver_at: Cycle, msg: M) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(TimedMsg {
            deliver_at,
            seq,
            msg,
        }));
    }

    /// Pop the next message if it is due at or before `cycle`.
    pub fn pop_due(&mut self, cycle: Cycle) -> Option<M> {
        match self.heap.peek() {
            Some(Reverse(m)) if m.deliver_at <= cycle => {
                self.heap.pop().map(|Reverse(m)| m.msg)
            }
            _ => None,
        }
    }

    /// Delivery cycle of the earliest in-flight message.
    pub fn next_due(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(m)| m.deliver_at)
    }

    /// In-flight message count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Checkpointing. A binary heap iterates in arbitrary order, so the
/// in-flight messages are written sorted by `(deliver_at, seq)` — the
/// byte stream is a pure function of logical queue contents.
impl<M: fasda_ckpt::Persist> fasda_ckpt::Persist for MessageQueue<M> {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u64(self.next_seq);
        let mut msgs: Vec<&TimedMsg<M>> = self.heap.iter().map(|Reverse(m)| m).collect();
        msgs.sort_by_key(|m| (m.deliver_at, m.seq));
        w.put_usize(msgs.len());
        for m in msgs {
            w.put_u64(m.deliver_at);
            w.put_u64(m.seq);
            m.msg.save(w);
        }
    }

    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        let next_seq = r.get_u64()?;
        let n = r.get_len()?;
        let mut heap = BinaryHeap::with_capacity(n);
        for _ in 0..n {
            let deliver_at = r.get_u64()?;
            let seq = r.get_u64()?;
            if seq >= next_seq {
                return Err(r.malformed(format!(
                    "message seq {seq} not below next_seq {next_seq}"
                )));
            }
            let msg = M::load(r)?;
            heap.push(Reverse(TimedMsg {
                deliver_at,
                seq,
                msg,
            }));
        }
        Ok(MessageQueue { heap, next_seq })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_respects_timestamps() {
        let mut q = MessageQueue::new();
        q.send(10, "late");
        q.send(5, "early");
        assert_eq!(q.pop_due(4), None);
        assert_eq!(q.pop_due(5), Some("early"));
        assert_eq!(q.pop_due(9), None);
        assert_eq!(q.pop_due(10), Some("late"));
        assert!(q.is_empty());
    }

    #[test]
    fn same_cycle_preserves_send_order() {
        let mut q = MessageQueue::new();
        for i in 0..10 {
            q.send(7, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop_due(7), Some(i));
        }
    }

    #[test]
    fn next_due_reports_earliest() {
        let mut q = MessageQueue::new();
        assert_eq!(q.next_due(), None);
        q.send(42, ());
        q.send(17, ());
        assert_eq!(q.next_due(), Some(17));
        assert_eq!(q.len(), 2);
    }
}
