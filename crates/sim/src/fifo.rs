//! Bounded FIFOs with hardware semantics.

use fasda_ckpt::Persist;
use std::collections::VecDeque;

/// A bounded FIFO modelling an on-chip buffer between pipeline stages.
///
/// `push` fails (backpressure) when full — the upstream stage must stall,
/// exactly like a full BRAM FIFO deasserting `ready`. The high-water mark
/// is tracked so sizing experiments can report the depth actually used.
#[derive(Clone, Debug)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    high_water: usize,
}

impl<T> Fifo<T> {
    /// Create a FIFO of the given capacity (entries).
    ///
    /// # Panics
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            high_water: 0,
        }
    }

    /// Attempt to enqueue; returns the item back on backpressure.
    #[inline]
    pub fn push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() == self.capacity {
            return Err(item);
        }
        self.items.push_back(item);
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Dequeue the oldest item.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Oldest item without removing it.
    #[inline]
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when no more pushes are accepted.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Free slots remaining.
    #[inline]
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Configured capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Maximum occupancy ever observed.
    #[inline]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Drop all contents (end-of-timestep reset paths).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterate items front (oldest) to back.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

/// Checkpointing: the capacity is configuration (kept from the live
/// structure); occupancy and the high-water mark are state.
impl<T: fasda_ckpt::Persist> fasda_ckpt::Snapshot for Fifo<T> {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        self.items.save(w);
        w.put_usize(self.high_water);
    }

    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        let items = std::collections::VecDeque::<T>::load(r)?;
        if items.len() > self.capacity {
            return Err(r.malformed(format!(
                "FIFO occupancy {} exceeds capacity {}",
                items.len(),
                self.capacity
            )));
        }
        self.items = items;
        self.high_water = r.get_usize()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut f = Fifo::new(3);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.push(3).unwrap();
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn backpressure_returns_item() {
        let mut f = Fifo::new(1);
        f.push("a").unwrap();
        assert!(f.is_full());
        assert_eq!(f.push("b"), Err("b"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.pop();
        f.push(3).unwrap();
        f.push(4).unwrap();
        assert_eq!(f.high_water(), 3);
        assert_eq!(f.free(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new(0);
    }

    #[test]
    fn peek_and_clear() {
        let mut f = Fifo::new(2);
        f.push(7).unwrap();
        assert_eq!(f.peek(), Some(&7));
        assert_eq!(f.len(), 1);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.high_water(), 1);
    }
}
