//! # fasda-sim
//!
//! Cycle-level hardware-simulation substrate.
//!
//! The FASDA evaluation reports everything in **clock cycles at 200 MHz**
//! (`operation_cycle_cnt` and per-component cycle counters in the artifact
//! appendix), so the accelerator model in `fasda-core` is a synchronous
//! cycle simulation. This crate provides its building blocks:
//!
//! * [`fifo::Fifo`] — bounded queues with hardware push/pop semantics and
//!   occupancy high-water tracking (the BRAM FIFOs between stages);
//! * [`pipeline::Pipeline`] — fixed-latency, initiation-interval-1
//!   pipelines (the floating-point force pipeline, the motion-update
//!   datapath);
//! * [`stats::Activity`] — the paper's two utilization metrics (§5.3):
//!   *hardware utilization* (work done vs capacity) and *time utilization*
//!   (fraction of cycles active);
//! * [`bus::MessageQueue`] — timestamped message delivery between
//!   independently-stepped nodes, enabling conservative-lookahead parallel
//!   simulation of multi-FPGA systems in `fasda-cluster`.

pub mod bus;
pub mod fifo;
pub mod pipeline;
pub mod rng;
pub mod stats;

pub use bus::{MessageQueue, TimedMsg};
pub use fifo::Fifo;
pub use pipeline::Pipeline;
pub use rng::XorShift64Star;
pub use stats::{Activity, StatSet};

/// Clock cycle count. All component models advance in units of one cycle.
pub type Cycle = u64;
