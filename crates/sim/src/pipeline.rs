//! Fixed-latency, initiation-interval-1 pipeline models.

use crate::Cycle;
use fasda_ckpt::Persist;
use std::collections::VecDeque;

/// A hardware pipeline with fixed latency and one issue slot per cycle.
///
/// Models the floating-point force pipeline (§3.4) and the motion-update
/// datapath: an item issued on cycle `c` emerges on cycle `c + latency`,
/// and at most one item can be issued per cycle. Results must be drained
/// in order; an undrained result does **not** stall the pipe (the
/// downstream accumulators in FASDA always accept one result per cycle),
/// but the drain interface exposes readiness so callers can model stalls
/// themselves if needed.
#[derive(Clone, Debug)]
pub struct Pipeline<T> {
    latency: Cycle,
    in_flight: VecDeque<(Cycle, T)>,
    last_issue: Option<Cycle>,
    issued_total: u64,
}

impl<T> Pipeline<T> {
    /// Create a pipeline with the given latency in cycles (≥ 1).
    pub fn new(latency: Cycle) -> Self {
        assert!(latency >= 1, "pipeline latency must be at least 1 cycle");
        Pipeline {
            latency,
            in_flight: VecDeque::new(),
            last_issue: None,
            issued_total: 0,
        }
    }

    /// Pipeline latency in cycles.
    #[inline]
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Issue an item at `cycle`. Returns `false` (and drops nothing) if an
    /// item was already issued this cycle — initiation interval 1.
    #[inline]
    pub fn issue(&mut self, cycle: Cycle, item: T) -> Result<(), T> {
        if self.last_issue == Some(cycle) {
            return Err(item);
        }
        debug_assert!(
            self.last_issue.is_none_or(|l| l < cycle),
            "issue cycles must be monotonic"
        );
        self.last_issue = Some(cycle);
        self.issued_total += 1;
        self.in_flight.push_back((cycle + self.latency, item));
        Ok(())
    }

    /// True if an item can be issued at `cycle`.
    #[inline]
    pub fn can_issue(&self, cycle: Cycle) -> bool {
        self.last_issue != Some(cycle)
    }

    /// Pop the next result if it is ready at `cycle`.
    #[inline]
    pub fn pop_ready(&mut self, cycle: Cycle) -> Option<T> {
        match self.in_flight.front() {
            Some((ready, _)) if *ready <= cycle => self.in_flight.pop_front().map(|(_, t)| t),
            _ => None,
        }
    }

    /// Items currently in flight.
    #[inline]
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// True when nothing is in flight — drain detection for phase
    /// termination.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Total items ever issued (hardware-utilization numerator).
    #[inline]
    pub fn issued_total(&self) -> u64 {
        self.issued_total
    }
}

/// Checkpointing: the latency is configuration; in-flight items, the
/// last-issue cycle and the issue counter are state.
impl<T: fasda_ckpt::Persist> fasda_ckpt::Snapshot for Pipeline<T> {
    fn snapshot(&self, w: &mut fasda_ckpt::Writer) {
        self.in_flight.save(w);
        self.last_issue.save(w);
        w.put_u64(self.issued_total);
    }

    fn restore(&mut self, r: &mut fasda_ckpt::Reader<'_>) -> Result<(), fasda_ckpt::CkptError> {
        self.in_flight = fasda_ckpt::Persist::load(r)?;
        self.last_issue = fasda_ckpt::Persist::load(r)?;
        self.issued_total = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_respected() {
        let mut p = Pipeline::new(5);
        p.issue(10, "x").unwrap();
        for c in 10..15 {
            assert!(p.pop_ready(c).is_none(), "cycle {c} too early");
        }
        assert_eq!(p.pop_ready(15), Some("x"));
        assert!(p.is_empty());
    }

    #[test]
    fn initiation_interval_one() {
        let mut p = Pipeline::new(3);
        p.issue(0, 1).unwrap();
        assert!(!p.can_issue(0));
        assert_eq!(p.issue(0, 2), Err(2));
        assert!(p.can_issue(1));
        p.issue(1, 2).unwrap();
        assert_eq!(p.in_flight(), 2);
        // results in order, one per cycle
        assert_eq!(p.pop_ready(3), Some(1));
        assert_eq!(p.pop_ready(3), None);
        assert_eq!(p.pop_ready(4), Some(2));
    }

    #[test]
    fn throughput_one_per_cycle_sustained() {
        let mut p = Pipeline::new(40);
        let mut out = 0;
        for c in 0..200u64 {
            if p.can_issue(c) {
                p.issue(c, c).unwrap();
            }
            if let Some(v) = p.pop_ready(c) {
                assert_eq!(v + 40, c);
                out += 1;
            }
        }
        assert_eq!(out, 160);
        assert_eq!(p.issued_total(), 200);
    }

    #[test]
    #[should_panic(expected = "latency must be at least 1")]
    fn zero_latency_rejected() {
        let _ = Pipeline::<u8>::new(0);
    }
}
