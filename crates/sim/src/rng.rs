//! Shared deterministic PRNG primitives.
//!
//! Every source of pseudo-randomness in the simulator — link-fault
//! schedules, injected switch loss, fuzz inputs — goes through this one
//! audited implementation so that a seed fully determines behaviour on
//! every engine, and so checkpoint/restore can freeze and resume a
//! stream mid-sequence by persisting a single `u64` of state.
//!
//! Two classic mixers:
//!
//! * [`splitmix64`] — a stateless finalizer used to derive well-mixed,
//!   independent per-entity seeds from a base seed plus an identity
//!   (e.g. one stream per *(channel, src, dst)* link);
//! * xorshift64\* ([`xorshift64star_step`] / [`xorshift64star_unit`]) —
//!   the per-stream generator. State must be non-zero; seeding forces
//!   the low bit on.

/// The golden-ratio increment used by splitmix64-style sequence seeding.
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// splitmix64 finalizer: bijective avalanche mix of `z`.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Advance a (non-zero) xorshift64\* state in place and return the mixed
/// output word.
#[inline]
pub fn xorshift64star_step(state: &mut u64) -> u64 {
    debug_assert_ne!(*state, 0, "xorshift64* state must be non-zero");
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Advance the state and return a uniform draw in `[0, 1)` with 53 bits
/// of precision.
#[inline]
pub fn xorshift64star_unit(state: &mut u64) -> f64 {
    (xorshift64star_step(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// A self-contained seeded xorshift64\* stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Seeded stream; the low bit is forced on so a zero seed is valid.
    pub fn new(seed: u64) -> Self {
        XorShift64Star { state: seed | 1 }
    }

    /// Raw state (persist this to freeze the stream).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Rebuild a stream from persisted state.
    ///
    /// # Panics
    /// If `state` is zero (not a reachable xorshift64\* state).
    pub fn from_state(state: u64) -> Self {
        assert_ne!(state, 0, "xorshift64* state must be non-zero");
        XorShift64Star { state }
    }

    /// Next mixed 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        xorshift64star_step(&mut self.state)
    }

    /// Next uniform draw in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        xorshift64star_unit(&mut self.state)
    }

    /// Next draw in `0..bound` (rejection-free modulo; fine for fuzzing,
    /// not for cryptography).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_draws_are_in_range_and_deterministic() {
        let mut a = XorShift64Star::new(42);
        let mut b = XorShift64Star::new(42);
        for _ in 0..1000 {
            let u = a.next_unit();
            assert!((0.0..1.0).contains(&u));
            assert_eq!(u, b.next_unit());
        }
    }

    #[test]
    fn state_roundtrip_resumes_mid_sequence() {
        let mut a = XorShift64Star::new(7);
        for _ in 0..17 {
            a.next_u64();
        }
        let frozen = a.state();
        let tail: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let mut b = XorShift64Star::from_state(frozen);
        let resumed: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(tail, resumed);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the canonical splitmix64 sequence: state 0
        // advanced by one GOLDEN_GAMMA then finalized.
        assert_eq!(splitmix64(GOLDEN_GAMMA), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn streams_with_different_seeds_diverge() {
        let mut a = XorShift64Star::new(splitmix64(GOLDEN_GAMMA));
        let mut b = XorShift64Star::new(splitmix64(GOLDEN_GAMMA.wrapping_mul(2)));
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
