//! Utilization accounting (paper §5.3, Fig. 17).
//!
//! The paper distinguishes two metrics for every key component:
//!
//! > "Hardware utilization refers to the average amount of work performed
//! > by a component in comparison to its capacity, while time utilization
//! > represents the average proportion of time that a component is active,
//! > during which the pipeline may not be full, but is functioning."
//!
//! [`Activity`] tracks both for one component; [`StatSet`] aggregates the
//! named components of a chip so Fig. 17 can be regenerated.

use std::collections::BTreeMap;

/// Work/activity counters for one hardware component.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Activity {
    /// Units of work performed (e.g. pairs filtered, forces produced,
    /// flits moved).
    pub work: u64,
    /// Cycles on which the component did *any* work or held in-flight
    /// state.
    pub busy_cycles: u64,
    /// Work units the component could perform per cycle (e.g. 6 for a
    /// 6-filter bank, 1 for a force pipeline).
    pub capacity_per_cycle: u64,
}

impl Activity {
    /// New counter with a per-cycle capacity.
    pub fn with_capacity(capacity_per_cycle: u64) -> Self {
        Activity {
            work: 0,
            busy_cycles: 0,
            capacity_per_cycle,
        }
    }

    /// Record one cycle: `work_done` units performed, `active` whether the
    /// component counts as busy this cycle (it may be active with zero
    /// completed work, e.g. a pipeline filling up).
    ///
    /// Branchless: this sits on the innermost per-cycle path of every
    /// modelled component, where a data-dependent branch on `active` is
    /// mispredicted often enough to show up in profiles.
    #[inline]
    pub fn record(&mut self, work_done: u64, active: bool) {
        self.work += work_done;
        self.busy_cycles += u64::from(active) | u64::from(work_done > 0);
    }

    /// Hardware utilization over a window of `total_cycles`:
    /// `work / (capacity · total_cycles)`.
    ///
    /// The denominator is formed in f64: a u64 product overflows once
    /// `capacity · window` crosses 2^64 (merged cluster-wide counters
    /// over billion-cycle runs get there).
    pub fn hardware_util(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 || self.capacity_per_cycle == 0 {
            return 0.0;
        }
        self.work as f64 / (self.capacity_per_cycle as f64 * total_cycles as f64)
    }

    /// Time utilization over a window: `busy_cycles / total_cycles`.
    pub fn time_util(&self, total_cycles: u64) -> f64 {
        if total_cycles == 0 {
            return 0.0;
        }
        self.busy_cycles as f64 / total_cycles as f64
    }

    /// Merge counters from a replicated component (capacities add: two
    /// 6-filter banks form a 12-wide resource).
    pub fn merge(&mut self, other: &Activity) {
        self.work += other.work;
        self.busy_cycles += other.busy_cycles;
        self.capacity_per_cycle += other.capacity_per_cycle;
    }

    /// Merge counters from the *same* component observed over consecutive
    /// windows (capacity unchanged, work/busy add).
    pub fn accumulate(&mut self, other: &Activity) {
        debug_assert_eq!(self.capacity_per_cycle, other.capacity_per_cycle);
        self.work += other.work;
        self.busy_cycles += other.busy_cycles;
    }
}

/// Named activity counters for a whole chip or cluster.
///
/// When components are replicated (27 PEs on a chip), merging their
/// activities produces the chip-average utilization the paper plots.
/// For merged time utilization, `busy_cycles` of replicas add and the
/// caller divides by `replicas × window` — [`StatSet::time_util`] handles
/// that by tracking replica counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatSet {
    entries: BTreeMap<String, (Activity, u64)>,
}

impl StatSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one replica's counters into the named component.
    pub fn add(&mut self, name: &str, activity: Activity) {
        let e = self
            .entries
            .entry(name.to_string())
            .or_insert((Activity::default(), 0));
        e.0.work += activity.work;
        e.0.busy_cycles += activity.busy_cycles;
        e.0.capacity_per_cycle += activity.capacity_per_cycle;
        e.1 += 1;
    }

    /// Component names present.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Replica count folded into a name.
    pub fn replicas(&self, name: &str) -> u64 {
        self.entries.get(name).map_or(0, |e| e.1)
    }

    /// Average hardware utilization of a component class over a window.
    pub fn hardware_util(&self, name: &str, total_cycles: u64) -> f64 {
        self.entries
            .get(name)
            .map_or(0.0, |(a, _)| a.hardware_util(total_cycles))
    }

    /// Average time utilization of a component class over a window
    /// (replica-averaged).
    pub fn time_util(&self, name: &str, total_cycles: u64) -> f64 {
        match self.entries.get(name) {
            Some((a, n)) if *n > 0 && total_cycles > 0 => {
                // f64 denominator for the same overflow reason as
                // [`Activity::hardware_util`].
                a.busy_cycles as f64 / (*n as f64 * total_cycles as f64)
            }
            _ => 0.0,
        }
    }

    /// Total work units of a component class.
    pub fn work(&self, name: &str) -> u64 {
        self.entries.get(name).map_or(0, |(a, _)| a.work)
    }

    /// Merge every component of another set into this one (replica
    /// counts add, capacities add, work/busy add) — used to aggregate
    /// per-chip sets into a cluster-wide view.
    pub fn merge_from(&mut self, other: &StatSet) {
        for (name, (act, n)) in &other.entries {
            let e = self
                .entries
                .entry(name.clone())
                .or_insert((Activity::default(), 0));
            e.0.work += act.work;
            e.0.busy_cycles += act.busy_cycles;
            e.0.capacity_per_cycle += act.capacity_per_cycle;
            e.1 += n;
        }
    }

    /// Accumulate the *same* components observed over a later window
    /// (work/busy add; replica counts and capacities describe the
    /// hardware and must not double). Used by checkpointed runs to fold
    /// per-segment stats into run totals.
    pub fn accumulate_from(&mut self, other: &StatSet) {
        for (name, (act, n)) in &other.entries {
            match self.entries.get_mut(name) {
                Some(e) => {
                    debug_assert_eq!(e.1, *n, "replica count changed across windows");
                    debug_assert_eq!(e.0.capacity_per_cycle, act.capacity_per_cycle);
                    e.0.work += act.work;
                    e.0.busy_cycles += act.busy_cycles;
                }
                None => {
                    self.entries.insert(name.clone(), (*act, *n));
                }
            }
        }
    }
}

impl fasda_ckpt::Persist for Activity {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        w.put_u64(self.work);
        w.put_u64(self.busy_cycles);
        w.put_u64(self.capacity_per_cycle);
    }

    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(Activity {
            work: r.get_u64()?,
            busy_cycles: r.get_u64()?,
            capacity_per_cycle: r.get_u64()?,
        })
    }
}

impl fasda_ckpt::Persist for StatSet {
    fn save(&self, w: &mut fasda_ckpt::Writer) {
        self.entries.save(w);
    }

    fn load(r: &mut fasda_ckpt::Reader<'_>) -> Result<Self, fasda_ckpt::CkptError> {
        Ok(StatSet {
            entries: fasda_ckpt::Persist::load(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_vs_time_utilization() {
        let mut a = Activity::with_capacity(6);
        // 10 cycles: 5 busy with 3 units each, 5 idle
        for i in 0..10 {
            if i % 2 == 0 {
                a.record(3, true);
            } else {
                a.record(0, false);
            }
        }
        assert_eq!(a.work, 15);
        assert_eq!(a.busy_cycles, 5);
        assert!((a.hardware_util(10) - 0.25).abs() < 1e-12); // 15/(6*10)
        assert!((a.time_util(10) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn active_with_zero_work_counts_busy() {
        let mut a = Activity::with_capacity(1);
        a.record(0, true);
        assert_eq!(a.busy_cycles, 1);
        assert_eq!(a.work, 0);
    }

    #[test]
    fn record_matches_boolean_reference() {
        // The branchless busy increment must equal `active || work > 0`
        // for every input combination.
        for work in [0u64, 1, 7] {
            for active in [false, true] {
                let mut a = Activity::with_capacity(1);
                a.record(work, active);
                assert_eq!(a.work, work);
                assert_eq!(a.busy_cycles, u64::from(active || work > 0));
            }
        }
    }

    #[test]
    fn merge_adds_capacity() {
        let mut a = Activity::with_capacity(6);
        a.record(6, true);
        let mut b = Activity::with_capacity(6);
        b.record(0, false);
        a.merge(&b);
        assert_eq!(a.capacity_per_cycle, 12);
        assert!((a.hardware_util(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn statset_replica_averaged_time_util() {
        let mut s = StatSet::new();
        let mut busy = Activity::with_capacity(1);
        busy.record(1, true);
        let idle = Activity::with_capacity(1);
        s.add("PE", busy);
        s.add("PE", idle);
        assert_eq!(s.replicas("PE"), 2);
        // one of two replicas busy for the 1-cycle window → 50%
        assert!((s.time_util("PE", 1) - 0.5).abs() < 1e-12);
        assert!((s.hardware_util("PE", 1) - 0.5).abs() < 1e-12);
        assert_eq!(s.work("PE"), 1);
    }

    #[test]
    fn empty_windows_are_zero() {
        let a = Activity::with_capacity(4);
        assert_eq!(a.hardware_util(0), 0.0);
        assert_eq!(a.time_util(0), 0.0);
        let s = StatSet::new();
        assert_eq!(s.time_util("nope", 100), 0.0);
    }

    #[test]
    fn zero_capacity_hardware_util_is_zero() {
        // A component that advertises no capacity (e.g. a disabled bank)
        // must report 0 utilization rather than dividing by zero.
        let mut a = Activity::with_capacity(0);
        a.record(5, true);
        assert_eq!(a.hardware_util(100), 0.0);
        assert!((a.time_util(100) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn huge_windows_do_not_overflow_the_denominator() {
        // capacity · window would overflow u64; the f64 denominator
        // keeps the ratio finite and correct to f64 precision.
        let mut a = Activity::with_capacity(1 << 32);
        a.work = 1 << 62;
        let window = 1u64 << 40; // capacity * window = 2^72 > u64::MAX
        let util = a.hardware_util(window);
        let expect = (1u64 << 62) as f64 / ((1u64 << 32) as f64 * (1u64 << 40) as f64);
        assert!(util.is_finite());
        assert!((util - expect).abs() < 1e-12);

        // Same for replica-averaged time utilization.
        let mut s = StatSet::new();
        let mut busy = Activity::with_capacity(1);
        busy.busy_cycles = 1 << 40;
        for _ in 0..(1 << 16) {
            s.add("PE", busy);
        }
        let t = s.time_util("PE", 1 << 50); // 2^16 · 2^50 = 2^66 > u64::MAX
        assert!(t.is_finite());
        assert!(t > 0.0);
    }

    #[test]
    fn merge_from_keeps_disjoint_components_separate() {
        let mut a = StatSet::new();
        let mut pe = Activity::with_capacity(1);
        pe.record(1, true);
        a.add("PE", pe);

        let mut b = StatSet::new();
        let mut filt = Activity::with_capacity(6);
        filt.record(6, true);
        b.add("filter", filt);
        b.add("filter", Activity::with_capacity(6));

        a.merge_from(&b);
        let names: Vec<&str> = a.names().collect();
        assert_eq!(names, ["PE", "filter"], "disjoint names both survive");
        assert_eq!(a.replicas("PE"), 1);
        assert_eq!(a.replicas("filter"), 2);
        assert_eq!(a.work("PE"), 1);
        assert_eq!(a.work("filter"), 6);
        // merging the same set again doubles the filter replicas only
        a.merge_from(&b);
        assert_eq!(a.replicas("filter"), 4);
        assert_eq!(a.replicas("PE"), 1);
    }
}
