//! # fasda-ckpt — deterministic checkpoint/restore for the FASDA simulator
//!
//! A zero-dependency container format plus the two traits every stateful
//! microarchitectural unit implements so a cluster run can be frozen at a
//! step boundary and resumed bit-identically:
//!
//! * [`Persist`] — value serialization (`save`/`load`) for plain data:
//!   flits, counters, queues, maps. Field order is fixed, integers are
//!   little-endian, floats travel as IEEE-754 bit patterns, and hash
//!   containers are written in sorted key order so the byte stream is a
//!   pure function of logical state.
//! * [`Snapshot`] — in-place serialization (`snapshot`/`restore`) for
//!   structures that mix configuration (rebuilt from `ClusterConfig` at
//!   restore time) with mutable state (restored from the container):
//!   FIFOs keep their capacity, pipelines their latency, rings their slot
//!   count; only the occupancy is persisted.
//!
//! The on-disk container mirrors the wire-format-v2 discipline of
//! `fasda-net::packet`: magic + format version up front, then length- and
//! CRC-framed named sections. [`Container::parse`] validates **every**
//! section CRC before any state is handed out, so a torn or bit-flipped
//! file yields a typed [`CkptError`] naming the bad section and never a
//! partial restore.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::path::{Path, PathBuf};

/// Container magic: "FCKP".
pub const MAGIC: [u8; 4] = *b"FCKP";

/// Current container format version.
pub const FORMAT_VERSION: u32 = 1;

/// File extension used for checkpoint files.
pub const EXTENSION: &str = "fckp";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed checkpoint failure. Every decode path returns one of these —
/// corruption is never a panic and never a silent partial restore.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CkptError {
    /// The file does not start with the `FCKP` magic.
    BadMagic,
    /// The container was written by an incompatible format version.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The byte stream ended before the structure did.
    Truncated {
        /// Section being decoded when the stream ran dry.
        section: String,
    },
    /// A section payload failed its CRC check.
    CrcMismatch {
        /// Name of the corrupt section.
        section: String,
        /// CRC stored in the frame.
        stored: u32,
        /// CRC computed over the payload.
        computed: u32,
    },
    /// A required section is absent from the container.
    MissingSection {
        /// Name of the missing section.
        section: String,
    },
    /// The bytes decoded, but the value is inconsistent with the
    /// structure being restored (wrong length, invalid tag, …).
    Malformed {
        /// Section being decoded.
        section: String,
        /// What was wrong.
        what: String,
    },
    /// The snapshot was taken under a different simulator configuration.
    ConfigMismatch {
        /// Config field that disagrees.
        field: String,
    },
    /// Filesystem error while reading or writing a checkpoint.
    Io(String),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::BadMagic => write!(f, "not a FASDA checkpoint (bad magic)"),
            CkptError::BadVersion { found, expected } => write!(
                f,
                "checkpoint format version {found} not supported (expected {expected})"
            ),
            CkptError::Truncated { section } => {
                write!(f, "checkpoint truncated in section `{section}`")
            }
            CkptError::CrcMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "CRC mismatch in section `{section}`: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CkptError::MissingSection { section } => {
                write!(f, "checkpoint is missing section `{section}`")
            }
            CkptError::Malformed { section, what } => {
                write!(f, "malformed section `{section}`: {what}")
            }
            CkptError::ConfigMismatch { field } => write!(
                f,
                "checkpoint was taken under a different configuration (field `{field}` disagrees)"
            ),
            CkptError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE, reflected 0xEDB88320) — same polynomial discipline as the
// wire-format checksum in fasda-net::packet, duplicated here so this crate
// stays at the bottom of the dependency graph.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 over `bytes` (IEEE polynomial, reflected).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Shared CRC frame: length prefix + checksum + payload
// ---------------------------------------------------------------------------

/// Length- and CRC-framed payload encoding shared by the checkpoint
/// container's section framing and the shard transport's socket frames:
/// `payload_len u64 | crc32 u32 | payload`, little-endian.
///
/// Every decode path enforces [`frame::MAX_FRAME_BYTES`] **before**
/// allocating, so a corrupt or hostile length prefix can never become an
/// allocation bomb, and validates the CRC before handing the payload out.
pub mod frame {
    use super::{crc32, CkptError, Reader};
    use std::io::{Read, Write};

    /// Hard cap on a single frame payload (1 GiB). Checkpoint sections
    /// and shard exchange frames are both far below this; anything above
    /// it is a corrupt or malicious length prefix.
    pub const MAX_FRAME_BYTES: u64 = 1 << 30;

    /// Bytes of framing overhead per frame (length + CRC).
    pub const HEADER_BYTES: usize = 12;

    fn check_len(payload_len: u64, section: &str) -> Result<usize, CkptError> {
        if payload_len > MAX_FRAME_BYTES {
            return Err(CkptError::Malformed {
                section: section.to_string(),
                what: format!(
                    "frame length {payload_len} exceeds the {MAX_FRAME_BYTES}-byte cap"
                ),
            });
        }
        usize::try_from(payload_len).map_err(|_| CkptError::Malformed {
            section: section.to_string(),
            what: format!("frame length {payload_len} overflows usize"),
        })
    }

    fn check_crc(payload: &[u8], stored: u32, section: &str) -> Result<(), CkptError> {
        let computed = crc32(payload);
        if computed != stored {
            return Err(CkptError::CrcMismatch {
                section: section.to_string(),
                stored,
                computed,
            });
        }
        Ok(())
    }

    /// Append one frame to a byte buffer.
    pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
    }

    /// Decode one frame through a [`Reader`], borrowing the payload.
    /// `section` names the frame in errors.
    pub fn read_frame<'a>(r: &mut Reader<'a>, section: &str) -> Result<&'a [u8], CkptError> {
        let payload_len = check_len(r.get_u64()?, section)?;
        let stored = r.get_u32()?;
        let payload = r.take(payload_len).map_err(|_| CkptError::Truncated {
            section: section.to_string(),
        })?;
        check_crc(payload, stored, section)?;
        Ok(payload)
    }

    /// Write one frame to a byte stream (socket, pipe, file).
    pub fn write_frame_to(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
        w.write_all(&(payload.len() as u64).to_le_bytes())?;
        w.write_all(&crc32(payload).to_le_bytes())?;
        w.write_all(payload)
    }

    /// Read one frame from a byte stream, validating length bound and
    /// CRC before returning the payload.
    pub fn read_frame_from(rd: &mut impl Read, section: &str) -> Result<Vec<u8>, CkptError> {
        let mut hdr = [0u8; HEADER_BYTES];
        rd.read_exact(&mut hdr)?;
        let payload_len = u64::from_le_bytes(hdr[..8].try_into().expect("8 bytes"));
        let stored = u32::from_le_bytes(hdr[8..].try_into().expect("4 bytes"));
        let payload_len = check_len(payload_len, section)?;
        let mut payload = vec![0u8; payload_len];
        rd.read_exact(&mut payload)?;
        check_crc(&payload, stored, section)?;
        Ok(payload)
    }
}

// ---------------------------------------------------------------------------
// Writer / Reader
// ---------------------------------------------------------------------------

/// Little-endian byte sink for one section payload.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append a raw byte slice (no length prefix).
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u128.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an i8.
    pub fn put_i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// Append a little-endian i16.
    pub fn put_i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i32.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian i64.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f32 as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append an f64 as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append a usize as u64 (platform-independent).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.put_bytes(s.as_bytes());
    }
}

/// Cursor over one section payload. Every read is bounds-checked and
/// failures name the section being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'a str,
}

impl<'a> Reader<'a> {
    /// Wrap `buf` as the payload of `section` (the name only feeds error
    /// messages).
    pub fn new(buf: &'a [u8], section: &'a str) -> Self {
        Self {
            buf,
            pos: 0,
            section,
        }
    }

    /// Section name this reader decodes.
    pub fn section(&self) -> &str {
        self.section
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when the payload is fully consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn truncated(&self) -> CkptError {
        CkptError::Truncated {
            section: self.section.to_string(),
        }
    }

    /// Build a [`CkptError::Malformed`] for this section.
    pub fn malformed(&self, what: impl Into<String>) -> CkptError {
        CkptError::Malformed {
            section: self.section.to_string(),
            what: what.into(),
        }
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(self.truncated());
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u16.
    pub fn get_u16(&mut self) -> Result<u16, CkptError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian u128.
    pub fn get_u128(&mut self) -> Result<u128, CkptError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    /// Read an i8.
    pub fn get_i8(&mut self) -> Result<i8, CkptError> {
        Ok(self.get_u8()? as i8)
    }

    /// Read a little-endian i16.
    pub fn get_i16(&mut self) -> Result<i16, CkptError> {
        Ok(i16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian i32.
    pub fn get_i32(&mut self) -> Result<i32, CkptError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian i64.
    pub fn get_i64(&mut self) -> Result<i64, CkptError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an f32 from its bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, CkptError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read an f64 from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a bool; any byte other than 0/1 is malformed.
    pub fn get_bool(&mut self) -> Result<bool, CkptError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(self.malformed(format!("invalid bool byte {b:#04x}"))),
        }
    }

    /// Read a usize stored as u64; values beyond the platform width are
    /// malformed.
    pub fn get_usize(&mut self) -> Result<usize, CkptError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| self.malformed(format!("usize overflow: {v}")))
    }

    /// Read a container length stored as u64. Guarded against allocation
    /// bombs: a length that cannot possibly fit in the remaining payload
    /// (at one byte per element) is reported as truncation.
    pub fn get_len(&mut self) -> Result<usize, CkptError> {
        let n = self.get_usize()?;
        if n > self.remaining() {
            return Err(self.truncated());
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CkptError> {
        let n = self.get_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.malformed("invalid UTF-8 string"))
    }
}

// ---------------------------------------------------------------------------
// Persist: value serialization
// ---------------------------------------------------------------------------

/// Value serialization: a type that can be written out and read back as a
/// standalone value. The encoding must be a pure function of logical
/// state (hash containers iterate in sorted key order).
pub trait Persist: Sized {
    /// Append this value to `w`.
    fn save(&self, w: &mut Writer);
    /// Decode one value from `r`.
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError>;
}

macro_rules! persist_prim {
    ($t:ty, $put:ident, $get:ident) => {
        impl Persist for $t {
            fn save(&self, w: &mut Writer) {
                w.$put(*self);
            }
            fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
                r.$get()
            }
        }
    };
}

persist_prim!(u8, put_u8, get_u8);
persist_prim!(u16, put_u16, get_u16);
persist_prim!(u32, put_u32, get_u32);
persist_prim!(u64, put_u64, get_u64);
persist_prim!(u128, put_u128, get_u128);
persist_prim!(i8, put_i8, get_i8);
persist_prim!(i16, put_i16, get_i16);
persist_prim!(i32, put_i32, get_i32);
persist_prim!(i64, put_i64, get_i64);
persist_prim!(f32, put_f32, get_f32);
persist_prim!(f64, put_f64, get_f64);
persist_prim!(bool, put_bool, get_bool);
persist_prim!(usize, put_usize, get_usize);

impl Persist for String {
    fn save(&self, w: &mut Writer) {
        w.put_str(self);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        r.get_str()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn save(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.save(w);
            }
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::load(r)?)),
            b => Err(r.malformed(format!("invalid Option tag {b:#04x}"))),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn save(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let n = r.get_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::load(r)?);
        }
        Ok(out)
    }
}

impl<T: Persist> Persist for VecDeque<T> {
    fn save(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let n = r.get_len()?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::load(r)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
        self.1.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok((A::load(r)?, B::load(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist, D: Persist> Persist for (A, B, C, D) {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
        self.1.save(w);
        self.2.save(w);
        self.3.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        Ok((A::load(r)?, B::load(r)?, C::load(r)?, D::load(r)?))
    }
}

impl<T: Persist, const N: usize> Persist for [T; N] {
    fn save(&self, w: &mut Writer) {
        for v in self {
            v.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::load(r)?);
        }
        match out.try_into() {
            Ok(a) => Ok(a),
            Err(_) => unreachable!("length checked above"),
        }
    }
}

impl<K: Persist + Ord, V: Persist> Persist for BTreeMap<K, V> {
    fn save(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for (k, v) in self {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let n = r.get_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            if out.insert(k, v).is_some() {
                return Err(r.malformed("duplicate map key"));
            }
        }
        Ok(out)
    }
}

impl<K: Persist + Ord> Persist for BTreeSet<K> {
    fn save(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for k in self {
            k.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let n = r.get_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            if !out.insert(K::load(r)?) {
                return Err(r.malformed("duplicate set key"));
            }
        }
        Ok(out)
    }
}

// Hash containers are written in sorted key order: iteration order of a
// HashMap is not a function of its logical contents, and a checkpoint
// byte stream must be.
impl<K: Persist + Ord + Hash + Eq, V: Persist> Persist for HashMap<K, V> {
    fn save(&self, w: &mut Writer) {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        w.put_usize(entries.len());
        for (k, v) in entries {
            k.save(w);
            v.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let n = r.get_len()?;
        let mut out = HashMap::with_capacity(n);
        for _ in 0..n {
            let k = K::load(r)?;
            let v = V::load(r)?;
            if out.insert(k, v).is_some() {
                return Err(r.malformed("duplicate map key"));
            }
        }
        Ok(out)
    }
}

impl<K: Persist + Ord + Hash + Eq> Persist for HashSet<K> {
    fn save(&self, w: &mut Writer) {
        let mut keys: Vec<&K> = self.iter().collect();
        keys.sort();
        w.put_usize(keys.len());
        for k in keys {
            k.save(w);
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, CkptError> {
        let n = r.get_len()?;
        let mut out = HashSet::with_capacity(n);
        for _ in 0..n {
            if !out.insert(K::load(r)?) {
                return Err(r.malformed("duplicate set key"));
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Snapshot: in-place serialization
// ---------------------------------------------------------------------------

/// In-place serialization for structures that were built from
/// configuration: `restore` overwrites the mutable state of `self` and
/// leaves config-derived shape (capacities, latencies, peer lists, slot
/// counts) untouched. Restoring into a structure whose shape disagrees
/// with the snapshot is a [`CkptError::Malformed`], never a partial write.
pub trait Snapshot {
    /// Append this unit's mutable state to `w`.
    fn snapshot(&self, w: &mut Writer);
    /// Overwrite this unit's mutable state from `r`.
    fn restore(&mut self, r: &mut Reader<'_>) -> Result<(), CkptError>;
}

/// Snapshot every element of a slice, length-prefixed.
pub fn snapshot_slice<T: Snapshot>(items: &[T], w: &mut Writer) {
    w.put_usize(items.len());
    for it in items {
        it.snapshot(w);
    }
}

/// Restore every element of a slice; the stored length must match.
pub fn restore_slice<T: Snapshot>(items: &mut [T], r: &mut Reader<'_>) -> Result<(), CkptError> {
    let n = r.get_usize()?;
    if n != items.len() {
        return Err(r.malformed(format!(
            "slice length mismatch: snapshot has {n}, structure has {}",
            items.len()
        )));
    }
    for it in items.iter_mut() {
        it.restore(r)?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Container
// ---------------------------------------------------------------------------

/// Builder for a checkpoint container: named, CRC-framed sections.
#[derive(Debug, Default)]
pub struct ContainerWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl ContainerWriter {
    /// Fresh empty container.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a named section with the given payload.
    pub fn push(&mut self, name: &str, payload: Writer) {
        assert!(name.len() <= u8::MAX as usize, "section name too long");
        self.sections.push((name.to_string(), payload.into_bytes()));
    }

    /// Serialize the container: magic, version, section count, then each
    /// section as `name_len u8 | name | payload_len u64 | crc32 u32 |
    /// payload`.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            out.push(name.len() as u8);
            out.extend_from_slice(name.as_bytes());
            frame::write_frame(&mut out, payload);
        }
        out
    }
}

/// A parsed checkpoint container. Parsing validates the magic, the format
/// version, and the CRC of **every** section before returning, so a
/// successfully parsed container is internally consistent end to end.
#[derive(Debug)]
pub struct Container<'a> {
    sections: Vec<(String, &'a [u8])>,
}

impl<'a> Container<'a> {
    /// Parse and fully validate `bytes`.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, CkptError> {
        let header = "header";
        let mut r = Reader::new(bytes, header);
        let magic = r.take(4).map_err(|_| CkptError::BadMagic)?;
        if magic != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let version = r.get_u32().map_err(|_| CkptError::BadMagic)?;
        if version != FORMAT_VERSION {
            return Err(CkptError::BadVersion {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let count = r.get_u32()? as usize;
        let mut sections: Vec<(String, &'a [u8])> = Vec::with_capacity(count);
        for _ in 0..count {
            let name_len = r.get_u8()? as usize;
            let name_bytes = r.take(name_len)?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| r.malformed("section name is not UTF-8"))?
                .to_string();
            let payload = frame::read_frame(&mut r, &name)?;
            if sections.iter().any(|(n, _)| *n == name) {
                return Err(CkptError::Malformed {
                    section: name.clone(),
                    what: "duplicate section name".to_string(),
                });
            }
            sections.push((name, payload));
        }
        if !r.is_exhausted() {
            return Err(CkptError::Malformed {
                section: header.to_string(),
                what: format!("{} trailing bytes after last section", r.remaining()),
            });
        }
        Ok(Self { sections })
    }

    /// Names of all sections, in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Raw payload of a section, if present.
    pub fn payload(&self, name: &str) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| *p)
    }

    /// A [`Reader`] over a required section's payload.
    pub fn reader(&self, name: &'a str) -> Result<Reader<'a>, CkptError> {
        match self.payload(name) {
            Some(p) => Ok(Reader::new(p, name)),
            None => Err(CkptError::MissingSection {
                section: name.to_string(),
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// File helpers: atomic write, naming, retention
// ---------------------------------------------------------------------------

/// Canonical checkpoint filename for a step boundary: zero-padded so
/// lexicographic order equals numeric order.
pub fn checkpoint_path(dir: &Path, step: u64) -> PathBuf {
    dir.join(format!("ckpt-{step:010}.{EXTENSION}"))
}

/// Parse the step number out of a checkpoint filename.
pub fn checkpoint_step(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name
        .strip_prefix("ckpt-")?
        .strip_suffix(&format!(".{EXTENSION}"))?;
    stem.parse().ok()
}

/// Write `bytes` atomically: to a temporary sibling first, then rename
/// over the final path, so a crash mid-write never leaves a torn
/// checkpoint under the canonical name.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension(format!("{EXTENSION}.tmp"));
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// All checkpoints in `dir`, sorted ascending by step. A directory that
/// does not exist yet holds no checkpoints — that's an empty list, not
/// an error (a job resumed before its first checkpoint write starts
/// fresh).
pub fn list_checkpoints(dir: &Path) -> Result<Vec<(u64, PathBuf)>, CkptError> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if let Some(step) = checkpoint_step(&path) {
            out.push((step, path));
        }
    }
    out.sort();
    Ok(out)
}

/// The most recent checkpoint in `dir`, if any.
pub fn latest_checkpoint(dir: &Path) -> Result<Option<PathBuf>, CkptError> {
    Ok(list_checkpoints(dir)?.pop().map(|(_, p)| p))
}

pub mod journal {
    //! Crash-safe append-only record log, built on the same
    //! [`frame`](super::frame) encoding as the container sections and
    //! the shard transport: each record is `len u64 | crc32 u32 |
    //! payload`, appended and fsynced before the write is acknowledged.
    //!
    //! Recovery semantics (the part a queue journal lives or dies on):
    //! [`replay`] returns every record up to the first *incomplete*
    //! frame. A frame cut short by a crash mid-append — the header or
    //! payload simply ends early — is a **torn tail**: the record was
    //! never acknowledged, so it is discarded and reported, not an
    //! error. A frame that is fully present but fails its CRC is
    //! *corruption* of acknowledged data and is a hard
    //! [`CkptError::CrcMismatch`]; so is any garbage that continues
    //! after a short frame.

    use super::{frame, CkptError};
    use std::io::Write;
    use std::path::{Path, PathBuf};

    /// What [`replay`] found in a journal file.
    #[derive(Debug)]
    pub struct Replay {
        /// Every durable record, in append order.
        pub records: Vec<Vec<u8>>,
        /// Bytes of torn (unacknowledged, discarded) tail frame, 0 for
        /// a cleanly closed journal.
        pub torn_bytes: u64,
    }

    /// Read a journal back. A missing file is an empty journal.
    pub fn replay(path: &Path) -> Result<Replay, CkptError> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Ok(Replay { records: Vec::new(), torn_bytes: 0 })
            }
            Err(e) => return Err(e.into()),
        };
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let rest = &bytes[pos..];
            // A header or payload that runs past EOF is a torn tail
            // (the append never completed); anything else re-frames
            // through the shared validation path.
            if rest.len() < frame::HEADER_BYTES {
                return Ok(Replay { records, torn_bytes: rest.len() as u64 });
            }
            let len = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
            if len > frame::MAX_FRAME_BYTES {
                return Err(CkptError::Malformed {
                    section: "journal".to_string(),
                    what: format!("record length {len} exceeds the frame cap"),
                });
            }
            let total = frame::HEADER_BYTES + len as usize;
            if rest.len() < total {
                return Ok(Replay { records, torn_bytes: rest.len() as u64 });
            }
            let mut rd = &rest[..total];
            let payload = frame::read_frame_from(&mut rd, "journal")?;
            records.push(payload);
            pos += total;
        }
        Ok(Replay { records, torn_bytes: 0 })
    }

    /// Append handle: one durable record per [`JournalWriter::append`].
    #[derive(Debug)]
    pub struct JournalWriter {
        file: std::fs::File,
        path: PathBuf,
    }

    impl JournalWriter {
        /// Open (creating if absent) `path` for appending.
        pub fn open(path: &Path) -> Result<Self, CkptError> {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            Ok(JournalWriter { file, path: path.to_path_buf() })
        }

        /// Append one record and fsync it. When this returns `Ok`, the
        /// record survives a crash.
        pub fn append(&mut self, payload: &[u8]) -> Result<(), CkptError> {
            let mut framed = Vec::with_capacity(payload.len() + frame::HEADER_BYTES);
            frame::write_frame(&mut framed, payload);
            self.file.write_all(&framed)?;
            self.file.sync_data()?;
            Ok(())
        }

        /// Replace the journal's contents with `records` (compaction
        /// after a snapshot): write a fresh journal beside the live one,
        /// fsync it, and rename it into place — the same atomic
        /// write-rename discipline as [`write_atomic`](super::write_atomic).
        /// The handle continues appending to the new file.
        pub fn compact(&mut self, records: &[&[u8]]) -> Result<(), CkptError> {
            let tmp = self.path.with_extension("journal.tmp");
            let mut out = Vec::new();
            for r in records {
                frame::write_frame(&mut out, r);
            }
            {
                let mut f = std::fs::File::create(&tmp)?;
                f.write_all(&out)?;
                f.sync_data()?;
            }
            std::fs::rename(&tmp, &self.path)?;
            self.file = std::fs::OpenOptions::new().append(true).open(&self.path)?;
            Ok(())
        }

        /// The journal file path.
        pub fn path(&self) -> &Path {
            &self.path
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        fn tmp(tag: &str) -> PathBuf {
            let d = std::env::temp_dir()
                .join(format!("fasda-journal-test-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            std::fs::create_dir_all(&d).unwrap();
            d.join("q.journal")
        }

        #[test]
        fn append_replay_roundtrip() {
            let path = tmp("roundtrip");
            let mut w = JournalWriter::open(&path).unwrap();
            w.append(b"one").unwrap();
            w.append(b"").unwrap();
            w.append(&[0xAB; 4096]).unwrap();
            let r = replay(&path).unwrap();
            assert_eq!(r.records.len(), 3);
            assert_eq!(r.records[0], b"one");
            assert_eq!(r.records[1], b"");
            assert_eq!(r.records[2], vec![0xAB; 4096]);
            assert_eq!(r.torn_bytes, 0);
        }

        #[test]
        fn missing_file_is_empty_journal() {
            let r = replay(&tmp("missing")).unwrap();
            assert!(r.records.is_empty());
            assert_eq!(r.torn_bytes, 0);
        }

        #[test]
        fn torn_tail_is_discarded_not_fatal() {
            let path = tmp("torn");
            let mut w = JournalWriter::open(&path).unwrap();
            w.append(b"alpha").unwrap();
            w.append(b"beta").unwrap();
            let full = std::fs::read(&path).unwrap();
            // Cut anywhere strictly inside the second frame: the first
            // record must survive, the tail must be reported torn.
            let first_len = frame::HEADER_BYTES + 5;
            for cut in first_len + 1..full.len() {
                std::fs::write(&path, &full[..cut]).unwrap();
                let r = replay(&path).unwrap();
                assert_eq!(r.records, vec![b"alpha".to_vec()], "cut at {cut}");
                assert_eq!(r.torn_bytes, (cut - first_len) as u64);
            }
        }

        #[test]
        fn mid_file_corruption_is_fatal() {
            let path = tmp("corrupt");
            let mut w = JournalWriter::open(&path).unwrap();
            w.append(b"alpha").unwrap();
            w.append(b"beta").unwrap();
            let mut bytes = std::fs::read(&path).unwrap();
            // Flip a payload bit inside the *first* (acknowledged,
            // fully framed) record.
            bytes[frame::HEADER_BYTES] ^= 0x01;
            std::fs::write(&path, &bytes).unwrap();
            assert!(matches!(
                replay(&path),
                Err(CkptError::CrcMismatch { .. })
            ));
        }

        #[test]
        fn compact_then_append_continues() {
            let path = tmp("compact");
            let mut w = JournalWriter::open(&path).unwrap();
            for i in 0..10u8 {
                w.append(&[i]).unwrap();
            }
            w.compact(&[b"snapshot-cursor"]).unwrap();
            w.append(b"after").unwrap();
            let r = replay(&path).unwrap();
            assert_eq!(r.records, vec![b"snapshot-cursor".to_vec(), b"after".to_vec()]);
        }
    }
}

pub mod policy {
    //! Checkpoint-interval economics: the Young–Daly optimum and the
    //! data-loss / availability forecast it implies.
    //!
    //! The model: checkpointing every `k` steps costs `save_cost` once
    //! per segment, and a failure arriving at rate `λ` per step forces
    //! a replay of everything since the last checkpoint — `(k-1)/2`
    //! steps in expectation (failures land uniformly inside a segment;
    //! the checkpointed step itself is safe) plus a fixed
    //! `restore_cost`. Per useful step, the overhead fraction is
    //!
    //! ```text
    //! f(k) = save_cost/(k·step_cost) + λ·((k-1)/2 + restore_cost/step_cost)
    //! ```
    //!
    //! which is minimized at the Young–Daly interval
    //! `k* = sqrt(2·save_cost/(λ·step_cost))`. Costs are in any common
    //! unit (the `chaosbench --recovery` sweep measures them in
    //! milliseconds); the failure rate is per simulated step.

    /// Measured costs and the assumed failure process.
    #[derive(Clone, Copy, Debug)]
    pub struct PolicyInput {
        /// Cost of serializing + writing one checkpoint.
        pub save_cost: f64,
        /// Cost of restoring one checkpoint after a failure.
        pub restore_cost: f64,
        /// Cost of simulating one step.
        pub step_cost: f64,
        /// Failures per simulated step (λ).
        pub failure_rate: f64,
    }

    /// What a given checkpoint interval buys.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct PolicyForecast {
        /// The interval evaluated, in steps.
        pub interval_steps: u64,
        /// Checkpoint-write overhead as a fraction of useful compute.
        pub save_overhead: f64,
        /// Steps of trajectory lost (and replayed) per failure,
        /// `(k-1)/2` in expectation.
        pub expected_loss_steps: f64,
        /// Replay + restore overhead as a fraction of useful compute.
        pub rework_overhead: f64,
        /// Useful fraction of total spend:
        /// `1 / (1 + save_overhead + rework_overhead)`.
        pub availability: f64,
    }

    impl PolicyInput {
        fn validate(&self) {
            assert!(
                self.save_cost >= 0.0
                    && self.restore_cost >= 0.0
                    && self.step_cost > 0.0
                    && self.failure_rate >= 0.0,
                "policy inputs must be non-negative with step_cost > 0"
            );
        }

        /// The unrounded Young–Daly interval
        /// `sqrt(2·save_cost/(λ·step_cost))`; infinite when failures
        /// never happen (never checkpoint) and clamped to 1 from below
        /// (checkpointing more than once per step is meaningless).
        pub fn young_daly_interval(&self) -> f64 {
            self.validate();
            if self.failure_rate <= 0.0 {
                return f64::INFINITY;
            }
            (2.0 * self.save_cost / (self.failure_rate * self.step_cost))
                .sqrt()
                .max(1.0)
        }

        /// Forecast the overheads of checkpointing every `k` steps.
        pub fn forecast(&self, k: u64) -> PolicyForecast {
            self.validate();
            let k = k.max(1);
            let expected_loss_steps = (k - 1) as f64 / 2.0;
            let save_overhead = self.save_cost / (k as f64 * self.step_cost);
            let rework_overhead = self.failure_rate
                * (expected_loss_steps + self.restore_cost / self.step_cost);
            PolicyForecast {
                interval_steps: k,
                save_overhead,
                expected_loss_steps,
                rework_overhead,
                availability: 1.0 / (1.0 + save_overhead + rework_overhead),
            }
        }

        /// The best whole-step interval: the neighbor of the Young–Daly
        /// optimum with the higher forecast availability.
        pub fn optimize(&self) -> PolicyForecast {
            let k = self.young_daly_interval();
            if k.is_infinite() || k >= u64::MAX as f64 {
                return self.forecast(u64::MAX);
            }
            let lo = self.forecast(k.floor() as u64);
            let hi = self.forecast(k.ceil() as u64);
            if lo.availability >= hi.availability {
                lo
            } else {
                hi
            }
        }
    }
}

/// Bounded retention: keep the newest `keep` checkpoints, delete the
/// rest. `keep == 0` keeps everything.
pub fn prune_checkpoints(dir: &Path, keep: usize) -> Result<(), CkptError> {
    if keep == 0 {
        return Ok(());
    }
    let all = list_checkpoints(dir)?;
    if all.len() > keep {
        for (_, path) in &all[..all.len() - keep] {
            std::fs::remove_file(path)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist + PartialEq + std::fmt::Debug>(v: &T) {
        let mut w = Writer::new();
        v.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        let back = T::load(&mut r).expect("load");
        assert_eq!(&back, v);
        assert!(r.is_exhausted(), "trailing bytes after {v:?}");
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(&0u8);
        roundtrip(&u64::MAX);
        roundtrip(&-1i64);
        roundtrip(&i32::MIN);
        roundtrip(&f32::NEG_INFINITY);
        roundtrip(&-0.0f64);
        roundtrip(&true);
        roundtrip(&usize::MAX);
        roundtrip(&String::from("hello çkpt"));
        roundtrip(&Some(42u32));
        roundtrip(&Option::<u32>::None);
        roundtrip(&vec![1u16, 2, 3]);
        roundtrip(&VecDeque::from(vec![9u64, 8, 7]));
        roundtrip(&(1u8, 2u64));
        roundtrip(&(1u8, 2u64, String::from("x")));
        roundtrip(&[5u32; 4]);
    }

    #[test]
    fn float_bit_patterns_survive() {
        // NaN payloads must round-trip bit-exactly, not just value-equal.
        let weird = f32::from_bits(0x7FC0_1234);
        let mut w = Writer::new();
        weird.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "test");
        assert_eq!(f32::load(&mut r).unwrap().to_bits(), 0x7FC0_1234);
    }

    #[test]
    fn hash_containers_serialize_sorted() {
        let mut a = HashMap::new();
        let mut b = HashMap::new();
        for k in 0..32u64 {
            a.insert(k, k * 3);
        }
        for k in (0..32u64).rev() {
            b.insert(k, k * 3);
        }
        let (mut wa, mut wb) = (Writer::new(), Writer::new());
        a.save(&mut wa);
        b.save(&mut wb);
        assert_eq!(
            wa.into_bytes(),
            wb.into_bytes(),
            "same logical map must give same bytes regardless of insertion order"
        );
        roundtrip(&a);
        let set: HashSet<u32> = (0..17).collect();
        roundtrip(&set);
        let bt: BTreeMap<String, u64> = [("b".into(), 2u64), ("a".into(), 1)].into();
        roundtrip(&bt);
        let bs: BTreeSet<i32> = [-3, 0, 9].into();
        roundtrip(&bs);
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let mut w = Writer::new();
        vec![1u64, 2, 3].save(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut], "sec");
            match Vec::<u64>::load(&mut r) {
                Err(CkptError::Truncated { section }) => assert_eq!(section, "sec"),
                Err(e) => panic!("expected Truncated, got {e}"),
                Ok(_) => panic!("truncated stream decoded at cut {cut}"),
            }
        }
    }

    #[test]
    fn bogus_length_is_not_an_allocation_bomb() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, "sec");
        assert!(Vec::<u8>::load(&mut r).is_err());
    }

    #[test]
    fn container_roundtrip_and_crc() {
        let mut c = ContainerWriter::new();
        let mut w = Writer::new();
        w.put_u64(0xDEAD_BEEF);
        c.push("alpha", w);
        let mut w = Writer::new();
        w.put_str("payload two");
        c.push("beta", w);
        let bytes = c.finish();

        let parsed = Container::parse(&bytes).expect("parse");
        assert_eq!(
            parsed.section_names().collect::<Vec<_>>(),
            vec!["alpha", "beta"]
        );
        let mut r = parsed.reader("alpha").unwrap();
        assert_eq!(r.get_u64().unwrap(), 0xDEAD_BEEF);
        assert!(matches!(
            parsed.reader("gamma"),
            Err(CkptError::MissingSection { .. })
        ));
    }

    #[test]
    fn corrupted_container_names_the_bad_section() {
        let mut c = ContainerWriter::new();
        let mut w = Writer::new();
        w.put_u64(1);
        c.push("good", w);
        let mut w = Writer::new();
        w.put_u64(2);
        c.push("bad", w);
        let mut bytes = c.finish();
        let n = bytes.len();
        bytes[n - 1] ^= 0x40; // flip a bit in the last section's payload
        match Container::parse(&bytes) {
            Err(CkptError::CrcMismatch { section, .. }) => assert_eq!(section, "bad"),
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_container_is_rejected() {
        let mut c = ContainerWriter::new();
        let mut w = Writer::new();
        w.put_bytes(&[0xAB; 64]);
        c.push("only", w);
        let bytes = c.finish();
        for cut in 0..bytes.len() {
            assert!(
                Container::parse(&bytes[..cut]).is_err(),
                "prefix of length {cut} parsed"
            );
        }
    }

    #[test]
    fn bad_magic_and_version() {
        assert_eq!(Container::parse(b"NOPE").unwrap_err(), CkptError::BadMagic);
        let mut bytes = ContainerWriter::new().finish();
        bytes[4] = 0xFF; // bump version
        assert!(matches!(
            Container::parse(&bytes),
            Err(CkptError::BadVersion { .. })
        ));
    }

    #[test]
    fn file_naming_and_retention() {
        let dir = std::env::temp_dir().join(format!("fasda-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for step in [3u64, 1, 7, 5] {
            write_atomic(&checkpoint_path(&dir, step), b"x").unwrap();
        }
        let steps: Vec<u64> = list_checkpoints(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(steps, vec![1, 3, 5, 7]);
        assert_eq!(
            checkpoint_step(&latest_checkpoint(&dir).unwrap().unwrap()),
            Some(7)
        );
        prune_checkpoints(&dir, 2).unwrap();
        let steps: Vec<u64> = list_checkpoints(&dir)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(steps, vec![5, 7]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crc32_matches_known_vector() {
        // IEEE CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn young_daly_interval_matches_closed_form() {
        // save 8, step 1, λ = 1/256: k* = sqrt(2*8/(1/256)) = 64.
        let input = policy::PolicyInput {
            save_cost: 8.0,
            restore_cost: 4.0,
            step_cost: 1.0,
            failure_rate: 1.0 / 256.0,
        };
        assert!((input.young_daly_interval() - 64.0).abs() < 1e-9);
        let best = input.optimize();
        assert_eq!(best.interval_steps, 64);
        // The optimum beats both doubling and halving the interval.
        assert!(best.availability > input.forecast(32).availability);
        assert!(best.availability > input.forecast(128).availability);
        // Expected loss per failure is (k-1)/2 steps.
        assert!((best.expected_loss_steps - 31.5).abs() < 1e-9);
    }

    #[test]
    fn policy_degenerate_cases() {
        let never_fails = policy::PolicyInput {
            save_cost: 8.0,
            restore_cost: 4.0,
            step_cost: 1.0,
            failure_rate: 0.0,
        };
        assert!(never_fails.young_daly_interval().is_infinite());
        // No failures: the optimizer effectively never checkpoints and
        // availability approaches 1.
        assert!(never_fails.optimize().availability > 0.999_999);
        // Free checkpoints: checkpoint every step, losing nothing.
        let free_saves = policy::PolicyInput {
            save_cost: 0.0,
            restore_cost: 0.0,
            step_cost: 1.0,
            failure_rate: 0.01,
        };
        let best = free_saves.optimize();
        assert_eq!(best.interval_steps, 1);
        assert_eq!(best.expected_loss_steps, 0.0);
    }
}
